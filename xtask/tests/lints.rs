//! Meta-tests for `cargo xtask analyze`: every lint must fire on a
//! known-bad snippet, the escape hatches must work exactly as documented,
//! and the real tree must be clean.

use std::path::{Path, PathBuf};

use xtask::{analyze_repo, analyze_source, analyze_sources};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(PathBuf::from)
        .expect("xtask sits one level below the repo root")
}

// ---------------------------------------------------------------------------
// Each lint fires on a bad snippet
// ---------------------------------------------------------------------------

#[test]
fn vfs_seam_fires_on_std_fs() {
    let v = analyze_source(
        "vfs-seam",
        "crates/core/src/index.rs",
        "fn f() { let d = std::fs::read(\"x\").unwrap(); }",
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("std::fs"));
}

#[test]
fn vfs_seam_fires_on_file_open_and_openoptions() {
    let v = analyze_source(
        "vfs-seam",
        "crates/swt/tests/t.rs",
        "fn f() { let _ = File::open(\"x\"); let _ = OpenOptions::new(); }",
    );
    assert_eq!(v.len(), 2, "{v:?}");
}

#[test]
fn vfs_seam_does_not_fire_on_blockfile_open() {
    // Token-level matching: `BlockFile::open` is not `File::open`.
    let v = analyze_source(
        "vfs-seam",
        "crates/storage/src/pager.rs",
        "fn f() { let _ = BlockFile::open(path); }",
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn vfs_seam_checks_test_code_too() {
    // Unlike the other lints, cfg(test) items are NOT exempt: tests must
    // construct their Vfs explicitly.
    let v = analyze_source(
        "vfs-seam",
        "crates/storage/src/file.rs",
        "#[cfg(test)]\nmod tests {\n fn f() { std::fs::create_dir_all(\"d\").unwrap(); }\n}",
    );
    assert_eq!(v.len(), 1, "{v:?}");
}

#[test]
fn no_panic_decode_fires_on_unwrap_expect_and_macros() {
    let src = r#"
fn f(buf: &[u8]) -> u32 {
    let x = buf.first().unwrap();
    let y = buf.last().expect("y");
    if *x == 0 { panic!("zero"); }
    match y { 0 => unreachable!(), _ => u32::from(*y) }
}
"#;
    let v = analyze_source("no-panic-decode", "crates/swt/src/record.rs", src);
    assert_eq!(v.len(), 4, "{v:?}");
}

#[test]
fn no_panic_decode_fires_on_slice_index() {
    let v = analyze_source(
        "no-panic-decode",
        "crates/core/src/layout.rs",
        "fn f(b: &[u8]) -> u8 { b[0] + b[1..3][0] }",
    );
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn no_panic_decode_skips_lookalikes() {
    // unwrap_or / expect_err are different identifiers; vec![…] and
    // #[attr] brackets are not index expressions; array types neither.
    let src = r#"
#[derive(Debug)]
struct S;
fn f(o: Option<u8>) -> Vec<u8> {
    let _ = o.unwrap_or(3);
    let _: [u8; 2] = [0, 1];
    vec![o.unwrap_or_default(); 4]
}
"#;
    let v = analyze_source("no-panic-decode", "crates/swt/src/record.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn no_panic_decode_ignores_test_modules() {
    let src = "#[cfg(test)]\nmod tests {\n fn f(b: &[u8]) -> u8 { b[0] }\n}\n";
    let v = analyze_source("no-panic-decode", "crates/swt/src/record.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn determinism_fires_on_clocks_and_rngs() {
    let src = r#"
fn f() {
    let t = Instant::now();
    let s = SystemTime::now();
    let r = thread_rng();
    let x = rand::random::<u64>();
}
"#;
    let v = analyze_source("determinism", "crates/core/src/parallel.rs", src);
    assert_eq!(v.len(), 4, "{v:?}");
}

#[test]
fn accounting_fires_on_unaccounted_raw_io() {
    let v = analyze_source(
        "accounting",
        "crates/storage/src/newmod.rs",
        "fn f(file: &dyn VfsFile) { let mut b = [0u8; 8]; file.read_at(&mut b, 0).ok(); }",
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("IoStats"), "{v:?}");
}

#[test]
fn accounting_accepts_module_with_stats() {
    let src = r#"
fn f(file: &dyn VfsFile, stats: &IoStats) {
    let mut b = [0u8; 8];
    file.read_at(&mut b, 0).ok();
}
"#;
    let v = analyze_source("accounting", "crates/storage/src/newmod.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn accounting_fires_on_unaccounted_whole_file_helpers() {
    // The manifest/commit path of the segmented store streams whole
    // files through `read_to_vec`/`write_vec`/`write_full_at` — a tier
    // module doing that without IoStats is under-reported I/O.
    let v = analyze_source(
        "accounting",
        "crates/storage/src/newtier.rs",
        "fn load(vfs: &dyn Vfs, p: &Path) -> Vec<u8> { read_to_vec(vfs, p).unwrap() }",
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("read_to_vec"), "{v:?}");
    let v = analyze_source(
        "accounting",
        "crates/storage/src/newtier.rs",
        "fn save(vfs: &dyn Vfs, p: &Path) { write_vec(vfs, p, b\"x\").unwrap(); }",
    );
    assert_eq!(v.len(), 1, "{v:?}");
}

#[test]
fn accounting_accepts_whole_file_helpers_with_stats() {
    let src = r#"
fn save(vfs: &dyn Vfs, p: &Path, io: &IoStats) {
    io.record_disk_write(1);
    write_vec(vfs, p, b"x").unwrap();
}
"#;
    let v = analyze_source("accounting", "crates/storage/src/newtier.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn accounting_ignores_trait_definitions() {
    let src = "trait T { fn read_at(&self, buf: &mut [u8], off: u64) -> usize; }";
    let v = analyze_source("accounting", "crates/storage/src/newmod.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

// ---------------------------------------------------------------------------
// Escape hatches
// ---------------------------------------------------------------------------

#[test]
fn in_code_marker_suppresses_with_justification() {
    let src = r#"
fn f(b: &[u8]) -> u8 {
    // lint:allow(no-panic-decode, "b is checked to be non-empty by the caller")
    b[0]
}
"#;
    let v = analyze_source("no-panic-decode", "crates/core/src/layout.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn marker_without_justification_is_rejected() {
    let (markers, errors) =
        xtask::allowlist::parse_markers("f.rs", "// lint:allow(no-panic-decode, \"\")\n");
    assert!(markers.is_empty());
    assert_eq!(errors.len(), 1);
}

#[test]
fn marker_for_other_lint_does_not_suppress() {
    let src = r#"
fn f(b: &[u8]) -> u8 {
    // lint:allow(determinism, "wrong lint")
    b[0]
}
"#;
    let v = analyze_source("no-panic-decode", "crates/core/src/layout.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
}

// ---------------------------------------------------------------------------
// Full-repo runs (stale detection + clean tree) on a scratch repo
// ---------------------------------------------------------------------------

fn write(root: &Path, rel: &str, content: &str) {
    let p = root.join(rel);
    std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
    std::fs::write(p, content).expect("write");
}

fn scratch_repo(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-meta-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

#[test]
fn stale_allowlist_entry_fails_the_run() {
    let dir = scratch_repo("stale");
    write(&dir, "crates/core/src/layout.rs", "fn ok() {}\n");
    write(
        &dir,
        "xtask/allowlists/no_panic_decode.allow",
        "crates/core/src/layout.rs :: b[0] :: was needed once\n",
    );
    let a = analyze_repo(&dir, Some("no-panic-decode"));
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert_eq!(a.errors.len(), 1, "{:?}", a.errors);
    assert!(a.errors[0].contains("stale"), "{:?}", a.errors);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_in_code_marker_fails_the_run() {
    let dir = scratch_repo("stale-marker");
    write(
        &dir,
        "crates/core/src/layout.rs",
        "//! lint:scope(no-panic-decode)\n// lint:allow(no-panic-decode, \"nothing here anymore\")\nfn ok() {}\n",
    );
    let a = analyze_repo(&dir, Some("no-panic-decode"));
    assert_eq!(a.errors.len(), 1, "{:?}", a.errors);
    assert!(a.errors[0].contains("stale"), "{:?}", a.errors);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_allowlist_entry_suppresses_and_is_not_stale() {
    let dir = scratch_repo("live");
    write(
        &dir,
        "crates/core/src/layout.rs",
        "//! lint:scope(no-panic-decode)\nfn f(b: &[u8]) -> u8 { b[0] }\n",
    );
    write(
        &dir,
        "xtask/allowlists/no_panic_decode.allow",
        "crates/core/src/layout.rs :: b[0] :: caller guarantees non-empty\n",
    );
    let a = analyze_repo(&dir, Some("no-panic-decode"));
    assert!(a.is_clean(), "{:?} / {:?}", a.violations, a.errors);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Scope attributes
// ---------------------------------------------------------------------------

#[test]
fn scope_attribute_brings_module_in_scope() {
    let dir = scratch_repo("scope-on");
    write(
        &dir,
        "crates/core/src/newmod.rs",
        "//! lint:scope(no-panic-decode)\nfn f(b: &[u8]) -> u8 { b[0] }\n",
    );
    let a = analyze_repo(&dir, Some("no-panic-decode"));
    assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
    assert!(a.violations[0].message.contains("slice-index"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn module_without_attribute_is_out_of_scope() {
    let dir = scratch_repo("scope-off");
    write(
        &dir,
        "crates/core/src/newmod.rs",
        "fn f(b: &[u8]) -> u8 { b[0] }\n",
    );
    let a = analyze_repo(&dir, Some("no-panic-decode"));
    assert!(a.is_clean(), "{:?} / {:?}", a.violations, a.errors);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn undeclared_decoder_module_is_a_policy_error() {
    // A production module that *parses* (defines `fn decode…`) without
    // declaring itself in scope must fail the run — decode modules carry
    // the lint from birth, not after someone remembers to list them.
    let dir = scratch_repo("undeclared-decoder");
    write(
        &dir,
        "crates/core/src/newmod.rs",
        "fn decode_header(b: &[u8]) -> u8 { 0 }\n",
    );
    let a = analyze_repo(&dir, Some("no-panic-decode"));
    assert_eq!(a.errors.len(), 1, "{:?}", a.errors);
    assert!(
        a.errors[0].contains("decode_header") && a.errors[0].contains("lint:scope"),
        "{:?}",
        a.errors
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn test_only_decoder_is_exempt_from_the_policy() {
    let dir = scratch_repo("test-decoder");
    write(
        &dir,
        "crates/core/src/newmod.rs",
        "#[cfg(test)]\nmod tests {\n fn decode_fixture(b: &[u8]) -> u8 { b[0] }\n}\n",
    );
    let a = analyze_repo(&dir, Some("no-panic-decode"));
    assert!(a.is_clean(), "{:?} / {:?}", a.violations, a.errors);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scope_attribute_for_non_scoped_lint_is_rejected() {
    let dir = scratch_repo("scope-wrong-lint");
    write(
        &dir,
        "crates/core/src/newmod.rs",
        "//! lint:scope(determinism)\nfn ok() {}\n",
    );
    let a = analyze_repo(&dir, Some("no-panic-decode"));
    assert_eq!(a.errors.len(), 1, "{:?}", a.errors);
    assert!(
        a.errors[0].contains("not attribute-driven"),
        "{:?}",
        a.errors
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_allowlist_fails_the_run() {
    let dir = scratch_repo("oversized");
    write(&dir, "crates/core/src/layout.rs", "fn ok() {}\n");
    let mut allow = String::new();
    for i in 0..41 {
        allow.push_str(&format!("crates/core/src/layout.rs :: x{i} :: filler\n"));
    }
    write(&dir, "xtask/allowlists/no_panic_decode.allow", &allow);
    let a = analyze_repo(&dir, Some("no-panic-decode"));
    assert!(a.errors.iter().any(|e| e.contains("cap")), "{:?}", a.errors);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Interprocedural lints (the call-graph phase): panic-reachability,
// lock-discipline, accounting-dataflow. These run over an in-memory
// workspace via `analyze_sources`, which exercises the same resolver and
// marker machinery as the repo run (allowlist files are repo-run-only).
// ---------------------------------------------------------------------------

#[test]
fn panic_reachability_fires_across_files_with_chain() {
    let a = analyze_sources(
        Some("panic-reachability"),
        &[
            (
                "crates/swt/src/parse.rs",
                "//! lint:scope(no-panic-decode)\npub fn parse(b: &[u8]) -> u8 { helper::finish(b) }\n",
            ),
            (
                "crates/swt/src/helper.rs",
                "pub fn finish(b: &[u8]) -> u8 { b[0] }\n",
            ),
        ],
    );
    assert!(a.errors.is_empty(), "{:?}", a.errors);
    assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
    let v = &a.violations[0];
    // The panic site is reported where it lives — in the *unscoped*
    // helper crate — with the entry→target call chain in the message.
    assert_eq!(v.file, "crates/swt/src/helper.rs");
    assert!(v.message.contains("slice-index"), "{}", v.message);
    assert!(
        v.message.contains("parse::parse → helper::finish"),
        "chain missing from: {}",
        v.message
    );
}

#[test]
fn panic_reachability_flags_dynamic_calls_in_the_closure() {
    let a = analyze_sources(
        Some("panic-reachability"),
        &[(
            "crates/swt/src/parse.rs",
            "//! lint:scope(no-panic-decode)\npub fn parse(f: impl Fn(u8) -> u8) -> u8 { f(0) }\n",
        )],
    );
    assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
    assert!(
        a.violations[0].message.contains("dynamic call"),
        "{}",
        a.violations[0].message
    );
}

#[test]
fn panic_reachability_marker_suppresses_at_the_panic_site() {
    let a = analyze_sources(
        Some("panic-reachability"),
        &[
            (
                "crates/swt/src/parse.rs",
                "//! lint:scope(no-panic-decode)\npub fn parse(b: &[u8]) -> u8 { helper::finish(b) }\n",
            ),
            (
                "crates/swt/src/helper.rs",
                "pub fn finish(b: &[u8]) -> u8 {\n    // lint:allow(panic-reachability, \"callers slice after a bounds check\")\n    b[0]\n}\n",
            ),
        ],
    );
    assert!(a.is_clean(), "{:?} / {:?}", a.violations, a.errors);
}

#[test]
fn panic_reachability_stale_marker_fails_the_run() {
    let a = analyze_sources(
        Some("panic-reachability"),
        &[(
            "crates/swt/src/helper.rs",
            "pub fn finish(b: &[u8]) -> u8 {\n    // lint:allow(panic-reachability, \"was needed before the bounds check\")\n    b.first().copied().unwrap_or(0)\n}\n",
        )],
    );
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert_eq!(a.errors.len(), 1, "{:?}", a.errors);
    assert!(a.errors[0].contains("stale"), "{:?}", a.errors);
}

/// Regression meta-test for the cross-module panic path this lint found
/// in the real tree: `ByteLog::open_with_vfs → parse_payload` decoded
/// fixed-width seal fields with unchecked slicing + `unwrap`, reachable
/// from the scoped table-open path. The pre-fix shape must fire; the
/// shipped decoder must stay clean under the same scoped caller.
#[test]
fn panic_reachability_regression_bytelog_parse_payload() {
    let entry = "//! lint:scope(no-panic-decode)\n\
                 pub fn open(b: &[u8]) -> (u64, usize) { ByteLog::open_with_vfs(b) }\n";
    let pre_fix = r#"
pub struct ByteLog;
impl ByteLog {
    pub fn open_with_vfs(payload: &[u8]) -> (u64, usize) {
        parse_payload(payload)
    }
}
pub(crate) fn parse_payload(payload: &[u8]) -> (u64, usize) {
    let len = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let tail = u32::from_le_bytes(payload[40..44].try_into().unwrap()) as usize;
    (len, tail)
}
"#;
    let a = analyze_sources(
        Some("panic-reachability"),
        &[
            ("crates/storage/src/bytelog.rs", pre_fix),
            ("crates/swt/src/table.rs", entry),
        ],
    );
    assert!(!a.violations.is_empty(), "pre-fix parse_payload must fire");
    assert!(
        a.violations.iter().any(|v| v
            .message
            .contains("ByteLog::open_with_vfs → bytelog::parse_payload")),
        "{:?}",
        a.violations
    );

    let shipped = std::fs::read_to_string(repo_root().join("crates/storage/src/bytelog.rs"))
        .expect("read crates/storage/src/bytelog.rs");
    let a = analyze_sources(
        Some("panic-reachability"),
        &[
            ("crates/storage/src/bytelog.rs", &shipped),
            ("crates/swt/src/table.rs", entry),
        ],
    );
    assert!(
        a.violations.is_empty(),
        "shipped parse_payload regressed: {:?}",
        a.violations
    );
}

#[test]
fn lock_discipline_flags_second_lock_in_a_critical_section() {
    let a = analyze_sources(
        Some("lock-discipline"),
        &[(
            "src/lsm.rs",
            "pub struct S;\nimpl S {\n    fn swap(&self) {\n        let front = self.front.lock();\n        let back = self.back.lock();\n    }\n}\n",
        )],
    );
    assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
    assert!(
        a.violations[0].message.contains("second lock acquisition"),
        "{}",
        a.violations[0].message
    );
}

#[test]
fn lock_discipline_flags_raw_io_under_a_guard() {
    let a = analyze_sources(
        Some("lock-discipline"),
        &[(
            "src/lsm.rs",
            "pub struct S;\nimpl S {\n    fn seal(&self) {\n        let g = self.state.lock();\n        write_full_at(self.file.as_ref(), b\"x\", 0);\n    }\n}\n",
        )],
    );
    assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
    assert!(
        a.violations[0].message.contains("write_full_at")
            && a.violations[0].message.contains("lock guard"),
        "{}",
        a.violations[0].message
    );
}

#[test]
fn lock_discipline_flags_staging_reachable_from_publication_closure() {
    // The serving layer's `apply` closure runs under the writer lock;
    // reaching staging-class maintenance (`prepare_*`/`write_segment`)
    // from it — even transitively through another file — is the
    // hold-the-lock-during-merge stall the prepare/publish split removed.
    let a = analyze_sources(
        Some("lock-discipline"),
        &[
            (
                "src/serve.rs",
                "pub struct Writer;\nimpl Writer {\n    pub fn flush(&self) {\n        self.apply(|eng| eng.seal_now())\n    }\n}\n",
            ),
            (
                "src/lsm.rs",
                "pub struct Db;\nimpl Db {\n    pub fn seal_now(&self) { self.prepare_seal() }\n    fn prepare_seal(&self) {}\n}\n",
            ),
        ],
    );
    assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
    let v = &a.violations[0];
    assert_eq!(v.file, "src/serve.rs");
    assert!(
        v.message.contains("staging-class `lsm::Db::prepare_seal`"),
        "{}",
        v.message
    );
    assert!(
        v.message
            .contains("lsm::Db::seal_now → lsm::Db::prepare_seal"),
        "chain missing from: {}",
        v.message
    );
}

#[test]
fn lock_discipline_ignores_files_outside_its_targets() {
    // Same double-lock shape, but not in the serving/LSM/parallel spine.
    let a = analyze_sources(
        Some("lock-discipline"),
        &[(
            "crates/core/src/index.rs",
            "pub struct S;\nimpl S {\n    fn swap(&self) {\n        let front = self.front.lock();\n        let back = self.back.lock();\n    }\n}\n",
        )],
    );
    assert!(a.is_clean(), "{:?} / {:?}", a.violations, a.errors);
}

#[test]
fn lock_discipline_marker_suppresses_and_stale_marker_fails() {
    let suppressed = analyze_sources(
        Some("lock-discipline"),
        &[(
            "src/lsm.rs",
            "pub struct S;\nimpl S {\n    fn swap(&self) {\n        let front = self.front.lock();\n        // lint:allow(lock-discipline, \"back is ordered strictly after front at every site\")\n        let back = self.back.lock();\n    }\n}\n",
        )],
    );
    assert!(
        suppressed.is_clean(),
        "{:?} / {:?}",
        suppressed.violations,
        suppressed.errors
    );

    let stale = analyze_sources(
        Some("lock-discipline"),
        &[(
            "src/lsm.rs",
            "pub struct S;\nimpl S {\n    fn swap(&self) {\n        // lint:allow(lock-discipline, \"nothing locks here anymore\")\n        let front = self.front.lock();\n    }\n}\n",
        )],
    );
    assert!(stale.violations.is_empty(), "{:?}", stale.violations);
    assert_eq!(stale.errors.len(), 1, "{:?}", stale.errors);
    assert!(stale.errors[0].contains("stale"), "{:?}", stale.errors);
}

#[test]
fn accounting_dataflow_fires_when_no_caller_accounts() {
    let a = analyze_sources(
        Some("accounting-dataflow"),
        &[(
            "crates/storage/src/blob.rs",
            "pub fn load(f: &dyn VfsFile) -> [u8; 8] {\n    let mut b = [0u8; 8];\n    let _ = read_full_at(f, &mut b, 0);\n    b\n}\n",
        )],
    );
    assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
    let v = &a.violations[0];
    assert!(
        v.message.contains("read_full_at")
            && v.message.contains("IoStats")
            && v.message.contains("no workspace caller found"),
        "{}",
        v.message
    );
}

#[test]
fn accounting_dataflow_accepts_accounting_in_a_transitive_caller() {
    // The I/O site itself never touches IoStats; its caller records the
    // bytes. The reverse walk over the call graph must find it.
    let a = analyze_sources(
        Some("accounting-dataflow"),
        &[
            (
                "crates/storage/src/blob.rs",
                "pub fn load(f: &dyn VfsFile) -> [u8; 8] {\n    let mut b = [0u8; 8];\n    let _ = read_full_at(f, &mut b, 0);\n    b\n}\n",
            ),
            (
                "crates/storage/src/tier.rs",
                "pub fn fetch(f: &dyn VfsFile, io: &IoStats) -> [u8; 8] {\n    let b = load(f);\n    io.record_disk_read(1);\n    b\n}\n",
            ),
        ],
    );
    assert!(a.is_clean(), "{:?} / {:?}", a.violations, a.errors);
}

#[test]
fn accounting_dataflow_marker_suppresses_and_stale_marker_fails() {
    let suppressed = analyze_sources(
        Some("accounting-dataflow"),
        &[(
            "crates/storage/src/blob.rs",
            "pub fn load(f: &dyn VfsFile) -> [u8; 8] {\n    let mut b = [0u8; 8];\n    // lint:allow(accounting-dataflow, \"fixture helper, never on a measured path\")\n    let _ = read_full_at(f, &mut b, 0);\n    b\n}\n",
        )],
    );
    assert!(
        suppressed.is_clean(),
        "{:?} / {:?}",
        suppressed.violations,
        suppressed.errors
    );

    let stale = analyze_sources(
        Some("accounting-dataflow"),
        &[(
            "crates/storage/src/blob.rs",
            "pub fn load() -> u8 {\n    // lint:allow(accounting-dataflow, \"no raw I/O here anymore\")\n    0\n}\n",
        )],
    );
    assert!(stale.violations.is_empty(), "{:?}", stale.violations);
    assert_eq!(stale.errors.len(), 1, "{:?}", stale.errors);
    assert!(stale.errors[0].contains("stale"), "{:?}", stale.errors);
}

// ---------------------------------------------------------------------------
// Machine-readable report (`cargo xtask analyze --json`)
// ---------------------------------------------------------------------------

/// The `--json` report must be strict JSON — validated with the same
/// parser that gates the recorded bench artifacts — for both a clean run
/// and one carrying violations and policy errors.
#[test]
fn json_report_is_strict_json_clean_and_dirty() {
    let clean = analyze_repo(&repo_root(), None);
    let doc = xtask::json_report(&clean, None);
    xtask::benchjson::check_json(&doc).expect("clean report must be strict JSON");
    assert!(doc.contains("\"tool\""), "{doc}");
    assert!(doc.contains("xtask-analyze"), "{doc}");

    let dirty = analyze_sources(
        Some("panic-reachability"),
        &[
            (
                "crates/swt/src/parse.rs",
                "//! lint:scope(no-panic-decode)\npub fn parse(b: &[u8]) -> u8 { helper::finish(b) }\n",
            ),
            (
                "crates/swt/src/helper.rs",
                "pub fn finish(b: &[u8]) -> u8 { b[0] }\n// lint:allow(panic-reachability, \"stale on purpose\")\n",
            ),
        ],
    );
    assert!(!dirty.is_clean());
    let doc = xtask::json_report(&dirty, Some("panic-reachability"));
    xtask::benchjson::check_json(&doc).expect("dirty report must be strict JSON");
    assert!(
        doc.contains("\"clean\": false") || doc.contains("\"clean\":false"),
        "{doc}"
    );
}

/// The real tree is clean: zero unallowed violations, zero stale
/// suppressions. This is the same check CI runs via `cargo xtask analyze`.
#[test]
fn current_tree_is_clean() {
    let a = analyze_repo(&repo_root(), None);
    assert!(
        a.is_clean(),
        "violations: {:#?}\npolicy errors: {:#?}",
        a.violations,
        a.errors
    );
    assert!(a.files_scanned > 50, "scanned only {}", a.files_scanned);
}
