//! A minimal Rust token scanner for the architectural lints.
//!
//! This is intentionally *not* a full Rust lexer: the lints only need a
//! stream of identifiers and punctuation with line numbers, with comments,
//! string/char literals, and `#[cfg(test)]`-gated items removed. Operating
//! at token level (rather than `grep`) is what lets the lints tell
//! `File::open` from `BlockFile::open`, `unwrap()` from `unwrap_or()`, and
//! an index expression `buf[i]` from a macro invocation `vec![...]` or an
//! attribute `#[derive(...)]`.

/// One scanned token: its 1-based source line and its text. Identifiers
/// keep their full text; punctuation is a single character, except `::`
/// which is merged into one token (path matching needs it constantly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub line: u32,
    pub s: String,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`, dropping comments and the contents of string/char
/// literals. Literal *prefixes* (`r"..."`, `b'x'`, `r#"..."#`) are
/// recognized so their payloads never leak into the token stream.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => i = skip_string(&b, i, &mut line),
            '\'' => {
                // Char literal vs. lifetime: a literal closes with `'`
                // within a couple of chars (or starts with an escape).
                if i + 1 < n && b[i + 1] == '\\' {
                    i += 2; // opening quote + backslash
                    if i < n {
                        i += 1; // escaped char
                    }
                    while i < n && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < n && b[i + 2] == '\'' {
                    i += 3;
                } else {
                    // Lifetime: consume the tick + ident, emit nothing.
                    i += 1;
                    while i < n && is_ident_continue(b[i]) {
                        i += 1;
                    }
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // String-literal prefixes: r"", b"", br"", r#""#, b'x'.
                let next = b.get(i).copied();
                if matches!(ident.as_str(), "r" | "b" | "br" | "rb")
                    && matches!(next, Some('"') | Some('#') | Some('\''))
                {
                    if next == Some('\'') {
                        // Byte char literal b'…'.
                        i += 1;
                        if i < n && b[i] == '\\' {
                            i += 1;
                        }
                        while i < n && b[i] != '\'' {
                            if b[i] == '\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                        i += 1;
                    } else {
                        i = skip_raw_or_plain_string(&b, i, &mut line);
                    }
                } else {
                    toks.push(Tok { line, s: ident });
                }
            }
            ':' if i + 1 < n && b[i + 1] == ':' => {
                toks.push(Tok {
                    line,
                    s: "::".into(),
                });
                i += 2;
            }
            _ => {
                toks.push(Tok {
                    line,
                    s: c.to_string(),
                });
                i += 1;
            }
        }
    }
    toks
}

/// Skip a plain `"..."` string starting at the opening quote. Returns the
/// index just past the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            // An escape skips two chars; `\` before a newline is the
            // line-continuation form, and the newline still counts.
            '\\' => {
                if b.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw (`#`-fenced) or plain string whose opening delimiter begins
/// at `i` (pointing at `"` or the first `#`).
fn skip_raw_or_plain_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != '"' {
        return i;
    }
    if hashes == 0 {
        return skip_string(b, i, line);
    }
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"'
            && b.get(i + 1..i + 1 + hashes)
                .is_some_and(|w| w.iter().all(|&c| c == '#'))
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Remove every `#[cfg(test)]`-gated item (attribute + the braced item
/// that follows) from the token stream. Test modules construct fixtures
/// with infallible shortcuts by design; the production-code lints must not
/// see them. The `vfs-seam` lint deliberately does NOT use this filter —
/// tests must go through an explicit [`Vfs`] too.
pub fn strip_cfg_test(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // Skip this attribute, any further attributes, then the item's
            // balanced braces (or through `;` for brace-less items).
            i = skip_attr(toks, i);
            while toks.get(i).is_some_and(|t| t.s == "#") {
                i = skip_attr(toks, i);
            }
            let mut depth = 0i64;
            while i < toks.len() {
                match toks[i].s.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

/// Does `toks[i..]` start the exact attribute `#[cfg(test)]`?
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    let want = ["#", "[", "cfg", "(", "test", ")", "]"];
    want.iter()
        .enumerate()
        .all(|(k, w)| toks.get(i + k).is_some_and(|t| t.s == *w))
}

/// Skip one `#[...]` attribute starting at the `#`.
fn skip_attr(toks: &[Tok], mut i: usize) -> usize {
    debug_assert_eq!(toks.get(i).map(|t| t.s.as_str()), Some("#"));
    i += 1; // '#'
    if toks.get(i).is_some_and(|t| t.s == "[") {
        let mut depth = 0i64;
        while i < toks.len() {
            match toks[i].s.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.s).collect()
    }

    #[test]
    fn idents_and_paths() {
        assert_eq!(
            texts("File::open(x)"),
            vec!["File", "::", "open", "(", "x", ")"]
        );
    }

    #[test]
    fn comments_and_strings_vanish() {
        assert_eq!(
            texts("a // std::fs\n b \"File::open\" /* unwrap() */ c"),
            vec!["a", "b", "c"]
        );
        assert_eq!(
            texts(r##"let s = r#"std::fs"#;"##),
            vec!["let", "s", "=", ";"]
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(texts("'a', '\\n', &'x str"), vec![",", ",", "&", "str"]);
        assert_eq!(texts("b'x' y"), vec!["y"]);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        // A `\` before the newline continues the string literal onto the
        // next source line; the newline still has to count, or every
        // diagnostic after the string points one line too high.
        let toks = tokenize("let a = \"x \\\n y\";\nfn f() {}");
        let f = toks.iter().find(|t| t.s == "fn").expect("fn token");
        assert_eq!(f.line, 3);
    }

    #[test]
    fn cfg_test_items_are_stripped() {
        let toks = tokenize("fn a() {} #[cfg(test)] mod t { fn b() { x.unwrap() } } fn c() {}");
        let kept = strip_cfg_test(&toks);
        let s: Vec<&str> = kept.iter().map(|t| t.s.as_str()).collect();
        assert!(!s.contains(&"unwrap"));
        assert!(s.contains(&"a") && s.contains(&"c"));
    }
}
