//! `cargo xtask analyze` — architectural-invariant lints for the iVA-file
//! workspace. See `ANALYSIS.md` at the repo root for the lint catalog and
//! the allowlist policy.
//!
//! The crate is a library so the meta-tests in `tests/lints.rs` can feed
//! known-bad snippets straight to [`analyze_source`] and assert each lint
//! actually fires, then run [`analyze_repo`] and assert the tree is clean.

pub mod allowlist;
pub mod benchjson;
pub mod ipa;
pub mod lexer;
pub mod lints;
pub mod resolver;

use std::collections::HashMap;
use std::collections::HashSet;
use std::path::{Path, PathBuf};

use allowlist::{parse_allowlist, parse_markers, parse_scopes, AllowEntry, Marker};
use lexer::{strip_cfg_test, tokenize};
use lints::{Violation, LINT_NAMES};
use resolver::Workspace;

/// Result of a full-repo run: surviving violations plus policy errors
/// (stale allows, malformed markers, oversized allowlists).
#[derive(Debug, Default)]
pub struct Analysis {
    /// Violations not covered by any allowlist entry or marker.
    pub violations: Vec<Violation>,
    /// Allowlist/marker policy errors — these fail the run even when the
    /// code itself is clean.
    pub errors: Vec<String>,
    /// Files scanned, per lint (for the summary line).
    pub files_scanned: usize,
}

impl Analysis {
    /// True when the run should exit 0.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty()
    }
}

/// Which files a lint looks at, and whether `#[cfg(test)]` items are
/// exempt. Paths are repo-relative with forward slashes; `scopes` holds
/// the file's parsed `lint:scope(…)` attributes.
fn in_scope(lint: &str, path: &str, scopes: &[String]) -> bool {
    // Vendored stand-ins for external crates and the xtask tool itself are
    // not part of the database being linted.
    if path.starts_with("vendor/") || path.starts_with("xtask/") || path.starts_with("target/") {
        return false;
    }
    match lint {
        // The interprocedural lints run over the whole workspace at once,
        // after the per-file phase — never per file.
        "panic-reachability" | "lock-discipline" | "accounting-dataflow" => false,
        // Everything in the workspace — production, tests, and benches —
        // except the seam module itself.
        "vfs-seam" => path != "crates/storage/src/vfs.rs",
        // Byte-decoding, estimation, and query-plan modules opt in with a
        // `//! lint:scope(no-panic-decode)` module attribute — the scope
        // lives in the module, not in a list here, so a new decode module
        // carries the lint from birth (see `undeclared_decoder`).
        "no-panic-decode" => scopes.iter().any(|s| s == lint),
        // Production modules of the replayable stack. Bench/workload/
        // baseline crates measure wall-clock by design and are exempt.
        "determinism" => {
            let core = path.starts_with("crates/core/src/")
                || path.starts_with("crates/storage/src/")
                || path.starts_with("crates/swt/src/")
                || path.starts_with("crates/text/src/");
            let root_lib = path.starts_with("src/") && !path.starts_with("src/bin/");
            core || root_lib
        }
        // Any production module doing raw VfsFile I/O must account for it
        // — including the root facade and its serving layer.
        "accounting" => {
            let crates = path.starts_with("crates/")
                && path.contains("/src/")
                && !path.contains("/benches/");
            let root_lib = path.starts_with("src/") && !path.starts_with("src/bin/");
            crates || root_lib
        }
        _ => false,
    }
}

/// Whether `#[cfg(test)]` items are stripped before a lint runs. The seam
/// lint keeps them: tests must construct their Vfs explicitly too.
fn strips_tests(lint: &str) -> bool {
    lint != "vfs-seam"
}

/// Production module paths — the set where an undeclared decode function
/// is a policy error (see [`undeclared_decoder`]). Matches the
/// `determinism` lint's notion of production code.
fn production_module(path: &str) -> bool {
    let core = path.starts_with("crates/core/src/")
        || path.starts_with("crates/storage/src/")
        || path.starts_with("crates/swt/src/")
        || path.starts_with("crates/text/src/");
    let root_lib = path.starts_with("src/") && !path.starts_with("src/bin/");
    core || root_lib
}

/// A production module that defines a `fn decode…` is parsing bytes that
/// may have come from disk — it must carry the
/// `//! lint:scope(no-panic-decode)` attribute so the lint covers it from
/// birth. Returns the first offending definition `(line, name)` in the
/// test-stripped token stream (test-only decoders are exempt).
fn undeclared_decoder(toks: &[lexer::Tok]) -> Option<(u32, String)> {
    toks.windows(2).find_map(|w| {
        (w[0].s == "fn" && w[1].s.starts_with("decode")).then(|| (w[1].line, w[1].s.clone()))
    })
}

fn run_lint(lint: &str, path: &str, toks: &[lexer::Tok]) -> Vec<Violation> {
    match lint {
        "vfs-seam" => lints::vfs_seam(path, toks),
        "no-panic-decode" => lints::no_panic_decode(path, toks),
        "determinism" => lints::determinism(path, toks),
        "accounting" => lints::accounting(path, toks),
        _ => Vec::new(),
    }
}

/// Lint a single in-memory source file. In-code `lint:allow` markers are
/// honored; allowlist files are not consulted. Used by the meta-tests and
/// usable for editor integration.
pub fn analyze_source(lint: &str, path: &str, source: &str) -> Vec<Violation> {
    let toks = tokenize(source);
    let toks = if strips_tests(lint) {
        strip_cfg_test(&toks)
    } else {
        toks
    };
    let (mut markers, _) = parse_markers(path, source);
    run_lint(lint, path, &toks)
        .into_iter()
        .filter(|v| !marker_covers(&mut markers, lint, v.line))
        .collect()
}

fn marker_covers(markers: &mut [Marker], lint: &str, line: u32) -> bool {
    for m in markers.iter_mut() {
        if m.lint == lint && (m.line == line || m.line + 1 == line) {
            m.hits += 1;
            return true;
        }
    }
    false
}

fn allowlist_covers(entries: &mut [AllowEntry], file: &str, line_text: &str) -> bool {
    for e in entries.iter_mut() {
        if e.path == file && line_text.contains(&e.substring) {
            e.hits += 1;
            return true;
        }
    }
    false
}

/// Collect every `.rs` file under `root`, repo-relative, sorted.
fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in rd.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(p);
                }
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Per-file state shared between the token-lint phase and the
/// interprocedural phase (markers must stay live across both so stale
/// detection sees every suppression).
struct FileData {
    rel: String,
    source: String,
    scopes: Vec<String>,
    markers: Vec<Marker>,
    toks_full: Vec<lexer::Tok>,
    toks_stripped: Vec<lexer::Tok>,
}

/// Production files that feed the call graph: crate sources and the root
/// library, excluding binaries, integration tests, and benches.
fn graph_file(path: &str) -> bool {
    let root_lib = path.starts_with("src/") && !path.starts_with("src/bin/");
    let crate_lib = path.contains("/src/") && !path.contains("/bin/");
    root_lib || crate_lib
}

/// Run the requested lints (all seven when `only` is `None`) over the
/// repo at `root`, applying allowlist files from `xtask/allowlists/` and
/// in-code markers, and reporting stale suppressions as errors.
pub fn analyze_repo(root: &Path, only: Option<&str>) -> Analysis {
    let mut inputs = Vec::new();
    for abs in rust_files(root) {
        let Ok(rel_os) = abs.strip_prefix(root) else {
            continue;
        };
        let rel = rel_os.to_string_lossy().replace('\\', "/");
        if rel.starts_with("vendor/") || rel.starts_with("xtask/") || rel.starts_with("target/") {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(&abs) else {
            continue;
        };
        inputs.push((rel, source));
    }
    analyze_impl(inputs, only, Some(root))
}

/// Lint a set of in-memory source files through the full pipeline —
/// token lints, interprocedural lints, markers, stale-marker detection —
/// without consulting allowlist files. This is the meta-test entry point
/// for the interprocedural lints, which need cross-file fixtures.
pub fn analyze_sources(only: Option<&str>, files: &[(&str, &str)]) -> Analysis {
    let inputs = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_impl(inputs, only, None)
}

fn analyze_impl(
    inputs: Vec<(String, String)>,
    only: Option<&str>,
    root: Option<&Path>,
) -> Analysis {
    let mut analysis = Analysis::default();
    let lint_filter: Vec<&str> = match only {
        Some(l) => vec![l],
        None => LINT_NAMES.to_vec(),
    };

    // Load allowlists (repo runs only; the in-memory entry point tests
    // marker behavior without allowlist files).
    let mut allows: Vec<(String, Vec<AllowEntry>)> = Vec::new();
    for &lint in &lint_filter {
        let entries = match root {
            Some(root) => {
                let path = root
                    .join("xtask/allowlists")
                    .join(format!("{}.allow", lint.replace('-', "_")));
                let content = std::fs::read_to_string(&path).unwrap_or_default();
                match parse_allowlist(lint, &content) {
                    Ok(entries) => entries,
                    Err(errs) => {
                        analysis.errors.extend(errs);
                        Vec::new()
                    }
                }
            }
            None => Vec::new(),
        };
        allows.push((lint.to_string(), entries));
    }

    // Phase 0: parse every file once.
    analysis.files_scanned = inputs.len();
    let mut files: Vec<FileData> = Vec::new();
    for (rel, source) in inputs {
        let (scopes, scope_errors) = parse_scopes(&rel, &source);
        analysis.errors.extend(scope_errors);
        for s in &scopes {
            if s != "no-panic-decode" {
                analysis.errors.push(format!(
                    "{rel}: lint:scope({s}) names a lint whose scope is not attribute-driven"
                ));
            }
        }
        let (markers, marker_errors) = parse_markers(&rel, &source);
        analysis.errors.extend(marker_errors);
        let toks_full = tokenize(&source);
        let toks_stripped = strip_cfg_test(&toks_full);
        files.push(FileData {
            rel,
            source,
            scopes,
            markers,
            toks_full,
            toks_stripped,
        });
    }

    // Phase 1: per-file token lints (plus the undeclared-decoder policy).
    for fd in &mut files {
        let wanted: Vec<&str> = lint_filter
            .iter()
            .copied()
            .filter(|l| in_scope(l, &fd.rel, &fd.scopes))
            .collect();
        let check_decoders = lint_filter.contains(&"no-panic-decode")
            && production_module(&fd.rel)
            && !fd.scopes.iter().any(|s| s == "no-panic-decode");
        if check_decoders {
            if let Some((line, name)) = undeclared_decoder(&fd.toks_stripped) {
                analysis.errors.push(format!(
                    "{}:{line}: `fn {name}` in a production module without \
                     `//! lint:scope(no-panic-decode)` — decode modules carry the lint from birth",
                    fd.rel
                ));
            }
        }
        let lines: Vec<&str> = fd.source.lines().collect();
        for lint in wanted {
            let toks = if strips_tests(lint) {
                &fd.toks_stripped
            } else {
                &fd.toks_full
            };
            let entries = allows.iter_mut().find(|(l, _)| l == lint).map(|(_, e)| e);
            let Some(entries) = entries else { continue };
            for v in run_lint(lint, &fd.rel, toks) {
                if marker_covers(&mut fd.markers, lint, v.line) {
                    continue;
                }
                let line_text = lines.get(v.line as usize - 1).copied().unwrap_or("");
                if allowlist_covers(entries, &fd.rel, line_text) {
                    continue;
                }
                analysis.violations.push(v);
            }
        }
    }

    // Phase 2: interprocedural lints over the whole-workspace call graph.
    let interprocedural: Vec<&str> = lint_filter
        .iter()
        .copied()
        .filter(|l| {
            matches!(
                *l,
                "panic-reachability" | "lock-discipline" | "accounting-dataflow"
            )
        })
        .collect();
    if !interprocedural.is_empty() {
        let ws = Workspace::build(
            files
                .iter()
                .filter(|fd| graph_file(&fd.rel))
                .map(|fd| (fd.rel.clone(), fd.toks_stripped.clone()))
                .collect(),
        );
        let scoped_paths: HashSet<String> = files
            .iter()
            .filter(|fd| fd.scopes.iter().any(|s| s == "no-panic-decode"))
            .map(|fd| fd.rel.clone())
            .collect();
        let by_rel: HashMap<String, usize> = files
            .iter()
            .enumerate()
            .map(|(i, fd)| (fd.rel.clone(), i))
            .collect();
        let mut raw: Vec<Violation> = Vec::new();
        for &lint in &interprocedural {
            match lint {
                "panic-reachability" => {
                    let scoped = ipa::scoped_file_set(&ws, &scoped_paths);
                    raw.extend(ipa::panic_reachability(&ws, &scoped));
                }
                "lock-discipline" => raw.extend(ipa::lock_discipline(&ws)),
                "accounting-dataflow" => {
                    raw.extend(ipa::accounting_dataflow(&ws, &|p| {
                        in_scope("accounting", p, &[])
                    }));
                }
                _ => {}
            }
        }
        for v in ipa::dedup(raw) {
            let Some(&fi) = by_rel.get(&v.file) else {
                analysis.violations.push(v);
                continue;
            };
            let fd = &mut files[fi];
            if marker_covers(&mut fd.markers, v.lint, v.line) {
                continue;
            }
            let line_text = fd
                .source
                .lines()
                .nth(v.line as usize - 1)
                .unwrap_or_default();
            let entries = allows.iter_mut().find(|(l, _)| l == v.lint).map(|(_, e)| e);
            if let Some(entries) = entries {
                if allowlist_covers(entries, &v.file, line_text) {
                    continue;
                }
            }
            analysis.violations.push(v);
        }
    }

    // Phase 3: stale suppressions fail the run — the code a marker or
    // allowlist entry excused has moved or been fixed; remove it.
    for fd in &files {
        for m in &fd.markers {
            if m.hits == 0 && lint_filter.contains(&m.lint.as_str()) {
                analysis.errors.push(format!(
                    "{}:{}: stale lint:allow({}) marker — it no longer suppresses anything",
                    fd.rel, m.line, m.lint
                ));
            }
        }
    }
    for (lint, entries) in &allows {
        for e in entries {
            if e.hits == 0 {
                analysis.errors.push(format!(
                    "{}.allow:{}: stale entry for {} (`{}`) — it no longer suppresses anything",
                    lint.replace('-', "_"),
                    e.defined_at,
                    e.path,
                    e.substring
                ));
            }
        }
    }
    analysis
}

/// Serialize an [`Analysis`] as the machine-readable findings document
/// emitted by `cargo xtask analyze --json`. Strict JSON — validated by
/// [`benchjson::check_json`] in the meta-tests and diffable across PRs in
/// CI.
pub fn json_report(a: &Analysis, only: Option<&str>) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let lints: Vec<&str> = match only {
        Some(l) => vec![l],
        None => LINT_NAMES.to_vec(),
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"tool\": \"xtask-analyze\",\n");
    s.push_str(&format!(
        "  \"lints\": [{}],\n",
        lints
            .iter()
            .map(|l| format!("\"{}\"", esc(l)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!("  \"clean\": {},\n", a.is_clean()));
    s.push_str(&format!("  \"files_scanned\": {},\n", a.files_scanned));
    s.push_str("  \"violations\": [");
    for (i, v) in a.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
            esc(&v.file),
            v.line,
            esc(v.lint),
            esc(&v.message)
        ));
    }
    if !a.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    s.push_str("  \"errors\": [");
    for (i, e) in a.errors.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{}\"", esc(e)));
    }
    if !a.errors.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}
