//! Sanity checker for the repo's recorded bench artifacts
//! (`BENCH_*.json` at the repo root).
//!
//! Every bench target hand-rolls its JSON with `format!` (the workspace
//! deliberately has no serde), which makes two failure modes easy to
//! ship silently: structurally broken output (a missing comma or brace
//! after an edit) and non-finite floats (`NaN`/`inf` format as bare
//! words, which are not JSON). This module is a strict recursive-descent
//! JSON parser — no dependencies — plus the repo's artifact contract:
//! the top level must be an object carrying a `"bench"` string key.

use std::path::Path;

/// Validate one artifact's bytes. Returns the bench name on success.
pub fn check_artifact(source: &str) -> Result<String, String> {
    let mut p = Parser {
        s: source.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let name = p.top_level_object()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes after the JSON value at {}", p.i));
    }
    name.ok_or_else(|| "top-level object has no \"bench\" string key".into())
}

/// Validate that `source` is one strict JSON object, without the
/// `"bench"`-key artifact contract. Used to check the `analyze --json`
/// findings document, which carries a `"tool"` key instead.
pub fn check_json(source: &str) -> Result<(), String> {
    let mut p = Parser {
        s: source.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.top_level_object()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes after the JSON value at {}", p.i));
    }
    Ok(())
}

/// Validate every `BENCH_*.json` directly under `root`. Returns
/// human-readable `(file, error)` pairs; empty means all artifacts parse.
pub fn check_dir(root: &Path) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut names: Vec<std::path::PathBuf> = match std::fs::read_dir(root) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => return vec![("<root>".into(), format!("cannot list repo root: {e}"))],
    };
    names.sort();
    if names.is_empty() {
        return vec![("<root>".into(), "no BENCH_*.json artifacts found".into())];
    }
    for path in names {
        let file = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<non-utf8>")
            .to_string();
        match std::fs::read_to_string(&path) {
            Ok(src) => {
                if let Err(e) = check_artifact(&src) {
                    out.push((file, e));
                }
            }
            Err(e) => out.push((file, format!("unreadable: {e}"))),
        }
    }
    out
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.s.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.i,
                self.peek().map(|c| c as char)
            ))
        }
    }

    /// Parse the top-level object, returning the value of its `"bench"`
    /// key if that key is present with a string value.
    fn top_level_object(&mut self) -> Result<Option<String>, String> {
        if self.peek() != Some(b'{') {
            return Err("artifact top level is not a JSON object".into());
        }
        let mut bench = None;
        self.object(&mut |key, val| {
            if key == "bench" {
                if let Scalar::Str(s) = val {
                    bench = Some(s);
                }
            }
        })?;
        Ok(bench)
    }

    /// Parse an object; `on_pair` sees each top-of-this-object scalar pair.
    fn object(&mut self, on_pair: &mut dyn FnMut(String, Scalar)) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            on_pair(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.i,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.i,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn value(&mut self) -> Result<Scalar, String> {
        match self.peek() {
            Some(b'{') => {
                self.object(&mut |_, _| {})?;
                Ok(Scalar::Composite)
            }
            Some(b'[') => {
                self.array()?;
                Ok(Scalar::Composite)
            }
            Some(b'"') => Ok(Scalar::Str(self.string()?)),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.i
            )),
        }
    }

    fn literal(&mut self, word: &[u8]) -> Result<Scalar, String> {
        if self.s.get(self.i..self.i + word.len()) == Some(word) {
            self.i += word.len();
            Ok(Scalar::Composite)
        } else {
            Err(format!(
                "bare word at byte {} is not a JSON literal (NaN/inf from a float format?)",
                self.i
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b' | b'f') => out.push(' '),
                        Some(b'u') => {
                            // \uXXXX — validate the hex, keep a placeholder.
                            for k in 1..=4 {
                                if !self
                                    .s
                                    .get(self.i + k)
                                    .is_some_and(|c| c.is_ascii_hexdigit())
                                {
                                    return Err(format!("bad \\u escape at byte {}", self.i));
                                }
                            }
                            self.i += 4;
                            out.push('?');
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.i
                            ))
                        }
                    }
                    self.i += 1;
                }
                Some(c) if c >= 0x20 => {
                    // Copy the raw byte; artifacts are ASCII in practice
                    // and multi-byte UTF-8 passes through unmodified.
                    out.push(c as char);
                    self.i += 1;
                }
                _ => return Err(format!("unterminated string at byte {}", self.i)),
            }
        }
    }

    fn number(&mut self) -> Result<Scalar, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > from
        };
        if !digits(self) {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(format!("malformed number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(format!("malformed number at byte {start}"));
            }
        }
        Ok(Scalar::Composite)
    }
}

/// What an object callback needs to distinguish: strings vs everything
/// else (the contract only inspects the `"bench"` key's string).
pub enum Scalar {
    /// A JSON string value.
    Str(String),
    /// Any other well-formed value (number, bool, null, object, array).
    Composite,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_artifact_shape() {
        let src = r#"{
  "bench": "tiered_scan",
  "n": 20000,
  "speedup": 3.125,
  "neg": -0.5,
  "exp": 1.2e-3,
  "phases": [
    {"phase": "cold", "ms": 1.0, "zero": 0},
    {"phase": "warm", "ms": 0.3, "note": "a \"quoted\" word"}
  ],
  "ok": true,
  "nothing": null
}"#;
        assert_eq!(check_artifact(src).unwrap(), "tiered_scan");
    }

    #[test]
    fn rejects_structural_breakage() {
        // Missing comma, unbalanced brace, trailing garbage, no object.
        for bad in [
            r#"{"bench": "x" "n": 1}"#,
            r#"{"bench": "x", "n": 1"#,
            r#"{"bench": "x"} tail"#,
            r#"[1, 2]"#,
            r#"{"bench": "x", }"#,
        ] {
            assert!(check_artifact(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn rejects_non_finite_float_formatting() {
        // `format!("{}", f64::NAN)` produces bare `NaN` — not JSON. The
        // same goes for `inf`. These are exactly the silent-writer bugs
        // the CI check exists to catch.
        for bad in [
            r#"{"bench": "x", "v": NaN}"#,
            r#"{"bench": "x", "v": inf}"#,
            r#"{"bench": "x", "v": -inf}"#,
        ] {
            assert!(check_artifact(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn requires_the_bench_key() {
        assert!(check_artifact(r#"{"name": "x"}"#).is_err());
        assert!(check_artifact(r#"{"bench": 3}"#).is_err());
    }
}
