//! The three interprocedural lints, built on [`crate::resolver`].
//!
//! - **panic-reachability** — transitive closure of the
//!   `lint:scope(no-panic-decode)` entry points: any path from a scoped
//!   decoder to `unwrap`/`expect`/`panic!`-family/slice-index in *any*
//!   crate fails, with the full call chain printed. Unresolvable dynamic
//!   calls (through callable params) are conservatively panic-capable.
//! - **lock-discipline** — in `src/serve.rs`, `src/lsm.rs`, and
//!   `crates/core/src/parallel.rs`: no second lock acquisition and no raw
//!   VFS I/O reachable inside a lock critical section; no staging-class
//!   maintenance (`prepare_*`, `write_segment`, `prepare_merge`) reachable
//!   from a `Writer::apply` publication closure; every `publish_*` in the
//!   LSM carries the ops-counter fence (or delegates only to fenced
//!   publishers); a write-lock critical section in the serving layer must
//!   publish the epoch before it ends.
//! - **accounting-dataflow** — every raw `VfsFile` I/O call site must
//!   reach an `IoStats` update in the same function or transitively in a
//!   caller (any-path, best-effort — see ANALYSIS.md for the conservatism
//!   policy).
//!
//! Violations are filtered through the same allowlist/marker machinery as
//! the token lints, in [`crate::analyze_repo`].

use std::collections::{HashSet, VecDeque};

use crate::lexer::Tok;
use crate::lints::{self, Violation};
use crate::resolver::{FnId, Workspace};

/// Files subject to the lock-discipline pass — the serving layer, the LSM
/// publication path, and the parallel scan spine.
pub const LOCK_DISCIPLINE_TARGETS: [&str; 3] =
    ["src/serve.rs", "src/lsm.rs", "crates/core/src/parallel.rs"];

/// Staging-class maintenance functions — the expensive half of the
/// prepare/publish split. Reaching one from a publication critical section
/// reintroduces the hold-the-lock-during-merge stall the split removed.
fn is_staging(name: &str) -> bool {
    name.starts_with("prepare_") || name == "write_segment" || name == "prepare_merge"
}

fn violation(file: &str, line: u32, lint: &'static str, message: String) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        lint,
        message,
    }
}

/// Drop `debug_assert*!(...)` invocations from a body slice: the macro
/// (and any slice-indexing inside its arguments) is erased in release
/// builds, so it cannot panic on a production decode path.
fn strip_debug_asserts(body: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(body.len());
    let mut i = 0;
    while i < body.len() {
        if body[i].s.starts_with("debug_assert")
            && body.get(i + 1).is_some_and(|t| t.s == "!")
            && body.get(i + 2).is_some_and(|t| t.s == "(")
        {
            let mut d = 0i64;
            let mut j = i + 2;
            while j < body.len() {
                match body[j].s.as_str() {
                    "(" => d += 1,
                    ")" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        out.push(body[i].clone());
        i += 1;
    }
    out
}

/// Panic-capable tokens inside one body slice, reusing the token lint's
/// matcher (minus release-erased `debug_assert*!` arguments). Returns
/// `(line, description)` pairs.
fn panic_sites(path: &str, body: &[Tok]) -> Vec<(u32, String)> {
    let body = strip_debug_asserts(body);
    lints::no_panic_decode(path, &body)
        .into_iter()
        .map(|v| (v.line, v.message.replace(" in a decode path", "")))
        .collect()
}

/// Raw `VfsFile` I/O call tokens inside one body slice — the same token
/// set as the module-level `accounting` lint.
fn raw_io_sites(body: &[Tok]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        let prev = i
            .checked_sub(1)
            .and_then(|p| body.get(p))
            .map(|t| t.s.as_str());
        let nx = body.get(i + 1).map(|t| t.s.as_str());
        match t.s.as_str() {
            "read_at" | "write_at" if prev == Some(".") && nx == Some("(") => {
                out.push((t.line, t.s.clone()));
            }
            "read_full_at" | "write_full_at" | "read_to_vec" | "write_vec"
                if prev != Some("fn") && nx == Some("(") =>
            {
                out.push((t.line, t.s.clone()));
            }
            _ => {}
        }
    }
    out
}

/// Zero-argument `.lock()` / `.read()` / `.write()` acquisitions inside a
/// token slice. Returns the token index of the method name.
fn lock_acquisitions(body: &[Tok]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        if matches!(body[i].s.as_str(), "lock" | "read" | "write")
            && i >= 1
            && body[i - 1].s == "."
            && body.get(i + 1).is_some_and(|t| t.s == "(")
            && body.get(i + 2).is_some_and(|t| t.s == ")")
        {
            out.push(i);
        }
    }
    out
}

fn body_slice(ws: &Workspace, id: FnId) -> &[Tok] {
    let f = &ws.fns[id];
    let toks = &ws.files[f.file].toks;
    let (a, b) = f.body;
    &toks[a.min(toks.len())..b.min(toks.len())]
}

/// `panic-reachability`: BFS from every function defined in a
/// `lint:scope(no-panic-decode)` file; report each panic-capable token in
/// a reached *unscoped* function (the scoped files themselves are the
/// token lint's jurisdiction), and each unresolvable dynamic call anywhere
/// in the closure.
pub fn panic_reachability(ws: &Workspace, scoped_files: &HashSet<usize>) -> Vec<Violation> {
    const LINT: &str = "panic-reachability";
    let entries: Vec<FnId> = (0..ws.fns.len())
        .filter(|&id| scoped_files.contains(&ws.fns[id].file))
        .collect();
    let preds = ws.forward_reach(&entries);
    let mut reached: Vec<FnId> = preds.keys().copied().collect();
    reached.sort();

    let mut out = Vec::new();
    for id in reached {
        let f = &ws.fns[id];
        let path = ws.files[f.file].path.clone();
        let chain = ws.chain(&preds, id);
        if !scoped_files.contains(&f.file) {
            for (line, desc) in panic_sites(&path, body_slice(ws, id)) {
                out.push(violation(
                    &path,
                    line,
                    LINT,
                    format!(
                        "{desc} in `{}` is reachable from a no-panic-decode scope: {chain}",
                        ws.fn_display(id)
                    ),
                ));
            }
        }
        for site in &ws.calls[id] {
            if site.dynamic {
                out.push(violation(
                    &path,
                    site.line,
                    LINT,
                    format!(
                        "unresolvable dynamic call `{}` in `{}` — conservatively \
                         panic-capable (chain: {chain})",
                        site.display,
                        ws.fn_display(id)
                    ),
                ));
            }
        }
    }
    out
}

/// `lock-discipline`: see the module docs for the four sub-rules.
pub fn lock_discipline(ws: &Workspace) -> Vec<Violation> {
    const LINT: &str = "lock-discipline";
    let n = ws.fns.len();
    let acquires: Vec<bool> = (0..n)
        .map(|id| !lock_acquisitions(body_slice(ws, id)).is_empty())
        .collect();
    let does_io: Vec<bool> = (0..n)
        .map(|id| !raw_io_sites(body_slice(ws, id)).is_empty())
        .collect();

    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !LOCK_DISCIPLINE_TARGETS.contains(&file.path.as_str()) {
            continue;
        }
        let path = file.path.as_str();
        for id in 0..n {
            if ws.fns[id].file != fi {
                continue;
            }
            let body = body_slice(ws, id);
            let b0 = ws.fns[id].body.0;
            let fname = ws.fns[id].name.clone();

            // (1)+(2)+(4): lock critical sections.
            let acqs = lock_acquisitions(body);
            for &acq in &acqs {
                let end = region_end(body, acq);
                let is_write = body[acq].s == "write";
                let mut second_lock_direct = false;
                let mut epoch_published = false;
                for &other in &acqs {
                    if other > acq && other < end {
                        second_lock_direct = true;
                        out.push(violation(
                            path,
                            body[other].line,
                            LINT,
                            format!(
                                "second lock acquisition `.{}()` in `{fname}` while a lock \
                                 guard from line {} is live",
                                body[other].s, body[acq].line
                            ),
                        ));
                    }
                }
                for k in acq + 3..end {
                    if body[k].s == "epoch"
                        && body.get(k + 1).is_some_and(|t| t.s == ".")
                        && body
                            .get(k + 2)
                            .is_some_and(|t| t.s == "fetch_add" || t.s == "store")
                    {
                        epoch_published = true;
                    }
                }
                let io_direct = raw_io_sites(&body[acq..end]).into_iter().next();
                if let Some((line, ref call)) = io_direct {
                    out.push(violation(
                        path,
                        line,
                        LINT,
                        format!(
                            "raw `{call}` in `{fname}` while a lock guard from line {} is live",
                            body[acq].line
                        ),
                    ));
                }
                // Transitive: anything the region calls that locks or
                // does raw I/O.
                let region_callees: Vec<FnId> = ws.calls[id]
                    .iter()
                    .filter(|s| s.tok >= b0 + acq && s.tok < b0 + end)
                    .flat_map(|s| s.callees.iter().copied())
                    .collect();
                if !second_lock_direct {
                    if let Some((hit, chain)) = ws.find_reachable(&region_callees, |c| acquires[c])
                    {
                        out.push(violation(
                            path,
                            body[acq].line,
                            LINT,
                            format!(
                                "`{}` acquires a lock and is reachable from `{fname}`'s \
                                 critical section (line {}): {chain}",
                                ws.fn_display(hit),
                                body[acq].line
                            ),
                        ));
                    }
                }
                if io_direct.is_none() {
                    if let Some((hit, chain)) = ws.find_reachable(&region_callees, |c| does_io[c]) {
                        out.push(violation(
                            path,
                            body[acq].line,
                            LINT,
                            format!(
                                "`{}` does raw VFS I/O and is reachable from `{fname}`'s \
                                 critical section (line {}): {chain}",
                                ws.fn_display(hit),
                                body[acq].line
                            ),
                        ));
                    }
                }
                if path == "src/serve.rs" && is_write && !epoch_published {
                    out.push(violation(
                        path,
                        body[acq].line,
                        LINT,
                        format!(
                            "write-lock critical section in `{fname}` ends without \
                             publishing the epoch (`epoch.fetch_add`/`.store` must precede \
                             the guard drop)"
                        ),
                    ));
                }
            }

            // (3): publication closures — no staging-class maintenance
            // reachable from inside an `apply(...)` argument.
            for k in 0..body.len() {
                if body[k].s != "apply" || body.get(k + 1).map(|t| t.s.as_str()) != Some("(") {
                    continue;
                }
                let close = {
                    let mut d = 0i64;
                    let mut e = k + 1;
                    while e < body.len() {
                        match body[e].s.as_str() {
                            "(" => d += 1,
                            ")" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        e += 1;
                    }
                    e
                };
                let callees: Vec<FnId> = ws.calls[id]
                    .iter()
                    .filter(|s| s.tok > b0 + k && s.tok < b0 + close)
                    .flat_map(|s| s.callees.iter().copied())
                    .collect();
                if let Some((hit, chain)) =
                    ws.find_reachable(&callees, |c| is_staging(&ws.fns[c].name))
                {
                    out.push(violation(
                        path,
                        body[k].line,
                        LINT,
                        format!(
                            "staging-class `{}` is reachable from the publication closure \
                             in `{fname}` — stage outside the writer lock, publish the \
                             finished plan: {chain}",
                            ws.fn_display(hit)
                        ),
                    ));
                }
            }

            // (5): ops-counter fence in every LSM publisher.
            if path == "src/lsm.rs" && fname.starts_with("publish_") {
                // `ops !=` or `ops ==` — the plan-vs-live comparison.
                let fenced = body
                    .windows(3)
                    .any(|w| w[0].s == "ops" && w[2].s == "=" && (w[1].s == "!" || w[1].s == "="));
                let delegates = !ws.calls[id].is_empty()
                    && ws.calls[id].iter().all(|s| {
                        s.callees
                            .iter()
                            .all(|&c| ws.fns[c].name.starts_with("publish_"))
                    });
                if !fenced && !delegates {
                    out.push(violation(
                        path,
                        ws.fns[id].line,
                        LINT,
                        format!(
                            "publisher `{fname}` has no ops-counter fence (compare the \
                             plan's `ops` against the live counter) and does not delegate \
                             to a fenced publisher"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// End of the lexical region opened by the acquisition at `acq`: the `}`
/// that closes the enclosing block, or an explicit `drop(<guard>)` of the
/// binding the acquisition was assigned to.
fn region_end(body: &[Tok], acq: usize) -> usize {
    // Guard name: walk back to the statement start looking for
    // `let [mut] <name> =`.
    let mut guard: Option<&str> = None;
    let mut s = acq;
    while s > 0 {
        match body[s - 1].s.as_str() {
            ";" | "{" | "}" => break,
            _ => s -= 1,
        }
    }
    if body.get(s).is_some_and(|t| t.s == "let") {
        let mut m = s + 1;
        while body.get(m).is_some_and(|t| t.s == "mut" || t.s == "ref") {
            m += 1;
        }
        if body.get(m).is_some_and(|t| {
            t.s.chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
        }) && body.get(m + 1).is_some_and(|t| t.s == "=")
        {
            guard = Some(body[m].s.as_str());
        }
    }
    let mut d = 0i64;
    let mut k = acq;
    while k < body.len() {
        match body[k].s.as_str() {
            "{" => d += 1,
            "}" => {
                d -= 1;
                if d < 0 {
                    return k;
                }
            }
            "drop"
                if d == 0
                    && body.get(k + 1).is_some_and(|t| t.s == "(")
                    && guard.is_some()
                    && body.get(k + 2).map(|t| t.s.as_str()) == guard =>
            {
                return k;
            }
            _ => {}
        }
        k += 1;
    }
    body.len()
}

/// `accounting-dataflow`: a function with raw I/O call sites must mention
/// `IoStats` (or call a `record_*` method, or take an `IoStats` param)
/// itself, or have at least one transitive caller that does.
pub fn accounting_dataflow(ws: &Workspace, in_scope: &dyn Fn(&str) -> bool) -> Vec<Violation> {
    const LINT: &str = "accounting-dataflow";
    let n = ws.fns.len();
    let accounted: Vec<bool> = (0..n)
        .map(|id| {
            let body = body_slice(ws, id);
            let in_body = body.iter().enumerate().any(|(i, t)| {
                t.s == "IoStats"
                    || (t.s.starts_with("record_")
                        && i >= 1
                        && body[i - 1].s == "."
                        && body.get(i + 1).is_some_and(|t| t.s == "("))
            });
            in_body
                || ws.fns[id]
                    .params
                    .iter()
                    .any(|(_, t)| t.as_deref() == Some("IoStats"))
        })
        .collect();
    let callers = ws.callers();

    let mut out = Vec::new();
    for id in 0..n {
        let path = &ws.files[ws.fns[id].file].path;
        if !in_scope(path) {
            continue;
        }
        let sites = raw_io_sites(body_slice(ws, id));
        if sites.is_empty() || accounted[id] {
            continue;
        }
        // Reverse BFS: does any transitive caller account?
        let mut seen: HashSet<FnId> = HashSet::from([id]);
        let mut q: VecDeque<FnId> = VecDeque::from([id]);
        let mut reached_accounting = false;
        let mut visited_callers = 0usize;
        while let Some(f) = q.pop_front() {
            for &c in callers.get(&f).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(c) {
                    visited_callers += 1;
                    if accounted[c] {
                        reached_accounting = true;
                        q.clear();
                        break;
                    }
                    q.push_back(c);
                }
            }
        }
        if !reached_accounting {
            let direct: Vec<String> = callers
                .get(&id)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .take(3)
                .map(|&c| ws.fn_display(c))
                .collect();
            for (line, call) in sites {
                out.push(violation(
                    path,
                    line,
                    LINT,
                    format!(
                        "raw `{call}` in `{}` never reaches an `IoStats` update — not in \
                         this function nor in any of {visited_callers} transitive caller(s){}",
                        ws.fn_display(id),
                        if direct.is_empty() {
                            String::from(" (no workspace caller found)")
                        } else {
                            format!(" (direct callers: {})", direct.join(", "))
                        }
                    ),
                ));
            }
        }
    }
    out
}

/// Map scoped-file paths to indices for [`panic_reachability`].
pub fn scoped_file_set(ws: &Workspace, scoped_paths: &HashSet<String>) -> HashSet<usize> {
    ws.files
        .iter()
        .enumerate()
        .filter(|(_, f)| scoped_paths.contains(&f.path))
        .map(|(i, _)| i)
        .collect()
}

/// Sort + dedup violations (several sub-rules can hit the same line with
/// the same message when regions nest).
pub fn dedup(mut v: Vec<Violation>) -> Vec<Violation> {
    v.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    v.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    v
}
