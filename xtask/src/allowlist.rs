//! Allowlist files, in-code `lint:allow` markers, and `lint:scope`
//! module attributes.
//!
//! Two escape hatches, both requiring a written justification:
//!
//! 1. **Allowlist files** — `xtask/allowlists/<lint>.allow`, one entry per
//!    line: `path :: substring :: justification`. The entry suppresses a
//!    violation when the violation is in `path` and the violating source
//!    line contains `substring`. Capped at 40 entries per lint; an entry
//!    that suppresses nothing is *stale* and fails the run.
//!
//! 2. **In-code markers** — a comment `lint:allow(<lint>, "justification")`
//!    on the violating line or the line directly above it. A marker with a
//!    missing or empty justification is an error; a marker that suppresses
//!    nothing is stale and fails the run.
//!
//! Plus one opt-in mechanism: a **scope attribute** — a module-doc line
//! `//! lint:scope(<lint>)` — declares the module subject to a lint whose
//! scope is attribute-driven (today: `no-panic-decode`). The attribute
//! lives in the file it scopes, so a new decode module carries its lint
//! obligations from birth instead of waiting for someone to grow a list
//! inside the lint tool.

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Repo-relative path the entry applies to.
    pub path: String,
    /// Substring that must appear on the violating source line.
    pub substring: String,
    /// Why this violation is acceptable (display only, must be non-empty).
    pub justification: String,
    /// 1-based line in the allowlist file (for stale-entry reporting).
    pub defined_at: u32,
    /// How many violations this entry suppressed this run.
    pub hits: u32,
}

/// Hard cap on entries per allowlist: an allowlist this long is a policy
/// failure, not an escape hatch.
pub const MAX_ENTRIES: usize = 40;

/// Parse `<lint>.allow` content. Returns entries or a list of syntax
/// errors (`file:line: message`).
pub fn parse_allowlist(name: &str, content: &str) -> Result<Vec<AllowEntry>, Vec<String>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(3, " :: ").collect();
        match parts.as_slice() {
            [path, substring, justification]
                if !path.is_empty() && !substring.is_empty() && !justification.trim().is_empty() =>
            {
                entries.push(AllowEntry {
                    path: path.trim().to_string(),
                    substring: substring.to_string(),
                    justification: justification.trim().to_string(),
                    defined_at: line_no,
                    hits: 0,
                });
            }
            _ => errors.push(format!(
                "{name}.allow:{line_no}: malformed entry (want `path :: substring :: justification`, justification non-empty)"
            )),
        }
    }
    if entries.len() > MAX_ENTRIES {
        errors.push(format!(
            "{name}.allow: {} entries exceeds the {MAX_ENTRIES}-entry cap — fix the code instead of growing the allowlist",
            entries.len()
        ));
    }
    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// One in-code `lint:allow(...)` marker.
#[derive(Debug, Clone)]
pub struct Marker {
    /// Lint the marker addresses.
    pub lint: String,
    /// 1-based line the marker sits on; it covers this line and the next.
    pub line: u32,
    /// Non-empty justification string.
    pub justification: String,
    /// How many violations it suppressed this run.
    pub hits: u32,
}

/// Extract `lint:allow(<lint>, "justification")` markers from a source
/// file. Malformed markers (no closing paren, missing or empty
/// justification) are reported as errors — an unexplained allow is
/// indistinguishable from a suppressed bug.
pub fn parse_markers(file: &str, source: &str) -> (Vec<Marker>, Vec<String>) {
    let mut markers = Vec::new();
    let mut errors = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let Some(start) = line.find("lint:allow(") else {
            continue;
        };
        let rest = &line[start + "lint:allow(".len()..];
        let parsed = (|| {
            let comma = rest.find(',')?;
            let lint = rest.get(..comma)?.trim().to_string();
            let after = rest.get(comma + 1..)?;
            let q1 = after.find('"')?;
            let after_q1 = after.get(q1 + 1..)?;
            let q2 = after_q1.find('"')?;
            let justification = after_q1.get(..q2)?.to_string();
            after_q1.get(q2 + 1..)?.trim_start().strip_prefix(')')?;
            if lint.is_empty() || justification.trim().is_empty() {
                return None;
            }
            Some(Marker {
                lint,
                line: line_no,
                justification,
                hits: 0,
            })
        })();
        match parsed {
            Some(m) => markers.push(m),
            None => errors.push(format!(
                "{file}:{line_no}: malformed lint:allow marker — want `lint:allow(<lint>, \"non-empty justification\")`"
            )),
        }
    }
    (markers, errors)
}

/// Extract `lint:scope(<lint>)` attributes from a source file. Returns
/// the scoped lint names plus errors for malformed attributes (no closing
/// paren, empty lint name). Attribute placement is free-form — any line
/// containing the token counts — but by convention it sits in the module
/// doc comment at the top of the file.
pub fn parse_scopes(file: &str, source: &str) -> (Vec<String>, Vec<String>) {
    let mut scopes = Vec::new();
    let mut errors = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let Some(start) = line.find("lint:scope(") else {
            continue;
        };
        let rest = &line[start + "lint:scope(".len()..];
        match rest.find(')') {
            Some(end) => {
                let lint = rest[..end].trim();
                if lint.is_empty() {
                    errors.push(format!(
                        "{file}:{line_no}: malformed lint:scope attribute — want `lint:scope(<lint>)`"
                    ));
                } else {
                    scopes.push(lint.to_string());
                }
            }
            None => errors.push(format!(
                "{file}:{line_no}: malformed lint:scope attribute — missing `)`"
            )),
        }
    }
    (scopes, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_parse_and_reject() {
        let (s, e) = parse_scopes("f.rs", "//! lint:scope(no-panic-decode)\nfn f() {}\n");
        assert_eq!(s, vec!["no-panic-decode".to_string()]);
        assert!(e.is_empty());

        let (s, e) = parse_scopes("f.rs", "//! lint:scope(no-panic-decode\n");
        assert!(s.is_empty());
        assert_eq!(e.len(), 1);

        let (s, e) = parse_scopes("f.rs", "//! lint:scope()\n");
        assert!(s.is_empty());
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn allowlist_round_trip() {
        let src = "# c\n\ncrates/a.rs :: foo[i] :: bounded by loop\n";
        let e = parse_allowlist("x", src).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].path, "crates/a.rs");
        assert_eq!(e[0].substring, "foo[i]");
    }

    #[test]
    fn allowlist_rejects_empty_justification() {
        assert!(parse_allowlist("x", "a.rs :: foo ::  \n").is_err());
        assert!(parse_allowlist("x", "a.rs :: foo\n").is_err());
    }

    #[test]
    fn markers_parse_and_reject() {
        let (m, e) = parse_markers("f.rs", "// lint:allow(vfs-seam, \"test fixture\")\nx\n");
        assert_eq!(m.len(), 1);
        assert!(e.is_empty());
        assert_eq!(m[0].lint, "vfs-seam");

        let (m, e) = parse_markers("f.rs", "// lint:allow(vfs-seam, \"\")\n");
        assert!(m.is_empty());
        assert_eq!(e.len(), 1);

        let (m, e) = parse_markers("f.rs", "// lint:allow(vfs-seam)\n");
        assert!(m.is_empty());
        assert_eq!(e.len(), 1);
    }
}
