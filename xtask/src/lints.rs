//! The four architectural-invariant lints.
//!
//! Each lint takes a repo-relative path plus the file's token stream and
//! returns raw violations; allowlist filtering happens in
//! [`crate::allowlist`]. See `ANALYSIS.md` for the catalog and rationale.

use crate::lexer::Tok;

/// One raw lint finding, before allowlist filtering.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name (one of [`LINT_NAMES`]).
    pub lint: &'static str,
    /// Human-readable description of what fired.
    pub message: String,
}

/// All lint names, in the order they run. The first four are per-file
/// token lints; the last three are interprocedural (see [`crate::ipa`]).
pub const LINT_NAMES: [&str; 7] = [
    "vfs-seam",
    "no-panic-decode",
    "determinism",
    "accounting",
    "panic-reachability",
    "lock-discipline",
    "accounting-dataflow",
];

fn violation(file: &str, line: u32, lint: &'static str, message: String) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        lint,
        message,
    }
}

/// `vfs-seam`: the only module allowed to touch the host filesystem is
/// `crates/storage/src/vfs.rs` (where [`RealVfs`] lives). Everything else
/// — production code, tests, and benches alike — must go through a [`Vfs`]
/// handle, or fault injection and the in-memory harness silently lose
/// coverage. Flags `std::fs`, `fs::…` paths, `File::open`/`File::create`,
/// and `OpenOptions`.
pub fn vfs_seam(file: &str, toks: &[Tok]) -> Vec<Violation> {
    const LINT: &str = "vfs-seam";
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let nx = |k: usize| toks.get(i + k).map(|t| t.s.as_str());
        match t.s.as_str() {
            "std" if nx(1) == Some("::") && nx(2) == Some("fs") => {
                out.push(violation(
                    file,
                    t.line,
                    LINT,
                    "`std::fs` outside the Vfs seam".into(),
                ));
            }
            // Bare `fs::…` after a `use std::fs` (the use itself is also
            // flagged, but a partial cleanup should not hide call sites).
            "fs" if nx(1) == Some("::")
                && (i == 0 || toks[i - 1].s != "::")
                && nx(2).is_some_and(|s| s != "Vfs" && s != "VfsFile") =>
            {
                out.push(violation(
                    file,
                    t.line,
                    LINT,
                    "`fs::` path outside the Vfs seam".into(),
                ));
            }
            "File"
                if nx(1) == Some("::")
                    && matches!(nx(2), Some("open") | Some("create"))
                    && (i == 0 || toks[i - 1].s != "::") =>
            {
                out.push(violation(
                    file,
                    t.line,
                    LINT,
                    format!("`File::{}` outside the Vfs seam", nx(2).unwrap_or("")),
                ));
            }
            "OpenOptions" => {
                out.push(violation(
                    file,
                    t.line,
                    LINT,
                    "`OpenOptions` outside the Vfs seam".into(),
                ));
            }
            _ => {}
        }
    }
    out
}

/// Keywords that can legitimately precede a `[` that is *not* an index
/// expression (`for [a, b] in …`, `impl Trait for [T]`, `return [x]`, …).
const NON_INDEX_KEYWORDS: [&str; 16] = [
    "for", "in", "as", "return", "break", "if", "else", "match", "move", "mut", "ref", "where",
    "impl", "dyn", "let", "box",
];

/// `no-panic-decode`: decode, estimator, and query-plan modules parse
/// bytes that came from disk — possibly corrupt disk. Panicking there
/// turns recoverable corruption into an abort, so `unwrap()`, `expect()`,
/// `panic!`, `unreachable!`, `todo!`, `unimplemented!`, and slice-index
/// expressions (`buf[i]`, `buf[a..b]`) are banned; use `get`/`get_mut`,
/// the checked readers in `iva_storage::codec`, or propagate an error.
pub fn no_panic_decode(file: &str, toks: &[Tok]) -> Vec<Violation> {
    const LINT: &str = "no-panic-decode";
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let nx = |k: usize| toks.get(i + k).map(|t| t.s.as_str());
        let prev = i
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .map(|t| t.s.as_str());
        match t.s.as_str() {
            "unwrap" | "expect" if prev == Some(".") && nx(1) == Some("(") => {
                out.push(violation(
                    file,
                    t.line,
                    LINT,
                    format!("`.{}()` in a decode path", t.s),
                ));
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if nx(1) == Some("!") => {
                out.push(violation(
                    file,
                    t.line,
                    LINT,
                    format!("`{}!` in a decode path", t.s),
                ));
            }
            "[" => {
                let Some(p) = prev else { continue };
                let is_index_base = p == ")"
                    || p == "]"
                    || (p
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                        && !NON_INDEX_KEYWORDS.contains(&p));
                if is_index_base {
                    out.push(violation(
                        file,
                        t.line,
                        LINT,
                        format!("slice-index `{p}[…]` in a decode path (use `.get(…)`)"),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// `determinism`: the index/storage/query stack must be replayable — the
/// crash-recovery torture tests replay an operation log and expect
/// bit-identical files, and query results must not depend on the clock.
/// Flags `Instant::now`, `SystemTime`, `thread_rng`, `from_entropy`, and
/// `rand::random` in production modules. The one audited clock is
/// `thread_cpu_time()` in `crates/core/src/timing.rs` (measurement only,
/// never control flow) — it is carried on the allowlist.
pub fn determinism(file: &str, toks: &[Tok]) -> Vec<Violation> {
    const LINT: &str = "determinism";
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let nx = |k: usize| toks.get(i + k).map(|t| t.s.as_str());
        match t.s.as_str() {
            "Instant" if nx(1) == Some("::") && nx(2) == Some("now") => {
                out.push(violation(
                    file,
                    t.line,
                    LINT,
                    "`Instant::now` in a deterministic module".into(),
                ));
            }
            "SystemTime" => {
                out.push(violation(
                    file,
                    t.line,
                    LINT,
                    "`SystemTime` in a deterministic module".into(),
                ));
            }
            "thread_rng" | "from_entropy" => {
                out.push(violation(
                    file,
                    t.line,
                    LINT,
                    format!("`{}` (ambient randomness) in a deterministic module", t.s),
                ));
            }
            "random" if i >= 2 && toks[i - 1].s == "::" && toks[i - 2].s == "rand" => {
                out.push(violation(
                    file,
                    t.line,
                    LINT,
                    "`rand::random` in a deterministic module".into(),
                ));
            }
            _ => {}
        }
    }
    out
}

/// `accounting`: the paper's evaluation is I/O-centric, so every raw
/// [`VfsFile`] read or write must be visible to [`IoStats`]. A module that
/// calls `.read_at(…)` / `.write_at(…)` / `read_full_at(…)` without ever
/// touching `IoStats` is doing unaccounted I/O — the benchmarks would
/// under-report it. The whole-file helpers (`read_to_vec(…)`,
/// `write_vec(…)`, `write_full_at(…)`) count as raw I/O too: the
/// segmented write path moves bytes through them (manifest and commit
/// records), and every tier — memtable, sealed segment, manifest — is
/// required to carry its own `IoStats`, so a tier module that streams
/// whole files without stats is exactly the under-reporting this lint
/// exists to catch. Fires once per offending file, at the first raw call.
pub fn accounting(file: &str, toks: &[Tok]) -> Vec<Violation> {
    const LINT: &str = "accounting";
    let mut first_raw: Option<(u32, String)> = None;
    let mut mentions_stats = false;
    for (i, t) in toks.iter().enumerate() {
        let prev = i
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .map(|t| t.s.as_str());
        let nx = |k: usize| toks.get(i + k).map(|t| t.s.as_str());
        match t.s.as_str() {
            "IoStats" => mentions_stats = true,
            "read_at" | "write_at"
                if prev == Some(".") && nx(1) == Some("(") && first_raw.is_none() =>
            {
                first_raw = Some((t.line, t.s.clone()));
            }
            "read_full_at" | "write_full_at" | "read_to_vec" | "write_vec"
                if prev != Some("fn") && nx(1) == Some("(") && first_raw.is_none() =>
            {
                first_raw = Some((t.line, t.s.clone()));
            }
            _ => {}
        }
    }
    match first_raw {
        Some((line, call)) if !mentions_stats => vec![violation(
            file,
            line,
            LINT,
            format!("raw `{call}` in a module that never updates `IoStats`"),
        )],
        _ => Vec::new(),
    }
}
