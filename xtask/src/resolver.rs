//! Whole-workspace resolver and best-effort call graph.
//!
//! Indexes every `fn`, `impl`, `trait`, `struct`, and `use` alias across
//! the workspace from the token streams produced by [`crate::lexer`] —
//! still no `syn`, no nightly, no network — and extracts call edges for
//! the interprocedural lints (`panic-reachability`, `lock-discipline`,
//! `accounting-dataflow`; see `ANALYSIS.md` for the catalog entries).
//!
//! ## Resolution rules (documented in ANALYSIS.md, kept in sync)
//!
//! - **Free calls** `name(...)` resolve to free functions of that name in
//!   the same file first, else to every free function of that name in the
//!   workspace (cross-crate `use` needs no path resolution: names are
//!   global; `use ... as alias` renames are applied first).
//! - **Qualified calls** `Type::name(...)` resolve through the impl index
//!   for `Type` (structs and enums), through the trait-impl index when
//!   `Type` is a trait (every impl of that trait method), or — when the
//!   qualifier is lowercase — to functions defined in the file whose stem
//!   matches (`codec::le_u64` → `crates/storage/src/codec.rs`).
//!   `Self::name` uses the enclosing impl type; unknown qualifiers are
//!   external (std) and produce no edge.
//! - **Method calls** `recv.name(...)` infer the receiver type from
//!   `self` (the enclosing impl type), typed params, `let` bindings
//!   (`let x: T`, `let x = T::...`), and `self.field` chains through the
//!   struct-field index. A receiver that resolves to a trait links to
//!   every impl of that trait method. An *unknown* receiver links to every
//!   workspace impl of that method name — conservative over-approximation
//!   — unless the name is in [`PRELUDE_METHODS`] (ubiquitous std names),
//!   in which case it is assumed std and produces no edge.
//! - **Dynamic calls** — invoking a callable parameter (`f(...)` where
//!   `f: impl FnOnce(...)`) — cannot be resolved at all. They are recorded
//!   as [`CallSite::dynamic`] and the panic-reachability pass treats them
//!   as panic-capable unless a `lint:allow` marker audits them.
//! - Macros other than the panic family are not call edges (their
//!   argument expressions still are, token by token).
//!
//! Nested `fn` bodies overlap their parent's body range, so a parent is
//! (conservatively) credited with its nested function's calls too.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::lexer::Tok;

/// Index into [`Workspace::fns`].
pub type FnId = usize;

/// One source file in the workspace (token stream is test-stripped).
pub struct SourceFile {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// File stem (`bytelog` for `crates/storage/src/bytelog.rs`).
    pub stem: String,
    /// Test-stripped token stream.
    pub toks: Vec<Tok>,
    /// `use ... as alias` renames: alias → original name.
    pub aliases: HashMap<String, String>,
}

/// One `fn` definition found anywhere in the workspace.
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the name token.
    pub line: u32,
    /// Enclosing `impl`/`trait` self type, if any (last path segment).
    pub impl_type: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` fns.
    pub trait_name: Option<String>,
    /// Token range of the body *inside* the braces, within the file's
    /// stream. `(0, 0)` for body-less trait declarations.
    pub body: (usize, usize),
    /// Parameter names with their resolved workspace types (if any).
    pub params: Vec<(String, Option<String>)>,
    /// Parameters whose type mentions `Fn`/`FnMut`/`FnOnce` — calling one
    /// is an unresolvable dynamic edge.
    pub callable_params: Vec<String>,
    /// Workspace type returned by this fn, if resolvable (`Self` maps to
    /// the impl type). Types `let x = f(…)` locals at call sites.
    pub ret_type: Option<String>,
}

/// One resolved call site inside a function body.
pub struct CallSite {
    /// Candidate callees (possibly several — conservative).
    pub callees: Vec<FnId>,
    /// 1-based source line of the call.
    pub line: u32,
    /// Token index of the called name within the file's stream.
    pub tok: usize,
    /// Display text for diagnostics (`Type::name`, `.name`, `name`).
    pub display: String,
    /// True for calls through callable params — unresolvable, treated as
    /// panic-capable by the reachability pass unless marked.
    pub dynamic: bool,
}

/// The resolved workspace: files, functions, and per-function call sites.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnDef>,
    /// Parallel to `fns`: the call sites inside each body.
    pub calls: Vec<Vec<CallSite>>,
}

/// Ubiquitous std method names: an *unknown-receiver* call to one of these
/// is assumed to be std and produces no edge. A receiver that resolves to
/// a workspace type still links precisely. This is the documented
/// precision/recall trade: workspace methods shadowing these names need a
/// typed receiver (`self.`, a typed param, or a `let` binding) to get an
/// edge.
pub const PRELUDE_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "binary_search_by_key",
    "chain",
    "chars",
    "chunks",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "create",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "extend_from_slice",
    "fetch_add",
    "fetch_or",
    "fetch_sub",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_inner",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "map_err",
    "map_or",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "notify_all",
    "notify_one",
    "ok",
    "ok_or",
    "ok_or_else",
    "open",
    "or_else",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "position",
    "pow",
    "push",
    "push_back",
    "push_front",
    "push_str",
    "read",
    "recv",
    "remove",
    "repeat",
    "resize",
    "retain",
    "rev",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "send",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "spawn",
    "split_at",
    "split_off",
    "starts_with",
    "step_by",
    "store",
    "sum",
    "swap",
    "take",
    "then",
    "to_le_bytes",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_into",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "wait",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "write",
    "zip",
];

/// Keywords that look like free calls but are not.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "move", "in", "as", "fn", "let", "else",
    "unsafe", "where", "break", "continue", "await", "box", "dyn", "ref",
];

/// Container/wrapper types skipped when extracting the "interesting" type
/// ident from a type expression — the resolver wants `Shared` out of
/// `Arc<Shared<E>>`, which it finds as the first *workspace-known* ident.
fn resolve_type_ident(raw: &[String], known: &HashSet<String>) -> Option<String> {
    raw.iter().find(|s| known.contains(s.as_str())).cloned()
}

/// Skip a balanced `<...>` group starting at `toks[j] == "<"`. `->` inside
/// (Fn-trait sugar) is stepped over so its `>` does not close the group.
fn skip_angles(toks: &[Tok], mut j: usize) -> usize {
    let mut d = 0i64;
    while j < toks.len() {
        match toks[j].s.as_str() {
            "-" if toks.get(j + 1).is_some_and(|t| t.s == ">") => {
                j += 2;
                continue;
            }
            "<" => d += 1,
            ">" => {
                d -= 1;
                if d == 0 {
                    return j + 1;
                }
            }
            // An array type (`[u8; 64]`) nested in the generics carries a
            // `;` that must not trip the bail-out below.
            "[" => {
                j = skip_brackets(toks, j);
                continue;
            }
            ";" | "{" => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skip a balanced `(...)` group starting at `toks[j] == "("`.
fn skip_parens(toks: &[Tok], mut j: usize) -> usize {
    let mut d = 0i64;
    while j < toks.len() {
        match toks[j].s.as_str() {
            "(" => d += 1,
            ")" => {
                d -= 1;
                if d == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skip a balanced `[...]` group starting at `toks[j] == "["`.
fn skip_brackets(toks: &[Tok], mut j: usize) -> usize {
    let mut d = 0i64;
    while j < toks.len() {
        match toks[j].s.as_str() {
            "[" => d += 1,
            "]" => {
                d -= 1;
                if d == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

fn is_ident(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Raw (pre-resolution) function record from the structural pass.
struct RawFn {
    name: String,
    file: usize,
    line: u32,
    impl_type: Option<String>,
    trait_name: Option<String>,
    body: (usize, usize),
    /// (param name, raw type tokens)
    params_raw: Vec<(String, Vec<String>)>,
    /// Ident tokens of the return type (`-> …`, up to `where`/body).
    ret_raw: Vec<String>,
}

enum Ctx {
    Impl {
        ty: Option<String>,
        tr: Option<String>,
    },
    Trait(String),
}

impl Workspace {
    /// Build the workspace from `(repo-relative path, test-stripped
    /// tokens)` pairs.
    pub fn build(inputs: Vec<(String, Vec<Tok>)>) -> Workspace {
        let mut files = Vec::new();
        let mut raw_fns: Vec<RawFn> = Vec::new();
        let mut struct_fields_raw: HashMap<String, Vec<(String, Vec<String>)>> = HashMap::new();
        let mut traits: HashSet<String> = HashSet::new();

        for (path, toks) in inputs {
            let stem = path
                .rsplit('/')
                .next()
                .unwrap_or(&path)
                .trim_end_matches(".rs")
                .to_string();
            let file_idx = files.len();
            let mut aliases = HashMap::new();
            scan_file(
                file_idx,
                &toks,
                &mut raw_fns,
                &mut struct_fields_raw,
                &mut traits,
                &mut aliases,
            );
            files.push(SourceFile {
                path,
                stem,
                toks,
                aliases,
            });
        }

        // The known-type universe: impl self types, struct names, traits.
        let mut known: HashSet<String> = traits.clone();
        known.extend(struct_fields_raw.keys().cloned());
        for f in &raw_fns {
            if let Some(t) = &f.impl_type {
                known.insert(t.clone());
            }
        }

        let fields: HashMap<String, HashMap<String, String>> = struct_fields_raw
            .iter()
            .map(|(name, flds)| {
                let m = flds
                    .iter()
                    .filter_map(|(fname, raw)| {
                        resolve_type_ident(raw, &known).map(|t| (fname.clone(), t))
                    })
                    .collect();
                (name.clone(), m)
            })
            .collect();

        let fns: Vec<FnDef> = raw_fns
            .into_iter()
            .map(|r| {
                let callable_params = r
                    .params_raw
                    .iter()
                    .filter(|(_, raw)| {
                        raw.iter()
                            .any(|s| matches!(s.as_str(), "Fn" | "FnMut" | "FnOnce"))
                    })
                    .map(|(n, _)| n.clone())
                    .collect();
                let params = r
                    .params_raw
                    .iter()
                    .map(|(n, raw)| (n.clone(), resolve_type_ident(raw, &known)))
                    .collect();
                let ret_type = if r.ret_raw.iter().any(|s| s == "Self") {
                    r.impl_type.clone()
                } else {
                    resolve_type_ident(&r.ret_raw, &known)
                };
                FnDef {
                    name: r.name,
                    file: r.file,
                    line: r.line,
                    impl_type: r.impl_type,
                    trait_name: r.trait_name,
                    body: r.body,
                    params,
                    callable_params,
                    ret_type,
                }
            })
            .collect();

        // Indexes for resolution.
        let mut free_by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut methods_by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut methods: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        let mut trait_methods: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        let mut by_stem: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        for (id, f) in fns.iter().enumerate() {
            match &f.impl_type {
                None => free_by_name.entry(&f.name).or_default().push(id),
                Some(t) => {
                    methods_by_name.entry(&f.name).or_default().push(id);
                    methods.entry((t, &f.name)).or_default().push(id);
                }
            }
            if let Some(tr) = &f.trait_name {
                trait_methods.entry((tr, &f.name)).or_default().push(id);
            }
            by_stem
                .entry((&files[f.file].stem, &f.name))
                .or_default()
                .push(id);
        }

        let idx = Indexes {
            known: &known,
            traits: &traits,
            fields: &fields,
            free_by_name: &free_by_name,
            methods_by_name: &methods_by_name,
            methods: &methods,
            trait_methods: &trait_methods,
            by_stem: &by_stem,
        };

        let calls = fns
            .iter()
            .map(|f| extract_calls(f, &fns, &files, &idx))
            .collect();

        Workspace { files, fns, calls }
    }

    /// `stem::name` or `stem::Type::name` — the diagnostic display form.
    pub fn fn_display(&self, id: FnId) -> String {
        let f = &self.fns[id];
        let stem = &self.files[f.file].stem;
        match &f.impl_type {
            Some(t) => format!("{stem}::{t}::{}", f.name),
            None => format!("{stem}::{}", f.name),
        }
    }

    /// Every function defined in `path`.
    pub fn fns_in_file(&self, path: &str) -> Vec<FnId> {
        let Some(fi) = self.files.iter().position(|f| f.path == path) else {
            return Vec::new();
        };
        (0..self.fns.len())
            .filter(|&id| self.fns[id].file == fi)
            .collect()
    }

    /// Forward BFS from `entries`. Returns reachable fn → predecessor
    /// `(caller, call line)`; entries map to `None`.
    pub fn forward_reach(&self, entries: &[FnId]) -> HashMap<FnId, Option<(FnId, u32)>> {
        let mut preds: HashMap<FnId, Option<(FnId, u32)>> = HashMap::new();
        let mut q: VecDeque<FnId> = VecDeque::new();
        for &e in entries {
            if preds.insert(e, None).is_none() {
                q.push_back(e);
            }
        }
        while let Some(f) = q.pop_front() {
            for site in &self.calls[f] {
                for &c in &site.callees {
                    preds.entry(c).or_insert_with(|| {
                        q.push_back(c);
                        Some((f, site.line))
                    });
                }
            }
        }
        preds
    }

    /// Reconstruct the entry→target chain from a [`forward_reach`] map,
    /// formatted for diagnostics: `a::f → b::g → c::h`.
    pub fn chain(&self, preds: &HashMap<FnId, Option<(FnId, u32)>>, target: FnId) -> String {
        let mut path = vec![target];
        let mut cur = target;
        while let Some(Some((p, _))) = preds.get(&cur) {
            path.push(*p);
            cur = *p;
            if path.len() > 64 {
                break;
            }
        }
        path.reverse();
        path.iter()
            .map(|&id| self.fn_display(id))
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Caller map: callee → callers (deduplicated).
    pub fn callers(&self) -> HashMap<FnId, Vec<FnId>> {
        let mut m: HashMap<FnId, Vec<FnId>> = HashMap::new();
        for (f, sites) in self.calls.iter().enumerate() {
            for site in sites {
                for &c in &site.callees {
                    let v = m.entry(c).or_default();
                    if !v.contains(&f) {
                        v.push(f);
                    }
                }
            }
        }
        m
    }

    /// BFS from `start` for the first function satisfying `pred` (the
    /// start set itself included); returns the call chain
    /// `start → … → hit` if found.
    pub fn find_reachable(
        &self,
        start: &[FnId],
        pred: impl Fn(FnId) -> bool,
    ) -> Option<(FnId, String)> {
        let preds = self.forward_reach(start);
        let mut hits: Vec<FnId> = preds.keys().copied().filter(|&id| pred(id)).collect();
        hits.sort();
        hits.first().map(|&h| (h, self.chain(&preds, h)))
    }
}

struct Indexes<'a> {
    known: &'a HashSet<String>,
    traits: &'a HashSet<String>,
    fields: &'a HashMap<String, HashMap<String, String>>,
    free_by_name: &'a HashMap<&'a str, Vec<FnId>>,
    methods_by_name: &'a HashMap<&'a str, Vec<FnId>>,
    methods: &'a HashMap<(&'a str, &'a str), Vec<FnId>>,
    trait_methods: &'a HashMap<(&'a str, &'a str), Vec<FnId>>,
    by_stem: &'a HashMap<(&'a str, &'a str), Vec<FnId>>,
}

/// Structural pass over one file: functions, impl/trait contexts, struct
/// fields, and `use ... as` aliases.
fn scan_file(
    file_idx: usize,
    toks: &[Tok],
    fns: &mut Vec<RawFn>,
    struct_fields: &mut HashMap<String, Vec<(String, Vec<String>)>>,
    traits: &mut HashSet<String>,
    aliases: &mut HashMap<String, String>,
) {
    let mut depth = 0i64;
    // (depth the block opened at — pop when depth drops back to it)
    let mut ctx: Vec<(i64, Ctx)> = Vec::new();
    let mut i = 0usize;
    let n = toks.len();
    while i < n {
        match toks[i].s.as_str() {
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth -= 1;
                while ctx.last().is_some_and(|(d, _)| *d > depth) {
                    ctx.pop();
                }
                i += 1;
            }
            "use" => {
                // Walk to `;`, recording `as` renames.
                let mut last_ident: Option<&str> = None;
                while i < n && toks[i].s != ";" {
                    if toks[i].s == "as" {
                        if let (Some(orig), Some(alias)) = (last_ident, toks.get(i + 1)) {
                            if is_ident(&alias.s) {
                                aliases.insert(alias.s.clone(), orig.to_string());
                            }
                        }
                        i += 1;
                    } else if is_ident(&toks[i].s) {
                        last_ident = Some(&toks[i].s);
                    }
                    i += 1;
                }
                i += 1;
            }
            "struct" if toks.get(i + 1).is_some_and(|t| is_ident(&t.s)) => {
                let name = toks[i + 1].s.clone();
                let mut j = i + 2;
                if toks.get(j).is_some_and(|t| t.s == "<") {
                    j = skip_angles(toks, j);
                }
                // Skip any `where` clause before the body.
                while j < n && toks[j].s != "{" && toks[j].s != "(" && toks[j].s != ";" {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.s == "{") {
                    let flds = parse_struct_fields(toks, j);
                    struct_fields.insert(name, flds);
                }
                // Main loop continues from the header; the body holds no
                // items of interest and braces stay balanced.
                i += 2;
            }
            "trait" if toks.get(i + 1).is_some_and(|t| is_ident(&t.s)) => {
                let name = toks[i + 1].s.clone();
                traits.insert(name.clone());
                let mut j = i + 2;
                while j < n && toks[j].s != "{" && toks[j].s != ";" {
                    if toks[j].s == "<" {
                        j = skip_angles(toks, j);
                    } else {
                        j += 1;
                    }
                }
                if toks.get(j).is_some_and(|t| t.s == "{") {
                    depth += 1;
                    ctx.push((depth, Ctx::Trait(name)));
                    i = j + 1;
                } else {
                    i = j;
                }
            }
            "impl" => {
                let (hdr, j) = parse_impl_header(toks, i);
                match hdr {
                    Some((ty, tr)) => {
                        depth += 1;
                        ctx.push((depth, Ctx::Impl { ty, tr }));
                        i = j; // just past the `{`
                    }
                    None => i = j,
                }
            }
            "fn" if toks.get(i + 1).is_some_and(|t| is_ident(&t.s)) => {
                let (raw, next) = parse_fn(file_idx, toks, i, ctx.last().map(|(_, c)| c), traits);
                if let Some(mut r) = raw {
                    // Count braces the main loop will now skip (signature
                    // only — we resume at the body start so nested items
                    // are still scanned).
                    if r.body != (0, 0) {
                        depth += 1; // the body's opening brace
                        r.body.0 = r.body.0.min(n);
                    }
                    let resume = if r.body == (0, 0) { next } else { r.body.0 };
                    fns.push(r);
                    i = resume;
                } else {
                    i = next;
                }
            }
            _ => i += 1,
        }
    }
}

/// `(self type, trait)` of an impl block, when its header parses.
type ImplSides = Option<(Option<String>, Option<String>)>;

/// Parse `impl [<…>] Path [for Path] [where …] {` starting at the `impl`
/// token. Returns `((self type, trait), index just past `{`)`; `None` when
/// no braced body is found (e.g. an `impl` inside a type position — the
/// caller then advances past this token).
fn parse_impl_header(toks: &[Tok], i: usize) -> (ImplSides, usize) {
    let n = toks.len();
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.s == "<") {
        j = skip_angles(toks, j);
    }
    let mut before_for: Vec<String> = Vec::new();
    let mut after_for: Vec<String> = Vec::new();
    let mut saw_for = false;
    let mut in_where = false;
    while j < n {
        match toks[j].s.as_str() {
            "{" => {
                let (tr, ty) = if saw_for {
                    (before_for.last().cloned(), after_for.last().cloned())
                } else {
                    (None, before_for.last().cloned())
                };
                return (Some((ty, tr)), j + 1);
            }
            ";" => return (None, j + 1),
            "for" => {
                saw_for = true;
                j += 1;
            }
            "where" => {
                in_where = true;
                j += 1;
            }
            "<" => j = skip_angles(toks, j),
            "(" => j = skip_parens(toks, j),
            s if is_ident(s) && !in_where && s != "dyn" && s != "mut" => {
                if saw_for {
                    after_for.push(s.to_string());
                } else {
                    before_for.push(s.to_string());
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    (None, n)
}

/// Parse the fields of `struct Name { … }` with the cursor at the `{`.
fn parse_struct_fields(toks: &[Tok], open: usize) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    let mut j = open + 1;
    let n = toks.len();
    while j < n && toks[j].s != "}" {
        // Skip visibility: `pub`, `pub(crate)`, `pub(in …)`.
        if toks[j].s == "pub" {
            j += 1;
            if toks.get(j).is_some_and(|t| t.s == "(") {
                j = skip_parens(toks, j);
            }
            continue;
        }
        if toks[j].s == "#" {
            // Field attribute `#[…]`.
            j += 1;
            if toks.get(j).is_some_and(|t| t.s == "[") {
                let mut d = 0i64;
                while j < n {
                    match toks[j].s.as_str() {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            continue;
        }
        if is_ident(&toks[j].s) && toks.get(j + 1).is_some_and(|t| t.s == ":") {
            let name = toks[j].s.clone();
            j += 2;
            let mut ty = Vec::new();
            let mut angle = 0i64;
            while j < n {
                match toks[j].s.as_str() {
                    "-" if toks.get(j + 1).is_some_and(|t| t.s == ">") => {
                        j += 2;
                        continue;
                    }
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "," if angle == 0 => break,
                    "}" if angle <= 0 => break,
                    s if is_ident(s) => ty.push(s.to_string()),
                    _ => {}
                }
                j += 1;
            }
            out.push((name, ty));
        } else {
            j += 1;
        }
    }
    out
}

/// Parse one `fn` item with the cursor on the `fn` token. Returns the raw
/// record (if parseable) plus the resume index: the body start for braced
/// fns (so nested items are scanned), or just past the signature.
fn parse_fn(
    file_idx: usize,
    toks: &[Tok],
    i: usize,
    ctx: Option<&Ctx>,
    traits: &HashSet<String>,
) -> (Option<RawFn>, usize) {
    let n = toks.len();
    let name_tok = &toks[i + 1];
    let mut j = i + 2;
    if toks.get(j).is_some_and(|t| t.s == "<") {
        j = skip_angles(toks, j);
    }
    if toks.get(j).is_none_or(|t| t.s != "(") {
        return (None, j);
    }
    // Collect params between balanced parens, splitting on top-level `,`.
    let params_end = skip_parens(toks, j);
    let mut params_raw: Vec<(String, Vec<String>)> = Vec::new();
    {
        let mut k = j + 1;
        let mut paren = 0i64;
        let mut angle = 0i64;
        let mut bracket = 0i64;
        let mut chunk: Vec<&str> = Vec::new();
        let mut chunks: Vec<Vec<&str>> = Vec::new();
        while k < params_end.saturating_sub(1) {
            let s = toks[k].s.as_str();
            match s {
                "-" if toks.get(k + 1).is_some_and(|t| t.s == ">") => {
                    k += 2;
                    continue;
                }
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                "," if paren == 0 && angle == 0 && bracket == 0 => {
                    chunks.push(std::mem::take(&mut chunk));
                    k += 1;
                    continue;
                }
                _ => {}
            }
            chunk.push(s);
            k += 1;
        }
        if !chunk.is_empty() {
            chunks.push(chunk);
        }
        for ch in chunks {
            let Some(colon) = ch.iter().position(|&s| s == ":") else {
                continue; // `self`, `&self`, `&mut self`
            };
            let name = ch[..colon]
                .iter()
                .rev()
                .find(|s| is_ident(s) && **s != "mut" && **s != "ref")
                .map(|s| s.to_string());
            if let Some(name) = name {
                let ty: Vec<String> = ch[colon + 1..]
                    .iter()
                    .filter(|s| is_ident(s))
                    .map(|s| s.to_string())
                    .collect();
                params_raw.push((name, ty));
            }
        }
    }
    // After the params: return type / where clause, then `{` or `;`.
    // Array types (`[u8; 64]`) carry a `;` that must not read as a
    // bodyless declaration, so bracket groups are skipped whole.
    let mut k = params_end;
    while k < n {
        match toks[k].s.as_str() {
            "{" | ";" => break,
            "<" => k = skip_angles(toks, k),
            "(" => k = skip_parens(toks, k),
            "[" => k = skip_brackets(toks, k),
            _ => k += 1,
        }
    }
    // Return-type idents (for `let x = f(…)` local typing): everything
    // between `->` and `where`/body.
    let mut ret_raw: Vec<String> = Vec::new();
    {
        let mut seen_arrow = false;
        let mut q = params_end;
        while q < k.min(n) {
            let s = toks[q].s.as_str();
            if s == "-" && toks.get(q + 1).is_some_and(|t| t.s == ">") {
                seen_arrow = true;
                q += 2;
                continue;
            }
            if s == "where" {
                break;
            }
            if seen_arrow && is_ident(s) {
                ret_raw.push(s.to_string());
            }
            q += 1;
        }
    }
    let (impl_type, trait_name) = match ctx {
        Some(Ctx::Impl { ty, tr }) => (ty.clone(), tr.clone()),
        Some(Ctx::Trait(t)) => (Some(t.clone()), Some(t.clone())),
        _ => (None, None),
    };
    // Suppress the trait-decl duplication: a default method in `trait T`
    // gets impl_type = trait name so trait-receiver calls find it.
    let _ = traits;
    if toks.get(k).is_some_and(|t| t.s == "{") {
        let mut d = 0i64;
        let mut e = k;
        while e < n {
            match toks[e].s.as_str() {
                "{" => d += 1,
                "}" => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                _ => {}
            }
            e += 1;
        }
        (
            Some(RawFn {
                name: name_tok.s.clone(),
                file: file_idx,
                line: name_tok.line,
                impl_type,
                trait_name,
                body: (k + 1, e),
                params_raw,
                ret_raw,
            }),
            k + 1,
        )
    } else {
        (
            Some(RawFn {
                name: name_tok.s.clone(),
                file: file_idx,
                line: name_tok.line,
                impl_type,
                trait_name,
                body: (0, 0),
                params_raw,
                ret_raw,
            }),
            k + 1,
        )
    }
}

/// Extract the call sites of one function body.
fn extract_calls(f: &FnDef, fns: &[FnDef], files: &[SourceFile], idx: &Indexes) -> Vec<CallSite> {
    let (b0, b1) = f.body;
    if b0 >= b1 {
        return Vec::new();
    }
    let file = &files[f.file];
    let toks = &file.toks;
    let body = &toks[b0..b1.min(toks.len())];

    // Local type bindings: `let [mut] x: T = …` and `let x = T::…`.
    let mut locals: HashMap<&str, String> = HashMap::new();
    for (p, t) in &f.params {
        if let Some(t) = t {
            locals.insert(p.as_str(), t.clone());
        }
    }
    let mut k = 0usize;
    while k < body.len() {
        if body[k].s == "let" {
            let mut m = k + 1;
            while body.get(m).is_some_and(|t| t.s == "mut" || t.s == "ref") {
                m += 1;
            }
            if body.get(m).is_some_and(|t| is_ident(&t.s)) {
                let name = body[m].s.as_str();
                match body.get(m + 1).map(|t| t.s.as_str()) {
                    Some(":") => {
                        let mut ty = Vec::new();
                        let mut q = m + 2;
                        let mut angle = 0i64;
                        while q < body.len() {
                            match body[q].s.as_str() {
                                "-" if body.get(q + 1).is_some_and(|t| t.s == ">") => {
                                    q += 2;
                                    continue;
                                }
                                "<" => angle += 1,
                                ">" => angle -= 1,
                                "=" | ";" if angle <= 0 => break,
                                s if is_ident(s) => ty.push(s.to_string()),
                                _ => {}
                            }
                            q += 1;
                        }
                        if let Some(t) = resolve_type_ident(&ty, idx.known) {
                            locals.insert(name, t);
                        }
                    }
                    Some("=") => {
                        if let (Some(t1), Some(t2)) = (body.get(m + 2), body.get(m + 3)) {
                            if t2.s == "::" && idx.known.contains(&t1.s) {
                                // `let x = Type::method(…)` — prefer the
                                // method's return type; fall back to
                                // `Type` (constructor convention).
                                let ty = body
                                    .get(m + 4)
                                    .filter(|_| body.get(m + 5).is_some_and(|p| p.s == "("))
                                    .map(|meth| resolve_qualified(&t1.s, &meth.s, idx))
                                    .and_then(|cs| cs.iter().find_map(|&c| fns[c].ret_type.clone()))
                                    .unwrap_or_else(|| t1.s.clone());
                                locals.insert(name, ty);
                            } else if t2.s == "(" && is_ident(&t1.s) {
                                // `let x = free_fn(…)` — type by the
                                // callee's return type.
                                let callees = resolve_free(&t1.s, f.file, fns, idx);
                                if let Some(rt) =
                                    callees.iter().find_map(|&c| fns[c].ret_type.clone())
                                {
                                    locals.insert(name, rt);
                                }
                            } else if t2.s == "{" && t1.s == "Self" {
                                // `let x = Self { … }` struct literal.
                                if let Some(t) = f.impl_type.clone() {
                                    locals.insert(name, t);
                                }
                            } else if t2.s == "{" && idx.known.contains(&t1.s) {
                                // `let x = Type { … }` struct literal.
                                locals.insert(name, t1.s.clone());
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        k += 1;
    }

    let mut out = Vec::new();
    for j in 0..body.len() {
        let t = &body[j];
        if !is_ident(&t.s) {
            continue;
        }
        let nx = body.get(j + 1).map(|t| t.s.as_str());
        if nx != Some("(") {
            continue;
        }
        let prev = j
            .checked_sub(1)
            .and_then(|p| body.get(p))
            .map(|t| t.s.as_str());
        let name = t.s.as_str();
        match prev {
            Some("fn") => continue,
            Some(".") => {
                // Method call: resolve the receiver chain
                // `base(.field)*.name(`.
                let mut chain: Vec<&str> = Vec::new();
                let mut p = j - 1; // the `.`
                while let Some(recv) = p.checked_sub(1).and_then(|q| body.get(q)) {
                    if !is_ident(&recv.s) {
                        break;
                    }
                    chain.push(recv.s.as_str());
                    match p.checked_sub(2).and_then(|q| body.get(q)) {
                        Some(d) if d.s == "." && p >= 2 => p -= 2,
                        _ => break,
                    }
                }
                chain.reverse();
                let recv_ty: Option<String> = match chain.first() {
                    Some(&"self") => {
                        let mut ty = f.impl_type.clone();
                        for fld in &chain[1..] {
                            ty = ty
                                .as_ref()
                                .and_then(|t| idx.fields.get(t))
                                .and_then(|m| m.get(*fld))
                                .cloned();
                        }
                        ty
                    }
                    Some(base) => {
                        let mut ty = locals
                            .get(base)
                            .cloned()
                            .or_else(|| idx.known.contains(*base).then(|| base.to_string()));
                        for fld in &chain[1..] {
                            ty = ty
                                .as_ref()
                                .and_then(|t| idx.fields.get(t))
                                .and_then(|m| m.get(*fld))
                                .cloned();
                        }
                        ty
                    }
                    None => None,
                };
                let callees = resolve_method(recv_ty.as_deref(), name, idx);
                if !callees.is_empty() {
                    out.push(CallSite {
                        callees,
                        line: t.line,
                        tok: b0 + j,
                        display: format!(".{name}"),
                        dynamic: false,
                    });
                }
            }
            Some("::") => {
                let Some(q_tok) = j.checked_sub(2).and_then(|q| body.get(q)) else {
                    continue;
                };
                if !is_ident(&q_tok.s) {
                    continue;
                }
                let q_raw = q_tok.s.as_str();
                let q = file.aliases.get(q_raw).map(String::as_str).unwrap_or(q_raw);
                let callees: Vec<FnId> = if q == "Self" {
                    f.impl_type
                        .as_deref()
                        .map(|t| resolve_qualified(t, name, idx))
                        .unwrap_or_default()
                } else if q == "crate" || q == "self" || q == "super" {
                    resolve_free(name, f.file, fns, idx)
                } else if idx.known.contains(q) {
                    resolve_qualified(q, name, idx)
                } else if q.chars().next().is_some_and(|c| c.is_lowercase()) {
                    // Module-path call: `codec::le_u64(…)` → the file
                    // whose stem is `codec`.
                    idx.by_stem.get(&(q, name)).cloned().unwrap_or_default()
                } else {
                    Vec::new() // external (std) path
                };
                if !callees.is_empty() {
                    out.push(CallSite {
                        callees,
                        line: t.line,
                        tok: b0 + j,
                        display: format!("{q_raw}::{name}"),
                        dynamic: false,
                    });
                }
            }
            _ => {
                if CALL_KEYWORDS.contains(&name) {
                    continue;
                }
                if f.callable_params.iter().any(|p| p == name) {
                    out.push(CallSite {
                        callees: Vec::new(),
                        line: t.line,
                        tok: b0 + j,
                        display: format!("{name}(…) [callable param]"),
                        dynamic: true,
                    });
                    continue;
                }
                let resolved = file.aliases.get(name).map(String::as_str).unwrap_or(name);
                let callees = resolve_free(resolved, f.file, fns, idx);
                if !callees.is_empty() {
                    out.push(CallSite {
                        callees,
                        line: t.line,
                        tok: b0 + j,
                        display: name.to_string(),
                        dynamic: false,
                    });
                }
            }
        }
    }
    out
}

fn resolve_free(name: &str, file: usize, fns: &[FnDef], idx: &Indexes) -> Vec<FnId> {
    let Some(all) = idx.free_by_name.get(name) else {
        return Vec::new();
    };
    let same_file: Vec<FnId> = all
        .iter()
        .copied()
        .filter(|&id| fns[id].file == file)
        .collect();
    if same_file.is_empty() {
        all.clone()
    } else {
        same_file
    }
}

/// `Type::name` / trait-receiver resolution: the impl index for concrete
/// types, every impl of the method for traits (default methods included
/// via the impl index keyed by the trait name).
fn resolve_qualified(ty: &str, name: &str, idx: &Indexes) -> Vec<FnId> {
    let mut out = idx.methods.get(&(ty, name)).cloned().unwrap_or_default();
    if idx.traits.contains(ty) {
        for id in idx.trait_methods.get(&(ty, name)).into_iter().flatten() {
            if !out.contains(id) {
                out.push(*id);
            }
        }
    }
    out
}

fn resolve_method(recv_ty: Option<&str>, name: &str, idx: &Indexes) -> Vec<FnId> {
    if let Some(t) = recv_ty {
        let precise = resolve_qualified(t, name, idx);
        if !precise.is_empty() {
            return precise;
        }
        // Known receiver but unknown method (deref / blanket impl):
        // fall through to the unknown-receiver rule.
    }
    if PRELUDE_METHODS.contains(&name) {
        return Vec::new(); // assumed std
    }
    idx.methods_by_name.get(name).cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), tokenize(s)))
                .collect(),
        )
    }

    fn callee_names(ws: &Workspace, caller: &str) -> Vec<String> {
        let id = ws.fns.iter().position(|f| f.name == caller).unwrap();
        ws.calls[id]
            .iter()
            .flat_map(|s| s.callees.iter().map(|&c| ws.fn_display(c)))
            .collect()
    }

    #[test]
    fn free_calls_prefer_same_file_then_cross_crate() {
        let w = ws(&[
            ("a/src/lib.rs", "fn helper() {} fn caller() { helper(); }"),
            ("b/src/lib.rs", "fn helper() {}"),
        ]);
        assert_eq!(callee_names(&w, "caller"), vec!["lib::helper"]);
        let id = w.fns.iter().position(|f| f.name == "caller").unwrap();
        assert_eq!(w.fns[w.calls[id][0].callees[0]].file, 0);

        // No same-file definition: cross-crate `use` resolution is by
        // name — every free fn of that name links.
        let w = ws(&[
            ("a/src/lib.rs", "pub fn decode_u32() {}"),
            (
                "b/src/lib.rs",
                "use a::decode_u32; fn caller() { decode_u32(); }",
            ),
        ]);
        assert_eq!(callee_names(&w, "caller"), vec!["lib::decode_u32"]);
    }

    #[test]
    fn use_as_alias_is_applied() {
        let w = ws(&[
            ("a/src/lib.rs", "pub fn decode_u32() {}"),
            (
                "b/src/lib.rs",
                "use a::decode_u32 as du; fn caller() { du(); }",
            ),
        ]);
        assert_eq!(callee_names(&w, "caller"), vec!["lib::decode_u32"]);
    }

    #[test]
    fn method_resolution_through_typed_receivers() {
        let src_a = "pub struct Table { inner: Pager }
                     pub struct Pager;
                     impl Pager { pub fn read_page(&self) {} }
                     impl Table {
                         pub fn get(&self) { self.inner.read_page(); }
                     }";
        let src_b = "use a::Table;
                     fn by_param(t: &Table) { t.get(); }
                     fn by_let() { let t = Table::default(); t.get(); }";
        let w = ws(&[("a/src/lib.rs", src_a), ("b/src/lib.rs", src_b)]);
        // self-field chain: Table::get → inner: Pager → Pager::read_page.
        assert_eq!(callee_names(&w, "get"), vec!["lib::Pager::read_page"]);
        assert_eq!(callee_names(&w, "by_param"), vec!["lib::Table::get"]);
        assert_eq!(callee_names(&w, "by_let"), vec!["lib::Table::get"]);
    }

    #[test]
    fn trait_receiver_links_every_impl() {
        let src = "trait Vfs { fn open(&self); }
                   struct Mem; struct Real;
                   impl Vfs for Mem { fn open(&self) {} }
                   impl Vfs for Real { fn open(&self) {} }
                   fn caller(v: &dyn Vfs) { v.open(); }";
        let w = ws(&[("a/src/vfs.rs", src)]);
        let names = callee_names(&w, "caller");
        assert!(names.contains(&"vfs::Mem::open".to_string()), "{names:?}");
        assert!(names.contains(&"vfs::Real::open".to_string()), "{names:?}");
    }

    #[test]
    fn unknown_receiver_is_conservative_unless_prelude() {
        // `mystery.decode_row()` — receiver unresolvable, name defined in
        // the workspace → links to every impl (conservative).
        let src = "struct Row; impl Row { fn decode_row(&self) {} }
                   fn caller(mystery: &M) { mystery.decode_row(); mystery.len(); }";
        let w = ws(&[("a/src/lib.rs", src)]);
        let names = callee_names(&w, "caller");
        assert_eq!(names, vec!["lib::Row::decode_row"]);
        // `.len()` is PRELUDE — assumed std, no edge, even though the
        // receiver is unknown.
        assert!(PRELUDE_METHODS.contains(&"len"));
    }

    #[test]
    fn callable_param_is_a_dynamic_edge() {
        let src = "fn apply(f: impl FnOnce(u32) -> u32) { f(1); }";
        let w = ws(&[("a/src/lib.rs", src)]);
        let id = w.fns.iter().position(|f| f.name == "apply").unwrap();
        assert_eq!(w.calls[id].len(), 1);
        assert!(w.calls[id][0].dynamic);
        assert!(w.calls[id][0].callees.is_empty());
    }

    #[test]
    fn module_stem_qualified_calls_resolve() {
        let w = ws(&[
            ("s/src/codec.rs", "pub fn le_u64() {}"),
            ("s/src/bytelog.rs", "fn parse() { codec::le_u64(); }"),
        ]);
        assert_eq!(callee_names(&w, "parse"), vec!["codec::le_u64"]);
    }

    #[test]
    fn forward_reach_builds_chains() {
        let w = ws(&[(
            "a/src/lib.rs",
            "fn entry() { mid(); } fn mid() { leaf(); } fn leaf() {} fn island() {}",
        )]);
        let entry = w.fns.iter().position(|f| f.name == "entry").unwrap();
        let leaf = w.fns.iter().position(|f| f.name == "leaf").unwrap();
        let island = w.fns.iter().position(|f| f.name == "island").unwrap();
        let preds = w.forward_reach(&[entry]);
        assert!(preds.contains_key(&leaf));
        assert!(!preds.contains_key(&island));
        assert_eq!(w.chain(&preds, leaf), "lib::entry → lib::mid → lib::leaf");
    }

    #[test]
    fn callee_return_type_flows_into_let_locals() {
        // `let l = make();` types `l` by `make`'s declared return type,
        // so the follow-up method call resolves without an annotation.
        let w = ws(&[(
            "a/src/lib.rs",
            "pub struct Log;
             impl Log { pub fn flush(&self) {} }
             fn make() -> Log { todo() }
             fn caller() { let l = make(); l.flush(); }",
        )]);
        assert!(
            callee_names(&w, "caller").contains(&"lib::Log::flush".to_string()),
            "{:?}",
            callee_names(&w, "caller")
        );
    }

    #[test]
    fn struct_literals_type_let_locals() {
        // Both spellings: `Self { … }` inside an impl (resolved through
        // the impl's type) and a named `Type { … }` literal elsewhere.
        let w = ws(&[(
            "a/src/lib.rs",
            "pub struct Log { n: u32 }
             impl Log {
                 pub fn flush(&self) {}
                 pub fn fresh() -> Self { let log = Self { n: 0 }; log.flush(); log }
             }
             fn caller() { let l = Log { n: 1 }; l.flush(); }",
        )]);
        assert_eq!(callee_names(&w, "fresh"), vec!["lib::Log::flush"]);
        assert_eq!(callee_names(&w, "caller"), vec!["lib::Log::flush"]);
    }

    #[test]
    fn impl_trait_for_type_records_both_sides() {
        let w = ws(&[(
            "a/src/lib.rs",
            "trait Metric { fn combine(&self); }
             enum Kind {}
             impl Metric for Kind { fn combine(&self) {} }",
        )]);
        let f = w
            .fns
            .iter()
            .find(|f| f.impl_type.as_deref() == Some("Kind"))
            .unwrap();
        assert_eq!(f.trait_name.as_deref(), Some("Metric"));
    }
}
