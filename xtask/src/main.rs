//! `cargo xtask <command>` — repo automation.
//!
//! Commands:
//! - `analyze [--lint <name>]` — run the architectural-invariant lints
//!   (see `ANALYSIS.md`); exits non-zero on any violation, malformed or
//!   stale suppression, or oversized allowlist.
//! - `bench-json` — validate every recorded `BENCH_*.json` artifact at
//!   the repo root: strict JSON (the writers hand-roll their output, so
//!   a missing comma or a formatted `NaN` ships silently otherwise) plus
//!   the artifact contract (top-level object with a `"bench"` string).

use std::path::PathBuf;
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // xtask always lives at <repo>/xtask.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let mut only: Option<String> = None;
            let mut json = false;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--lint" => {
                        only = args.get(i + 1).cloned();
                        i += 2;
                    }
                    "--json" => {
                        json = true;
                        i += 1;
                    }
                    other => {
                        eprintln!("unknown argument `{other}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(l) = &only {
                if !xtask::lints::LINT_NAMES.contains(&l.as_str()) {
                    eprintln!(
                        "unknown lint `{l}` — available: {}",
                        xtask::lints::LINT_NAMES.join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
            let analysis = xtask::analyze_repo(&repo_root(), only.as_deref());
            if json {
                print!("{}", xtask::json_report(&analysis, only.as_deref()));
                return if analysis.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            for v in &analysis.violations {
                println!("{}:{}: [{}] {}", v.file, v.line, v.lint, v.message);
            }
            for e in &analysis.errors {
                println!("policy: {e}");
            }
            if analysis.is_clean() {
                println!(
                    "analyze: clean ({} files scanned, lints: {})",
                    analysis.files_scanned,
                    only.as_deref().unwrap_or("all")
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "analyze: {} violation(s), {} policy error(s)",
                    analysis.violations.len(),
                    analysis.errors.len()
                );
                ExitCode::FAILURE
            }
        }
        Some("bench-json") => {
            let problems = xtask::benchjson::check_dir(&repo_root());
            if problems.is_empty() {
                println!("bench-json: all artifacts parse");
                ExitCode::SUCCESS
            } else {
                for (file, err) in &problems {
                    println!("{file}: {err}");
                }
                println!("bench-json: {} bad artifact(s)", problems.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask analyze [--lint <name>] [--json] | bench-json");
            ExitCode::FAILURE
        }
    }
}
