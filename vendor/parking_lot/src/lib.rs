//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to a crates.io mirror, so the
//! workspace vendors the tiny API subset it actually uses. Semantics match
//! `parking_lot` where it matters to callers: `lock()` never returns a
//! poison error (a poisoned std mutex is transparently recovered, matching
//! parking_lot's "no poisoning" contract).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(poisoned) => MutexGuard {
                inner: poisoned.into_inner(),
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(poisoned) => RwLockReadGuard {
                inner: poisoned.into_inner(),
            },
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(poisoned) => RwLockWriteGuard {
                inner: poisoned.into_inner(),
            },
        }
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
