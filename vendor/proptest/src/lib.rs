//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and the `proptest!` macro surface this
//! workspace's property tests use, over a deterministic per-test RNG. Two
//! deliberate simplifications relative to upstream:
//!
//! - **No shrinking.** A failing case reports the panic from the raw inputs.
//!   The seed is derived from the test name, so failures reproduce exactly.
//! - **`&str` strategies** support the pattern subset used in-tree — a single
//!   character class with ranges followed by a `{m,n}` repeat count, e.g.
//!   `"[a-d]{1,8}"` or `"[ -~]{1,40}"` — not full regex syntax.
//!
//! `prop_assert!`/`prop_assert_eq!` panic (upstream returns an `Err` the
//! runner catches); the observable effect under `cargo test` is identical.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator behind every strategy draw (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction; each `proptest!` test derives its seed from the
    /// test's name so runs are reproducible and independent.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5DEE_CE66_D1CE_B00B,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values. Unlike upstream there is no value tree; a
/// strategy draws a final value directly.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// Object-safe core so heterogeneous strategies can share a Vec.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from at least one alternative.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// String generation from the in-tree pattern subset: `[class]{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_repeat(self);
        let len = lo + rng.below(hi - lo + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

/// Parse `[a-d x]{m,n}` into (expanded alphabet, m, n). Panics on any other
/// shape with a pointer at what upstream proptest would have accepted.
fn parse_class_repeat(pattern: &str) -> (Vec<char>, usize, usize) {
    let fail = || -> ! {
        panic!(
            "string strategy {pattern:?} not supported by the offline proptest \
             stand-in (expected \"[class]{{m,n}}\")"
        )
    };
    let bytes = pattern.as_bytes();
    if bytes.first() != Some(&b'[') {
        fail();
    }
    let close = match pattern.find(']') {
        Some(i) => i,
        None => fail(),
    };
    let class: Vec<char> = pattern[1..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            if a > b {
                fail();
            }
            chars.extend((a..=b).filter_map(char::from_u32));
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        fail();
    }
    let rest = &pattern[close + 1..];
    let (lo, hi) = if rest.is_empty() {
        (1, 1)
    } else {
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| fail());
        match inner.split_once(',') {
            Some((m, n)) => (
                m.parse().unwrap_or_else(|_| fail()),
                n.parse().unwrap_or_else(|_| fail()),
            ),
            None => {
                let m = inner.parse().unwrap_or_else(|_| fail());
                (m, m)
            }
        }
    };
    if lo > hi {
        fail();
    }
    (chars, lo, hi)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a size given as a fixed count or range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};

    /// Uniform choice from a fixed set of values.
    pub struct Select<T: Clone>(Vec<T>);

    /// Strategy choosing uniformly from `options`.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// A length-agnostic index: resolves to a concrete position only once a
    /// collection length is known.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Resolve against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy over both booleans.
    pub struct BoolAny;

    /// Uniform true/false.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Failure type carried by `Result`-returning property helpers. Upstream's
/// runner catches these; here the `proptest!` macro panics on `Err`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Stable seed derivation from the test path (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// `prop` module alias as re-exported by the upstream prelude.
pub mod prop {
    pub use crate::{bool, collection, sample};
}

/// The usual glob import for property tests.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert inside a property; panics with the case's inputs left to the seed.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` becomes
/// a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::new(seed);
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                // Closure so `?` on Result<_, TestCaseError> works in bodies.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed: {e}", stringify!($name));
                }
            }
        }
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)) => {};
    ($($rest:tt)+) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_parser_handles_in_tree_shapes() {
        let mut rng = crate::TestRng::new(3);
        for pat in ["[a-d]{1,8}", "[ -~]{1,40}", "[a-e]{2,10}"] {
            for _ in 0..50 {
                let s = Strategy::generate(&pat, &mut rng);
                assert!(!s.is_empty() || pat.contains("{0"));
            }
        }
        let s = Strategy::generate(&"[a-d]{1,8}", &mut rng);
        assert!(s.len() <= 8 && s.chars().all(|c| ('a'..='d').contains(&c)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Composite strategies produce in-bound values.
        fn composite_strategies(
            v in prop::collection::vec((0u32..7, -1.0f64..1.0), 0..5),
            w in prop_oneof![(0usize..3).prop_map(|x| x * 2), Just(9usize)],
            s in "[a-c]{1,4}",
            flag in prop::bool::ANY,
            idx in any::<prop::sample::Index>(),
            b in any::<u8>(),
        ) {
            prop_assert!(v.len() < 5);
            for (a, f) in &v {
                prop_assert!(*a < 7);
                prop_assert!((-1.0..1.0).contains(f));
            }
            prop_assert!(w == 9 || w % 2 == 0);
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(idx.index(10) < 10);
            prop_assert_eq!(u16::from(b) & 0xff, u16::from(b));
        }
    }

    proptest! {
        /// Default config path compiles too.
        fn default_config(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }
}
