//! A bounded model checker with `loom`'s API shape.
//!
//! The real `loom` crate is unavailable offline, so this stand-in
//! re-implements the subset the workspace's concurrency models need:
//! [`model`], [`thread::spawn`]/[`thread::JoinHandle`], and the
//! [`sync::atomic`] types. Execution is **fully serialized**: exactly one
//! model thread runs at a time, and every atomic operation, spawn, and
//! join is a *yield point* where the scheduler picks the next thread to
//! run. [`model`] then explores the tree of scheduling decisions by
//! depth-first search, replaying a recorded decision prefix and branching
//! on the next unexplored choice, until the tree is exhausted (or a
//! safety cap of [`MAX_ITERATIONS`] schedules is hit).
//!
//! Beyond atomics, the stand-in models two more primitives the
//! workspace's concurrency models need:
//!
//! - [`sync::Mutex`] — a scheduler-aware lock: acquisition is a yield
//!   point, a contended acquire *model-blocks* (the thread leaves the
//!   runnable set until the holder releases), and a schedule in which
//!   every live thread is blocked is reported as a deadlock.
//! - [`cell::UnsafeCell`] — access-tracked data: [`cell::UnsafeCell::with`]
//!   and [`cell::UnsafeCell::with_mut`] mark a read/write window with a
//!   yield point inside it, so any interleaving in which a write overlaps
//!   another access is explored and reported as a data race.
//!
//! Compared to real loom this does not model weak memory orderings (all
//! atomics are sequentially consistent under serialization) — it checks
//! *interleaving* correctness (lost updates, join visibility, ordering
//! assumptions, lock exclusion, torn publication), not relaxed-memory
//! subtleties. Those are the properties the iVA-file merge-handoff and
//! prefetch-handoff models assert. Mutexes and cells must be created
//! inside the [`model`] closure (each iteration re-creates them);
//! sync ops outside a model panic. See TESTING.md.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

pub mod sync {
    pub use std::sync::Arc;

    /// A scheduler-aware mutex: `lock()` is a yield point, contended
    /// acquisition model-blocks until the holder releases, and release
    /// is a yield point too (so the freshly-woken waiter can be the next
    /// thread scheduled). The inner `std::sync::Mutex` only carries the
    /// data — exclusion is enforced by the model scheduler, so the inner
    /// lock is provably uncontended.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        id: std::sync::OnceLock<usize>,
        inner: std::sync::Mutex<T>,
    }

    /// Guard for a model [`Mutex`]; dropping it releases the model lock.
    pub struct MutexGuard<'a, T> {
        id: usize,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// New mutex holding `v`.
        pub fn new(v: T) -> Self {
            Self {
                id: std::sync::OnceLock::new(),
                inner: std::sync::Mutex::new(v),
            }
        }

        /// Acquire (yield point; model-blocks while another model thread
        /// holds the lock). Never returns `Err`: a panicking holder
        /// aborts the whole model run before poison can be observed.
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            let id = *self.id.get_or_init(crate::rt::mutex_register);
            crate::rt::mutex_acquire(id);
            let inner = match self.inner.try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {
                    unreachable!("model scheduler admitted two holders")
                }
            };
            Ok(MutexGuard {
                id,
                inner: Some(inner),
            })
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            crate::rt::mutex_release(self.id);
        }
    }

    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_shim {
            ($name:ident, $inner:ty, $prim:ty) => {
                /// Atomic whose every operation is a scheduler yield point.
                #[derive(Debug, Default)]
                pub struct $name(<$inner as std::ops::Deref>::Target);

                impl $name {
                    /// New atomic holding `v`.
                    pub fn new(v: $prim) -> Self {
                        Self(<<$inner as std::ops::Deref>::Target>::new(v))
                    }
                    /// Load (yield point).
                    pub fn load(&self, o: Ordering) -> $prim {
                        crate::rt::yield_point();
                        self.0.load(o)
                    }
                    /// Store (yield point).
                    pub fn store(&self, v: $prim, o: Ordering) {
                        crate::rt::yield_point();
                        self.0.store(v, o)
                    }
                    /// Swap (yield point).
                    pub fn swap(&self, v: $prim, o: Ordering) -> $prim {
                        crate::rt::yield_point();
                        self.0.swap(v, o)
                    }
                    /// Compare-exchange (yield point).
                    pub fn compare_exchange(
                        &self,
                        cur: $prim,
                        new: $prim,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$prim, $prim> {
                        crate::rt::yield_point();
                        self.0.compare_exchange(cur, new, ok, err)
                    }
                }
            };
        }

        atomic_shim!(
            AtomicBool,
            std::sync::Arc<std::sync::atomic::AtomicBool>,
            bool
        );
        atomic_shim!(
            AtomicUsize,
            std::sync::Arc<std::sync::atomic::AtomicUsize>,
            usize
        );
        atomic_shim!(AtomicU64, std::sync::Arc<std::sync::atomic::AtomicU64>, u64);
        atomic_shim!(AtomicU32, std::sync::Arc<std::sync::atomic::AtomicU32>, u32);

        macro_rules! fetch_ops {
            ($name:ident, $prim:ty) => {
                impl $name {
                    /// Fetch-add (yield point).
                    pub fn fetch_add(&self, v: $prim, o: Ordering) -> $prim {
                        crate::rt::yield_point();
                        self.0.fetch_add(v, o)
                    }
                    /// Fetch-max (yield point).
                    pub fn fetch_max(&self, v: $prim, o: Ordering) -> $prim {
                        crate::rt::yield_point();
                        self.0.fetch_max(v, o)
                    }
                }
            };
        }
        fetch_ops!(AtomicUsize, usize);
        fetch_ops!(AtomicU64, u64);
        fetch_ops!(AtomicU32, u32);
    }
}

pub mod cell {
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Access-tracked interior mutability. [`UnsafeCell::with`] marks a
    /// shared-read window and [`UnsafeCell::with_mut`] an exclusive-write
    /// window; each window opens with a yield point and contains another
    /// one, so the checker explores interleavings where windows overlap —
    /// and reports a data race (a write overlapping any other access) as
    /// a model failure on that schedule.
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T> {
        data: std::cell::UnsafeCell<T>,
        readers: AtomicUsize,
        writers: AtomicUsize,
    }

    // Tracked access is the whole point: the cell is shared across model
    // threads and the tracking (not the type system) catches misuse.
    unsafe impl<T: Send> Send for UnsafeCell<T> {}
    unsafe impl<T: Send> Sync for UnsafeCell<T> {}

    /// Decrements an access counter when the window closes, panic or not.
    struct Window<'a>(&'a AtomicUsize);

    impl Drop for Window<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> UnsafeCell<T> {
        /// New cell holding `v`.
        pub fn new(v: T) -> Self {
            Self {
                data: std::cell::UnsafeCell::new(v),
                readers: AtomicUsize::new(0),
                writers: AtomicUsize::new(0),
            }
        }

        /// Run `f` with shared read access (tracked window).
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            crate::rt::yield_point();
            assert_eq!(
                self.writers.load(Ordering::SeqCst),
                0,
                "data race: UnsafeCell read overlaps a write"
            );
            self.readers.fetch_add(1, Ordering::SeqCst);
            let window = Window(&self.readers);
            crate::rt::yield_point();
            let out = f(self.data.get());
            drop(window);
            out
        }

        /// Run `f` with exclusive write access (tracked window).
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            crate::rt::yield_point();
            assert_eq!(
                self.writers.load(Ordering::SeqCst),
                0,
                "data race: UnsafeCell write overlaps a write"
            );
            assert_eq!(
                self.readers.load(Ordering::SeqCst),
                0,
                "data race: UnsafeCell write overlaps a read"
            );
            self.writers.fetch_add(1, Ordering::SeqCst);
            let window = Window(&self.writers);
            crate::rt::yield_point();
            let out = f(self.data.get());
            drop(window);
            out
        }

        /// Unwrap the value (consumes the cell; no tracking needed).
        pub fn into_inner(self) -> T {
            self.data.into_inner()
        }
    }
}

pub mod thread {
    use super::rt;

    /// Handle to a model thread; `join` is a blocking yield point.
    pub struct JoinHandle<T> {
        pub(crate) tid: usize,
        pub(crate) result: std::sync::Arc<std::sync::Mutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Block (in model time) until the thread finishes, returning its
        /// value. `Err` is never returned here: a panicking model thread
        /// aborts the whole model run instead.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send>> {
            rt::join(self.tid);
            let v = self
                .result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("joined thread produced no value");
            Ok(v)
        }
    }

    /// Spawn a model thread (yield point for the parent).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let result = std::sync::Arc::new(std::sync::Mutex::new(None));
        let slot = std::sync::Arc::clone(&result);
        let tid = rt::spawn(Box::new(move || {
            let v = f();
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
        }));
        JoinHandle { tid, result }
    }

    /// Voluntary yield point.
    pub fn yield_now() {
        rt::yield_point();
    }
}

/// Upper bound on explored schedules; reaching it stops exploration
/// (bounded model checking) rather than failing.
pub const MAX_ITERATIONS: usize = 10_000;

/// Explore the scheduling tree of `f`. Panics (propagating the inner
/// panic message) if any interleaving fails an assertion or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    // The scheduler runtime is process-global; `#[test]`s run concurrently,
    // so serialize whole model explorations against each other.
    static MODEL_LOCK: Mutex<()> = Mutex::new(());
    let _guard = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let f: std::sync::Arc<dyn Fn() + Send + Sync> = std::sync::Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    for _iter in 0..MAX_ITERATIONS {
        let outcome = rt::run_iteration(std::sync::Arc::clone(&f), prefix.clone());
        if let Some(msg) = outcome.panic {
            panic!(
                "loom model failed under schedule {:?}: {msg}",
                outcome.choices
            );
        }
        // DFS backtrack: bump the deepest decision that still has an
        // unexplored sibling; drop everything after it.
        let mut next = None;
        for i in (0..outcome.choices.len()).rev() {
            if outcome.choices[i] + 1 < outcome.options[i] {
                let mut p = outcome.choices[..i].to_vec();
                p.push(outcome.choices[i] + 1);
                next = Some(p);
                break;
            }
        }
        match next {
            Some(p) => prefix = p,
            None => return,
        }
    }
}

mod rt {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ts {
        /// Eligible to be scheduled at the next decision.
        Parked,
        /// Currently executing (exactly one thread at a time).
        Running,
        /// Waiting for another thread to finish.
        BlockedOnJoin(usize),
        /// Waiting for a model mutex to be released.
        BlockedOnMutex(usize),
        Finished,
    }

    struct State {
        threads: Vec<Ts>,
        current: Option<usize>,
        /// Replayed decision prefix, then 0 for new depths.
        prefix: Vec<usize>,
        /// Choice actually taken at each decision.
        choices: Vec<usize>,
        /// Number of runnable options at each decision.
        options: Vec<usize>,
        /// Closures for threads spawned but not yet claimed by an OS thread.
        pending: Vec<Option<Box<dyn FnOnce() + Send>>>,
        /// Holder (if any) of each registered model mutex.
        mutexes: Vec<Option<usize>>,
        panic: Option<String>,
        active: bool,
    }

    struct Rt {
        st: Mutex<State>,
        cv: Condvar,
    }

    fn rt() -> &'static Rt {
        static RT: OnceLock<Rt> = OnceLock::new();
        RT.get_or_init(|| Rt {
            st: Mutex::new(State {
                threads: Vec::new(),
                current: None,
                prefix: Vec::new(),
                choices: Vec::new(),
                options: Vec::new(),
                pending: Vec::new(),
                mutexes: Vec::new(),
                panic: None,
                active: false,
            }),
            cv: Condvar::new(),
        })
    }

    thread_local! {
        static TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
    }

    fn my_tid() -> usize {
        TID.with(|t| t.get()).expect("loom sync op outside model()")
    }

    /// Pick the next thread to run. Caller holds the lock and has already
    /// parked/blocked/finished itself. Records the decision.
    fn decide(st: &mut State) {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Ts::Parked)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().any(|s| !matches!(s, Ts::Finished)) {
                st.panic
                    .get_or_insert_with(|| "model deadlock: no runnable thread".to_string());
                // Unstick everything so the iteration can end.
                for s in st.threads.iter_mut() {
                    *s = Ts::Finished;
                }
            }
            st.current = None;
            return;
        }
        let depth = st.choices.len();
        let pick = st
            .prefix
            .get(depth)
            .copied()
            .unwrap_or(0)
            .min(runnable.len() - 1);
        st.choices.push(pick);
        st.options.push(runnable.len());
        st.current = Some(runnable[pick]);
    }

    /// Block until the scheduler hands this thread the baton.
    fn wait_for_turn(rt_: &Rt, mut st: std::sync::MutexGuard<'_, State>, me: usize) {
        while st.current != Some(me) && st.threads.get(me) != Some(&Ts::Finished) {
            st = rt_.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(s) = st.threads.get_mut(me) {
            if *s == Ts::Parked {
                *s = Ts::Running;
            }
        }
    }

    pub(crate) fn yield_point() {
        let r = rt();
        let me = my_tid();
        let mut st = r.st.lock().unwrap_or_else(|e| e.into_inner());
        if st.threads.get(me) == Some(&Ts::Finished) {
            return; // deadlock recovery path
        }
        if let Some(s) = st.threads.get_mut(me) {
            *s = Ts::Parked;
        }
        decide(&mut st);
        r.cv.notify_all();
        wait_for_turn(r, st, me);
    }

    pub(crate) fn spawn(body: Box<dyn FnOnce() + Send>) -> usize {
        let r = rt();
        let tid = {
            let mut st = r.st.lock().unwrap_or_else(|e| e.into_inner());
            let tid = st.threads.len();
            st.threads.push(Ts::Parked);
            st.pending.push(Some(body));
            tid
        };
        std::thread::spawn(move || run_thread(tid));
        yield_point();
        tid
    }

    pub(crate) fn join(target: usize) {
        let r = rt();
        let me = my_tid();
        let mut st = r.st.lock().unwrap_or_else(|e| e.into_inner());
        if st.threads.get(me) == Some(&Ts::Finished) {
            return;
        }
        if st.threads.get(target) != Some(&Ts::Finished) {
            if let Some(s) = st.threads.get_mut(me) {
                *s = Ts::BlockedOnJoin(target);
            }
        } else if let Some(s) = st.threads.get_mut(me) {
            *s = Ts::Parked;
        }
        decide(&mut st);
        r.cv.notify_all();
        wait_for_turn(r, st, me);
    }

    /// Register a model mutex, returning its slot in the holder table.
    pub(crate) fn mutex_register() -> usize {
        let r = rt();
        let mut st = r.st.lock().unwrap_or_else(|e| e.into_inner());
        st.mutexes.push(None);
        st.mutexes.len() - 1
    }

    /// Acquire model mutex `id`: a yield point, then model-block while
    /// another thread holds it. A blocked thread leaves the runnable set,
    /// so an all-blocked schedule surfaces as the deadlock diagnostic.
    pub(crate) fn mutex_acquire(id: usize) {
        yield_point();
        let r = rt();
        let me = my_tid();
        loop {
            let mut st = r.st.lock().unwrap_or_else(|e| e.into_inner());
            if st.threads.get(me) == Some(&Ts::Finished) {
                return; // deadlock recovery path
            }
            if st.mutexes.len() <= id {
                // A mutex created outside the model closure re-registers
                // lazily after the per-iteration state reset.
                st.mutexes.resize(id + 1, None);
            }
            match st.mutexes.get_mut(id) {
                Some(held @ None) => {
                    *held = Some(me);
                    return;
                }
                _ => {
                    if let Some(s) = st.threads.get_mut(me) {
                        *s = Ts::BlockedOnMutex(id);
                    }
                    decide(&mut st);
                    r.cv.notify_all();
                    wait_for_turn(r, st, me);
                }
            }
        }
    }

    /// Release model mutex `id`, waking its blocked waiters, then yield
    /// so a freshly-woken waiter can be scheduled next.
    pub(crate) fn mutex_release(id: usize) {
        let r = rt();
        {
            let mut st = r.st.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(held) = st.mutexes.get_mut(id) {
                *held = None;
            }
            for s in st.threads.iter_mut() {
                if *s == Ts::BlockedOnMutex(id) {
                    *s = Ts::Parked;
                }
            }
            r.cv.notify_all();
        }
        yield_point();
    }

    fn run_thread(tid: usize) {
        TID.with(|t| t.set(Some(tid)));
        let r = rt();
        let body = {
            let mut st = r.st.lock().unwrap_or_else(|e| e.into_inner());
            wait_for_turn(r, st, tid);
            st = r.st.lock().unwrap_or_else(|e| e.into_inner());
            st.pending.get_mut(tid).and_then(Option::take)
        };
        if let Some(body) = body {
            let res = catch_unwind(AssertUnwindSafe(body));
            let mut st = r.st.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(p) = res {
                let msg = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "model thread panicked".to_string());
                st.panic.get_or_insert(msg);
            }
            if let Some(s) = st.threads.get_mut(tid) {
                *s = Ts::Finished;
            }
            // Wake joiners.
            for s in st.threads.iter_mut() {
                if *s == Ts::BlockedOnJoin(tid) {
                    *s = Ts::Parked;
                }
            }
            if st.current == Some(tid) {
                decide(&mut st);
            }
            r.cv.notify_all();
        }
    }

    pub(crate) struct IterationOutcome {
        pub choices: Vec<usize>,
        pub options: Vec<usize>,
        pub panic: Option<String>,
    }

    pub(crate) fn run_iteration(
        f: std::sync::Arc<dyn Fn() + Send + Sync>,
        prefix: Vec<usize>,
    ) -> IterationOutcome {
        let r = rt();
        {
            let mut st = r.st.lock().unwrap_or_else(|e| e.into_inner());
            assert!(
                !st.active,
                "nested or concurrent loom::model() calls are unsupported"
            );
            *st = State {
                threads: Vec::new(),
                current: None,
                prefix,
                choices: Vec::new(),
                options: Vec::new(),
                pending: Vec::new(),
                mutexes: Vec::new(),
                panic: None,
                active: true,
            };
        }
        // The model closure is thread 0.
        let root = spawn_root(f);
        // Wait for every model thread to finish.
        let mut st = r.st.lock().unwrap_or_else(|e| e.into_inner());
        while st.threads.iter().any(|s| !matches!(s, Ts::Finished)) {
            st = r.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let out = IterationOutcome {
            choices: std::mem::take(&mut st.choices),
            options: std::mem::take(&mut st.options),
            panic: st.panic.take(),
        };
        st.active = false;
        drop(st);
        let _ = root.join();
        out
    }

    fn spawn_root(f: std::sync::Arc<dyn Fn() + Send + Sync>) -> std::thread::JoinHandle<()> {
        let r = rt();
        {
            let mut st = r.st.lock().unwrap_or_else(|e| e.into_inner());
            st.threads.push(Ts::Parked);
            st.pending.push(Some(Box::new(move || f())));
            decide(&mut st);
            r.cv.notify_all();
        }
        std::thread::spawn(|| run_thread(0))
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn explores_more_than_one_schedule() {
        let schedules = Arc::new(std::sync::Mutex::new(0usize));
        let s2 = Arc::clone(&schedules);
        super::model(move || {
            *s2.lock().unwrap() += 1;
            let a = Arc::new(AtomicUsize::new(0));
            let a1 = Arc::clone(&a);
            let h = super::thread::spawn(move || a1.fetch_add(1, Ordering::SeqCst));
            a.fetch_add(1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
        assert!(
            *schedules.lock().unwrap() > 1,
            "DFS explored a single schedule"
        );
    }

    #[test]
    fn mutex_excludes_and_cell_sees_no_race_under_lock() {
        // The positive control for the prefetch-handoff model: a counter
        // in a tracked cell, every access under the model mutex. No
        // schedule may report a race or a lost update.
        super::model(|| {
            let cell = Arc::new(super::sync::Mutex::new(super::cell::UnsafeCell::new(0u64)));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    super::thread::spawn(move || {
                        let g = cell.lock().unwrap();
                        g.with_mut(|p| unsafe { *p += 1 });
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            let g = cell.lock().unwrap();
            let v = g.with(|p| unsafe { *p });
            assert_eq!(v, 2, "lost update under mutex");
        });
    }

    #[test]
    fn catches_unsynchronized_cell_write() {
        // Two unlocked with_mut windows must overlap in some schedule,
        // and the tracking must report it.
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let cell = Arc::new(super::cell::UnsafeCell::new(0u64));
                let hs: Vec<_> = (0..2)
                    .map(|_| {
                        let cell = Arc::clone(&cell);
                        super::thread::spawn(move || cell.with_mut(|p| unsafe { *p += 1 }))
                    })
                    .collect();
                for h in hs {
                    h.join().unwrap();
                }
            });
        });
        assert!(
            found.is_err(),
            "tracking missed the unsynchronized write/write overlap"
        );
    }

    #[test]
    fn catches_lock_order_deadlock() {
        // Classic ABBA: thread 0 locks a then b, thread 1 locks b then a.
        // Some schedule must block both, and the checker must report it
        // as a deadlock rather than hang.
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(super::sync::Mutex::new(()));
                let b = Arc::new(super::sync::Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = super::thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop((_ga, _gb));
                h.join().unwrap();
            });
        });
        assert!(found.is_err(), "ABBA deadlock not reported");
    }

    #[test]
    fn catches_lost_update() {
        // A classic read-modify-write race: two threads do non-atomic
        // load-then-store. Some interleaving must lose an update, and the
        // model must find it.
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(AtomicUsize::new(0));
                let hs: Vec<_> = (0..2)
                    .map(|_| {
                        let a = Arc::clone(&a);
                        super::thread::spawn(move || {
                            let v = a.load(Ordering::SeqCst);
                            a.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in hs {
                    h.join().unwrap();
                }
                assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(
            found.is_err(),
            "model failed to find the lost-update interleaving"
        );
    }
}
