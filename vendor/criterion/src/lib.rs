//! Offline stand-in for the `criterion` crate.
//!
//! Benches compile and run under `cargo bench`, printing a median ns/iter per
//! benchmark. No statistical analysis, HTML reports, or baselines — just
//! enough to keep microbenchmarks runnable and comparable run-to-run in the
//! offline build environment.

use std::time::Instant;

/// Bench registry handle passed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// How `iter_batched` amortizes setup; accepted and ignored (every batch is
/// sized 1, which is the conservative choice for correctness of timing).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Re-run setup for every single iteration.
    PerIteration,
}

/// Timing harness handed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<u128>,
}

const WARMUP_ITERS: u32 = 3;
const SAMPLES: usize = 15;

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        for _ in 0..SAMPLES {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_nanos());
        }
    }

    /// Time `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        for _ in 0..SAMPLES {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos());
        }
    }
}

impl Criterion {
    /// Run one named benchmark and print its median time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = if b.samples.is_empty() {
            0
        } else {
            b.samples[b.samples.len() / 2]
        };
        println!(
            "bench {name:<40} {median:>12} ns/iter (median of {})",
            b.samples.len()
        );
        self
    }
}

/// Declare a bench group: expands to a function running each benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point over one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn harness_runs() {
        sample_bench(&mut Criterion::default());
    }
}
