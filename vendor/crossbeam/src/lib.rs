//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, implemented over
//! `std::thread::scope` (stable since Rust 1.63, within the workspace MSRV).
//! The API mirrors crossbeam's: the scope closure and every spawned closure
//! receive a `&Scope` so workers could spawn nested siblings, and `scope`
//! returns a `Result` rather than unwinding directly.
//!
//! One deliberate divergence: if a spawned thread panics, `std::thread::scope`
//! re-raises the panic at the join point instead of returning `Err`. Every
//! caller in this workspace immediately `unwrap()`s / `expect()`s the result,
//! so the observable behavior (abort the test / propagate the panic) is the
//! same.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::thread as stdthread;

    /// Result type matching `crossbeam::thread::scope`.
    pub type Result<T> = stdthread::Result<T>;

    /// A handle to a spawn scope; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread; mirrors `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives the
        /// scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the caller's
    /// stack. All threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let mut sums = vec![0u64; 2];
        super::thread::scope(|s| {
            for (i, slot) in sums.iter_mut().enumerate() {
                let data = &data;
                s.spawn(move |_| {
                    *slot = data[i * 2] + data[i * 2 + 1];
                });
            }
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
