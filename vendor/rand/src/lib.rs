//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Provides `rngs::StdRng` seeded via `SeedableRng::seed_from_u64`, and the
//! `Rng::{random, random_range}` methods the workload generator uses. The
//! generator is xoshiro256** seeded through SplitMix64 — statistically solid
//! for synthetic-data generation, deterministic per seed, zero dependencies.
//!
//! The stream differs from upstream `rand`, which is fine here: every
//! consumer in the workspace treats the seed as an opaque reproducibility
//! token, never as a cross-version golden value.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `rng.random_range(..)`.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Lemire-style unbiased bounded sampling would be overkill for workload
// generation; simple rejection-free multiply-shift keeps it fast and
// deterministic, and the modulo bias at these range sizes is negligible.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's domain.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample a value uniformly from `range`.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators (`rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..8).map(|_| c.random_range(0u64..1000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let x: usize = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
            let f: f64 = r.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let c: u8 = r.random_range(0..26u8);
            assert!(c < 26);
        }
    }

    #[test]
    fn random_bool_hits_both() {
        let mut r = StdRng::seed_from_u64(1);
        let trues = (0..100).filter(|_| r.random::<bool>()).count();
        assert!(trues > 20 && trues < 80);
    }
}
