//! Full-stack crash torture: `IvaDb` (table + catalog + iVA-file) under
//! deterministic power cuts.
//!
//! The workload materializes all four vector-list organizations (the
//! density split from the core property tests), commits in batches, and
//! is replayed once per sampled operation index with a power cut at that
//! op. After every crash the durable image is reopened and must present a
//! *committed* database state: the last acked flush, or the one in flight
//! when the cut landed. Every tuple of the matched state must read back
//! exactly, top-k answers must agree with a shadow database rebuilt from
//! that state, and the recovered database must accept new commits.
//!
//! Failures print `(seed, crash_at)`; see TESTING.md for how to replay
//! one crash point under a debugger.

use std::path::Path;
use std::sync::Arc;

use iva_core::ListType;
use iva_file::vfs::{FaultVfs, MemVfs, Vfs};
use iva_file::{
    AttrId, IvaDb, IvaDbOptions, LsmDb, LsmOptions, PagerOptions, Query, SearchRequest, Tid, Tuple,
    Value,
};

const DIR: &str = "torture-db";
const ROWS: u32 = 150;
const BATCH: u32 = 30;
const PAGE: usize = 256;

/// Byte offset inside the checksummed data region of frame
/// `num/den × frame_count` of a block file (skipping the superblock and
/// each frame's trailer, where a flip is legitimately undetectable).
fn frame_data_offset(file_len: usize, num: usize, den: usize) -> usize {
    let superblock = iva_storage::SUPERBLOCK_LEN as usize;
    let frame = PAGE + iva_storage::FRAME_TRAILER;
    let frames = (file_len - superblock) / frame;
    let idx = (frames * num / den).min(frames - 1);
    superblock + idx * frame + PAGE / 3
}

fn opts() -> IvaDbOptions {
    IvaDbOptions {
        pager: PagerOptions {
            page_size: 256,
            cache_bytes: 256 * 32,
        },
        // Automatic cleaning rebuilds swap multiple files non-atomically
        // (see DESIGN.md §10); keep the crash workload on the committed
        // insert/delete path.
        cleaning_threshold: 1.0,
        ..Default::default()
    }
}

/// The tuple for row `i` under the four-attribute density split that
/// forces list organizations III, I/II, IV and I respectively.
fn row(i: u32) -> Tuple {
    let mut tup = Tuple::new();
    if !i.is_multiple_of(7) {
        tup.set(AttrId(0), Value::text(format!("product listing {i:04}")));
    }
    if i.is_multiple_of(11) {
        tup.set(
            AttrId(1),
            Value::texts([format!("note {i}"), "extra".to_string()]),
        );
    }
    if i % 10 != 9 {
        tup.set(AttrId(2), Value::num(f64::from(i % 89)));
    }
    if i.is_multiple_of(13) {
        tup.set(AttrId(3), Value::num(f64::from(i)));
    }
    tup
}

/// Live tuples at some commit point.
type Shadow = Vec<(Tid, Tuple)>;

/// States a crashed run may legitimately recover to.
struct Outcome {
    acked: Option<Shadow>,
    pending: Option<Shadow>,
}

/// Replay the batched insert/delete workload, stopping at the first
/// failed operation.
fn run_workload(vfs: Arc<dyn Vfs>) -> Outcome {
    let mut db = match IvaDb::create_with_vfs(vfs, Path::new(DIR), opts()) {
        Ok(db) => db,
        Err(_) => {
            return Outcome {
                acked: None,
                pending: None,
            }
        }
    };
    let nothing = Outcome {
        acked: None,
        pending: None,
    };
    for name in ["dense_txt", "sparse_txt"] {
        if db.define_text(name).is_err() {
            return nothing;
        }
    }
    for name in ["dense_num", "sparse_num"] {
        if db.define_numeric(name).is_err() {
            return nothing;
        }
    }
    // Commit the schema before any data: from here on the catalog sidecar
    // is only rewritten with identical attribute definitions.
    let mut live: Shadow = Vec::new();
    if db.flush().is_err() {
        return Outcome {
            acked: None,
            pending: Some(live),
        };
    }
    let mut acked = Some(live.clone());

    let mut batch_start = 0u32;
    while batch_start < ROWS {
        for i in batch_start..(batch_start + BATCH).min(ROWS) {
            let tup = row(i);
            match db.insert(&tup) {
                Ok(tid) => live.push((tid, tup)),
                Err(_) => {
                    return Outcome {
                        acked,
                        pending: None,
                    }
                }
            }
        }
        // Retire a couple of earlier tuples each batch.
        for _ in 0..2 {
            if live.len() > 4 {
                let (tid, _) = live.remove(live.len() / 3);
                if db.delete(tid).is_err() {
                    return Outcome {
                        acked,
                        pending: None,
                    };
                }
            }
        }
        let pending = live.clone();
        match db.flush() {
            Ok(()) => acked = Some(pending),
            Err(_) => {
                return Outcome {
                    acked,
                    pending: Some(pending),
                }
            }
        }
        batch_start += BATCH;
    }
    Outcome {
        acked,
        pending: None,
    }
}

/// Does the reopened database hold exactly this shadow state?
fn state_matches(db: &IvaDb, shadow: &Shadow) -> bool {
    if db.len() != shadow.len() as u64 {
        return false;
    }
    shadow
        .iter()
        .all(|(tid, tup)| matches!(db.get(*tid), Ok(Some(got)) if got == *tup))
}

/// The query every verification runs; touches all four organizations.
fn probe_query() -> Query {
    Query::new()
        .text(AttrId(0), "product listing 0042")
        .text(AttrId(1), "note 33")
        .num(AttrId(2), 42.0)
        .num(AttrId(3), 26.0)
}

/// Top-k distances from a fresh in-memory database over `shadow` — the
/// oracle the recovered database must agree with.
fn shadow_topk(shadow: &Shadow, k: usize) -> Vec<f64> {
    let mut db = IvaDb::create_mem(opts()).unwrap();
    db.define_text("dense_txt").unwrap();
    db.define_text("sparse_txt").unwrap();
    db.define_numeric("dense_num").unwrap();
    db.define_numeric("sparse_num").unwrap();
    for (_, tup) in shadow {
        db.insert(tup).unwrap();
    }
    db.execute(&probe_query(), &SearchRequest::new(k))
        .unwrap()
        .hits
        .iter()
        .map(|h| h.dist)
        .collect()
}

fn verify_recovery(disk: Arc<dyn Vfs>, outcome: &Outcome, ctx: &str) {
    let reopened = IvaDb::open_with_vfs(disk, Path::new(DIR), opts());
    let Some(acked) = &outcome.acked else {
        // Nothing ever committed: any error is acceptable, only a panic
        // (never observed here, by construction) would be a failure.
        return;
    };
    let mut db = match reopened {
        Ok(db) => db,
        Err(e) => panic!("{ctx}: acked state exists but reopen failed: {e}"),
    };

    let matched = if state_matches(&db, acked) {
        acked
    } else if let Some(p) = outcome.pending.as_ref().filter(|p| state_matches(&db, p)) {
        p
    } else {
        panic!(
            "{ctx}: recovered db (len {}) matches neither the acked state (len {}) nor the \
             in-flight one (len {:?})",
            db.len(),
            acked.len(),
            outcome.pending.as_ref().map(Vec::len),
        );
    };

    // Top-k agreement with a shadow database holding the matched state.
    let k = 10;
    let got: Vec<f64> = db
        .execute(&probe_query(), &SearchRequest::new(k))
        .unwrap_or_else(|e| panic!("{ctx}: search after recovery failed: {e}"))
        .hits
        .iter()
        .map(|h| h.dist)
        .collect();
    let want = shadow_topk(matched, k);
    assert_eq!(got.len(), want.len(), "{ctx}: top-k size mismatch");
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!(
            (g - w).abs() < 1e-9,
            "{ctx}: top-k rank {i}: recovered dist {g}, shadow dist {w}"
        );
    }

    // The recovered database must accept and commit new work.
    let tid = db
        .insert(&Tuple::new().with(AttrId(0), Value::text("post recovery tuple")))
        .unwrap_or_else(|e| panic!("{ctx}: insert after recovery failed: {e}"));
    db.flush()
        .unwrap_or_else(|e| panic!("{ctx}: flush after recovery failed: {e}"));
    let hits = db
        .execute(
            &Query::new().text(AttrId(0), "post recovery tuple"),
            &SearchRequest::new(1),
        )
        .unwrap_or_else(|e| panic!("{ctx}: search after reinsert failed: {e}"))
        .hits;
    assert_eq!(hits[0].tid, tid, "{ctx}");
    assert_eq!(hits[0].dist, 0.0, "{ctx}");
}

#[test]
fn full_stack_power_cut_sweep_recovers_committed_state() {
    let seed = 0x1D_B0_57_EEu64;

    // Dry run: the workload must complete cleanly and must exercise all
    // four list organizations, or the sweep silently weakens.
    let dry = FaultVfs::passthrough(seed);
    let outcome = run_workload(Arc::new(dry.clone()));
    assert!(outcome.acked.is_some() && outcome.pending.is_none());
    {
        let mut db =
            IvaDb::open_with_vfs(Arc::new(dry.volatile_snapshot()), Path::new(DIR), opts())
                .unwrap();
        // The incrementally-maintained index keeps the organizations
        // chosen at creation (empty table); a rebuild re-picks them from
        // the live data, which is what the density split above targets —
        // and it is the same choice every crash-triggered rebuild makes.
        db.rebuild().unwrap();
        let types: Vec<ListType> = (0..4u32)
            .map(|a| db.index().attr_entry(AttrId(a)).unwrap().list_type)
            .collect();
        assert_eq!(types[0], ListType::III);
        assert!(matches!(types[1], ListType::I | ListType::II));
        assert_eq!(types[2], ListType::IV);
        assert_eq!(types[3], ListType::I);
    }
    let total_ops = dry.op_count();

    // Sample ≥200 crash points spread over the whole op sequence (the
    // storage-level sweep in iva-storage covers every single op index).
    let points = 220.min(total_ops);
    assert!(points >= 200, "workload too small: {total_ops} ops");
    for p in 0..points {
        let crash_at = p * total_ops / points;
        let fv = FaultVfs::power_cut_at(seed, crash_at);
        let outcome = run_workload(Arc::new(fv.clone()));
        assert!(
            fv.crashed(),
            "seed={seed:#x} crash_at={crash_at}: cut never fired"
        );
        let ctx = format!("seed={seed:#x} crash_at={crash_at}");
        verify_recovery(Arc::new(fv.durable_snapshot()), &outcome, &ctx);
    }
}

// ---------------------------------------------------------------------
// Segmented (LSM-style) write path under the same power-cut discipline.
// ---------------------------------------------------------------------

const LSM_DIR: &str = "torture-lsm";

fn lsm_opts() -> LsmOptions {
    LsmOptions {
        pager: PagerOptions {
            page_size: 256,
            cache_bytes: 256 * 32,
        },
        // Maintenance is driven explicitly by the workload.
        memtable_limit: 0,
        compact_fanout: 0,
        ..Default::default()
    }
}

/// Replay the segmented workload: batches of inserts and cross-tier
/// deletes, with mid-batch seals and compactions, acknowledged by a
/// store-level flush per batch. Returns the last acked live map and (if
/// the run died mid-batch) the in-flight one.
fn run_lsm_workload(vfs: Arc<dyn Vfs>) -> Outcome {
    let nothing = Outcome {
        acked: None,
        pending: None,
    };
    let mut db = match LsmDb::create_with_vfs(vfs, Path::new(LSM_DIR), lsm_opts()) {
        Ok(db) => db,
        Err(_) => return nothing,
    };
    for name in ["dense_txt", "sparse_txt"] {
        if db.define_text(name).is_err() {
            return nothing;
        }
    }
    for name in ["dense_num", "sparse_num"] {
        if db.define_numeric(name).is_err() {
            return nothing;
        }
    }
    let mut live: Shadow = Vec::new();
    if db.flush().is_err() {
        return Outcome {
            acked: None,
            pending: Some(live),
        };
    }
    let mut acked = Some(live.clone());

    for batch in 0u32..5 {
        let batch_start = batch * BATCH;
        for i in batch_start..batch_start + BATCH {
            let tup = row(i);
            match db.insert(&tup) {
                Ok(tid) => live.push((tid, tup)),
                Err(_) => {
                    return Outcome {
                        acked,
                        pending: Some(live),
                    }
                }
            }
        }
        // A mid-batch seal moves the young inserts to disk before the
        // deletes below, so the deletes tombstone a *sealed segment* in
        // place — the cross-tier arm of the delete path.
        if batch == 1 && db.seal().is_err() {
            return Outcome {
                acked,
                pending: Some(live),
            };
        }
        for _ in 0..2 {
            if live.len() > 4 {
                let (tid, _) = live.remove(live.len() / 3);
                if db.delete(tid).is_err() {
                    return Outcome {
                        acked,
                        pending: Some(live),
                    };
                }
            }
        }
        // A mid-batch compaction (once several segments exist) exercises
        // the merge commit protocol under the sweep.
        if batch == 3 && db.compact().is_err() {
            return Outcome {
                acked,
                pending: Some(live),
            };
        }
        let pending = live.clone();
        match db.flush() {
            Ok(()) => acked = Some(pending),
            Err(_) => {
                return Outcome {
                    acked,
                    pending: Some(pending),
                }
            }
        }
    }
    Outcome {
        acked,
        pending: None,
    }
}

/// Per-tuple acked-or-pending acceptance. The segmented store has one
/// commit point per segment plus the manifest, so a crash mid-batch can
/// durably capture *some* of the in-flight mutations (a sealed insert, a
/// flushed segment tombstone) without the others — each tuple must
/// individually read back as its acked or its pending version, tuples
/// the two states agree on must match exactly, and nothing else may be
/// live. Returns the recovered live map for the oracle check.
fn lsm_recovered_state(db: &LsmDb, acked: &Shadow, pending: Option<&Shadow>, ctx: &str) -> Shadow {
    let pending = pending.unwrap_or(acked);
    let mut union: Vec<(Tid, (Option<&Tuple>, Option<&Tuple>))> = Vec::new();
    fn lookup(s: &Shadow, tid: Tid) -> Option<&Tuple> {
        s.iter().find(|(t, _)| *t == tid).map(|(_, tup)| tup)
    }
    for (tid, _) in acked.iter().chain(pending) {
        if union.iter().any(|(t, _)| t == tid) {
            continue;
        }
        union.push((*tid, (lookup(acked, *tid), lookup(pending, *tid))));
    }
    let mut recovered: Shadow = Vec::new();
    for (tid, (a, p)) in union {
        let got = db
            .get(tid)
            .unwrap_or_else(|e| panic!("{ctx}: get({tid}) failed after recovery: {e}"));
        let ok = match (a, p) {
            (Some(a), Some(p)) if a == p => got.as_ref() == Some(a),
            (Some(a), Some(p)) => got.as_ref() == Some(a) || got.as_ref() == Some(p),
            (Some(a), None) => got.as_ref() == Some(a) || got.is_none(),
            (None, Some(p)) => got.as_ref() == Some(p) || got.is_none(),
            (None, None) => unreachable!("tid came from one of the shadows"),
        };
        assert!(
            ok,
            "{ctx}: tuple {tid} recovered to {:?}, acked {:?}, pending {:?}",
            got.is_some(),
            a.is_some(),
            p.is_some()
        );
        if let Some(tup) = got {
            recovered.push((tid, tup));
        }
    }
    assert_eq!(
        db.len(),
        recovered.len() as u64,
        "{ctx}: live count disagrees with the per-tuple probe — a tuple outside the \
         acked/pending union is live"
    );
    recovered
}

fn verify_lsm_recovery(disk: Arc<dyn Vfs>, outcome: &Outcome, ctx: &str) {
    let reopened = LsmDb::open_with_vfs(disk, Path::new(LSM_DIR), lsm_opts());
    let Some(acked) = &outcome.acked else {
        return;
    };
    let mut db = match reopened {
        Ok(db) => db,
        Err(e) => panic!("{ctx}: acked state exists but reopen failed: {e}"),
    };

    // Segment membership is atomic regardless of where the cut landed:
    // whatever tier set the manifest committed must be internally
    // consistent — disjoint ascending tid ranges, every range non-empty.
    let mut prev_hi: Option<Tid> = None;
    for seg in db.segments() {
        assert!(
            seg.lo_tid() <= seg.hi_tid(),
            "{ctx}: segment {} has inverted range",
            seg.id()
        );
        if let Some(hi) = prev_hi {
            assert!(
                seg.lo_tid() > hi,
                "{ctx}: segment {} overlaps its predecessor",
                seg.id()
            );
        }
        prev_hi = Some(seg.hi_tid());
    }

    let recovered = lsm_recovered_state(&db, acked, outcome.pending.as_ref(), ctx);

    // Top-k agreement with a monolithic oracle over the recovered state —
    // refinement distances are exact, so the engines must agree digit for
    // digit whatever the tier layout looks like.
    let k = 10;
    let got: Vec<f64> = db
        .execute(&probe_query(), &SearchRequest::new(k))
        .unwrap_or_else(|e| panic!("{ctx}: search after recovery failed: {e}"))
        .hits
        .iter()
        .map(|h| h.dist)
        .collect();
    let want = shadow_topk(&recovered, k);
    assert_eq!(got.len(), want.len(), "{ctx}: top-k size mismatch");
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!(
            (g - w).abs() < 1e-9,
            "{ctx}: top-k rank {i}: recovered dist {g}, oracle dist {w}"
        );
    }

    // The recovered store must accept and commit new work.
    let tid = db
        .insert(&Tuple::new().with(AttrId(0), Value::text("post recovery tuple")))
        .unwrap_or_else(|e| panic!("{ctx}: insert after recovery failed: {e}"));
    db.flush()
        .unwrap_or_else(|e| panic!("{ctx}: flush after recovery failed: {e}"));
    let hits = db
        .execute(
            &Query::new().text(AttrId(0), "post recovery tuple"),
            &SearchRequest::new(1),
        )
        .unwrap_or_else(|e| panic!("{ctx}: search after reinsert failed: {e}"))
        .hits;
    assert_eq!(hits[0].tid, tid, "{ctx}");
    assert_eq!(hits[0].dist, 0.0, "{ctx}");
}

#[test]
fn lsm_power_cut_sweep_recovers_committed_state() {
    let seed = 0x15E6_0D_B0u64;

    let dry = FaultVfs::passthrough(seed);
    let outcome = run_lsm_workload(Arc::new(dry.clone()));
    assert!(outcome.acked.is_some() && outcome.pending.is_none());
    let total_ops = dry.op_count();

    let points = 220.min(total_ops);
    assert!(points >= 200, "workload too small: {total_ops} ops");
    for p in 0..points {
        let crash_at = p * total_ops / points;
        let fv = FaultVfs::power_cut_at(seed, crash_at);
        let outcome = run_lsm_workload(Arc::new(fv.clone()));
        assert!(
            fv.crashed(),
            "seed={seed:#x} crash_at={crash_at}: cut never fired"
        );
        let ctx = format!("lsm seed={seed:#x} crash_at={crash_at}");
        verify_lsm_recovery(Arc::new(fv.durable_snapshot()), &outcome, &ctx);
    }
}

/// What the commit-point sweep's deterministic replay reports back when
/// it survives to the end (the dry run; crashed replays are ignored).
struct CompactRun {
    /// `[window_start, window_end)`: the compaction's VFS op indices.
    window: (u64, u64),
    source_ids: Vec<u64>,
    live: Shadow,
}

/// Build three sealed segments, then compact, measuring the compaction's
/// op window on the fault layer itself (so every replay shares one op
/// numbering). Used by the commit-point sweep.
fn build_and_compact(fv: &FaultVfs) -> Result<CompactRun, iva_file::IvaError> {
    let vfs: Arc<dyn Vfs> = Arc::new(fv.clone());
    let mut db = LsmDb::create_with_vfs(vfs, Path::new(LSM_DIR), lsm_opts())?;
    for name in ["dense_txt", "sparse_txt"] {
        db.define_text(name)?;
    }
    for name in ["dense_num", "sparse_num"] {
        db.define_numeric(name)?;
    }
    let mut live: Shadow = Vec::new();
    for batch in 0u32..3 {
        for i in batch * 20..(batch + 1) * 20 {
            let tup = row(i);
            let tid = db.insert(&tup)?;
            live.push((tid, tup));
        }
        // One cross-segment delete per sealed batch keeps tombstones in
        // the merge's way.
        if live.len() > 6 {
            let (tid, _) = live.remove(live.len() / 2);
            db.delete(tid)?;
        }
        db.flush()?;
    }
    let source_ids: Vec<u64> = db.segments().iter().map(|s| s.id()).collect();
    let window_start = fv.op_count();
    db.compact()?;
    let window_end = fv.op_count();
    Ok(CompactRun {
        window: (window_start, window_end),
        source_ids,
        live,
    })
}

/// Crash at *every* VFS operation of the compaction window — staging
/// writes, the manifest commit, source-file garbage collection — and
/// require the reopened store to hold either exactly the source segments
/// or exactly the merged one, never a mix, with the full live state
/// intact either way (compaction is pure reorganization).
#[test]
fn compactor_commit_point_sweep_leaves_segments_merged_or_intact() {
    let seed = 0xC0_4A_C7u64;

    // Dry run: find the compaction's op window.
    let dry = FaultVfs::passthrough(seed);
    let run = build_and_compact(&dry).unwrap();
    let (window_start, window_end) = run.window;
    let sources = run.source_ids;
    let live = run.live;
    assert!(sources.len() >= 2, "workload sealed too few segments");
    let merged_id = *sources.iter().max().unwrap() + 1;
    assert!(
        window_end - window_start >= 20,
        "compaction window implausibly small: {} ops",
        window_end - window_start
    );

    for crash_at in window_start..window_end {
        let fv = FaultVfs::power_cut_at(seed, crash_at);
        let _ = build_and_compact(&fv);
        assert!(
            fv.crashed(),
            "seed={seed:#x} crash_at={crash_at}: cut never fired"
        );
        let ctx = format!("compact seed={seed:#x} crash_at={crash_at}");
        let db = LsmDb::open_with_vfs(
            Arc::new(fv.durable_snapshot()),
            Path::new(LSM_DIR),
            lsm_opts(),
        )
        .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
        let ids: Vec<u64> = db.segments().iter().map(|s| s.id()).collect();
        assert!(
            ids == sources || ids == [merged_id],
            "{ctx}: half-visible merge: segments {ids:?} (sources {sources:?}, merged {merged_id})"
        );
        // Compaction changes no logical state: every live tuple must read
        // back exactly on both sides of the commit point. (The deletes
        // were all acked by the pre-compaction flushes.)
        assert_eq!(db.len(), live.len() as u64, "{ctx}: live count changed");
        for (tid, tup) in &live {
            assert_eq!(
                db.get(*tid).unwrap().as_ref(),
                Some(tup),
                "{ctx}: tuple {tid} damaged by the cut"
            );
        }
    }
}

/// A bit-flipped or truncated manifest must surface as a typed error at
/// open — never a panic, never a silently empty store. (The manifest
/// payload decoder is additionally fuzzed byte-by-byte in
/// `iva-storage`'s unit tests; this covers the full open path through
/// the commit record.)
#[test]
fn damaged_manifest_is_rejected_typed() {
    let mem = MemVfs::new();
    let vfs: Arc<dyn Vfs> = Arc::new(mem.clone());
    {
        let mut db =
            LsmDb::create_with_vfs(Arc::clone(&vfs), Path::new(LSM_DIR), lsm_opts()).unwrap();
        db.define_text("dense_txt").unwrap();
        for i in 0..30 {
            db.insert(&Tuple::new().with(AttrId(0), Value::text(format!("tuple {i}"))))
                .unwrap();
        }
        db.flush().unwrap();
    }
    let path = Path::new(LSM_DIR).join("manifest.ivls");
    let clean = mem.contents(&path).unwrap();

    // Every single-bit flip and every truncation must be caught by the
    // commit record's CRC (or the manifest decoder behind it).
    for at in 0..clean.len() {
        let mut bytes = clean.clone();
        bytes[at] ^= 0x01;
        mem.set_contents(&path, bytes);
        match LsmDb::open_with_vfs(Arc::clone(&vfs), Path::new(LSM_DIR), lsm_opts()) {
            Err(_) => {}
            Ok(_) => panic!("flip at byte {at} opened as a valid store"),
        }
    }
    for len in 0..clean.len() {
        mem.set_contents(&path, clean[..len].to_vec());
        match LsmDb::open_with_vfs(Arc::clone(&vfs), Path::new(LSM_DIR), lsm_opts()) {
            Err(_) => {}
            Ok(_) => panic!("truncation to {len} bytes opened as a valid store"),
        }
    }

    // Restore and prove the sweep damaged nothing else.
    mem.set_contents(&path, clean);
    let db = LsmDb::open_with_vfs(vfs, Path::new(LSM_DIR), lsm_opts()).unwrap();
    assert_eq!(db.len(), 30);
}

/// A deliberately bit-flipped table page must surface as a corruption
/// error on access — never a panic, never a silently wrong tuple.
#[test]
fn bit_flipped_table_page_is_detected() {
    let mem = MemVfs::new();
    let vfs: Arc<dyn Vfs> = Arc::new(mem.clone());
    let shadow: Shadow = {
        let mut db = IvaDb::create_with_vfs(Arc::clone(&vfs), Path::new(DIR), opts()).unwrap();
        db.define_text("dense_txt").unwrap();
        db.define_text("sparse_txt").unwrap();
        db.define_numeric("dense_num").unwrap();
        db.define_numeric("sparse_num").unwrap();
        let mut live = Vec::new();
        for i in 0..ROWS {
            let tup = row(i);
            let tid = db.insert(&tup).unwrap();
            live.push((tid, tup));
        }
        db.flush().unwrap();
        live
    };

    // Flip one bit in a mid-file page frame, inside the checksummed data
    // region (not the frame trailer or the superblock).
    let tbl = Path::new(DIR).join("data.tbl");
    let mut bytes = mem.contents(&tbl).unwrap();
    let at = frame_data_offset(bytes.len(), 1, 2);
    bytes[at] ^= 0x10;
    mem.set_contents(&tbl, bytes);

    // The index is clean, so the open itself may succeed; the damage must
    // then surface as a typed corruption error when the page is read.
    match IvaDb::open_with_vfs(vfs, Path::new(DIR), opts()) {
        Err(e) => assert!(e.is_corruption(), "open: unexpected error class: {e}"),
        Ok(db) => {
            let mut corruption_seen = false;
            for (tid, tup) in &shadow {
                match db.get(*tid) {
                    Ok(Some(got)) => assert_eq!(&got, tup, "bit flip returned a wrong tuple"),
                    Ok(None) => panic!("bit flip silently dropped tuple {tid}"),
                    Err(e) => {
                        assert!(e.is_corruption(), "get({tid}): unexpected error class: {e}");
                        corruption_seen = true;
                    }
                }
            }
            assert!(corruption_seen, "bit flip was never detected");
        }
    }
}

/// A bit flip inside the index file must likewise be caught by the page
/// checksums (at open, or at the first filter scan) — or repaired by the
/// stale-index rebuild — never returned as wrong answers.
#[test]
fn bit_flipped_index_page_is_detected_or_rebuilt() {
    let mem = MemVfs::new();
    let vfs: Arc<dyn Vfs> = Arc::new(mem.clone());
    {
        let mut db = IvaDb::create_with_vfs(Arc::clone(&vfs), Path::new(DIR), opts()).unwrap();
        db.define_text("dense_txt").unwrap();
        db.define_text("sparse_txt").unwrap();
        db.define_numeric("dense_num").unwrap();
        db.define_numeric("sparse_num").unwrap();
        for i in 0..ROWS {
            db.insert(&row(i)).unwrap();
        }
        db.flush().unwrap();
    }

    let idx = Path::new(DIR).join("index.iva");
    let clean = mem.contents(&idx).unwrap();
    // Sweep flip positions: header frame, early/middle/late list frames.
    for (num, den) in [(0, 1), (1, 4), (1, 2), (3, 4)] {
        let at = frame_data_offset(clean.len(), num, den);
        let mut bytes = clean.clone();
        bytes[at] ^= 0x04;
        mem.set_contents(&idx, bytes);
        match IvaDb::open_with_vfs(Arc::clone(&vfs), Path::new(DIR), opts()) {
            // A damaged header frame fails validation at open and routes
            // through the rebuild, which must leave a working database; a
            // damaged list frame surfaces at the first scan over it.
            Ok(db) => match db.execute(
                &Query::new().text(AttrId(0), "product listing 0041"),
                &SearchRequest::new(1),
            ) {
                Ok(out) => assert_eq!(out.hits[0].dist, 0.0, "flip at {at}: wrong answer"),
                Err(e) => {
                    assert!(
                        e.is_corruption(),
                        "flip at {at}: unexpected error class: {e}"
                    )
                }
            },
            Err(e) => assert!(
                e.is_corruption(),
                "flip at {at}: unexpected error class: {e}"
            ),
        }
    }
    // Restore the clean image and prove the sweep damaged nothing else.
    mem.set_contents(&idx, clean);
    let db = IvaDb::open_with_vfs(vfs, Path::new(DIR), opts()).unwrap();
    assert_eq!(db.len(), u64::from(ROWS));
}
