//! Loom model of the serving layer's epoch publication protocol
//! (`src/serve.rs`): the writer bumps the epoch counter *inside* the
//! write critical section, so no reader can pair new engine state with an
//! old epoch or old state with a new one.
//!
//! The vendored checker has atomics only (no `Mutex`/`RwLock`), so the
//! lock-exclusion + epoch-bump protocol is restated as its equivalent
//! seqlock: an odd epoch value plays the role of "write lock held"
//! (production readers block here; the model's readers instead discard
//! the sample), and the even bump before anything else can run again is
//! the in-critical-section publication of `Writer::apply`. Publication
//! `i` stores state `i` and lands on epoch `2·i`, so a consistent sample
//! must satisfy `state == epoch / 2` — exactly the serving layer's
//! "two snapshots with equal epochs saw bit-identical data".
//!
//! Two models: the shipped protocol, which must hold under every
//! interleaving, and the tempting-but-wrong variant that publishes state
//! before bumping (the bump-after-release bug), which the checker must
//! catch — proving the model is strong enough to see the difference.
//!
//! Run with the vendored bounded checker (see TESTING.md):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test --test loom_serve --release
//! ```
#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;

const PUBLICATIONS: u64 = 2;

/// One reader pass: the model analogue of `read_snapshot` — sample the
/// epoch, the state, and the epoch again. In production the read guard
/// makes the three reads atomic with respect to the writer; here a
/// sample is "a snapshot" only if the writer provably did not overlap
/// (both epoch loads equal and even). No retry loop: an inconsistent
/// sample is simply not a snapshot, and bounding the reader keeps the
/// schedule tree finite.
fn sample(epoch: &AtomicU64, state: &AtomicU64) -> Option<(u64, u64)> {
    let e1 = epoch.load(Ordering::Acquire);
    let s = state.load(Ordering::Acquire);
    let e2 = epoch.load(Ordering::Acquire);
    (e1 == e2 && e1 % 2 == 0).then_some((e1, s))
}

#[test]
fn epoch_always_pairs_with_its_publication() {
    loom::model(|| {
        let epoch = Arc::new(AtomicU64::new(0));
        let state = Arc::new(AtomicU64::new(0));

        let writer = {
            let epoch = Arc::clone(&epoch);
            let state = Arc::clone(&state);
            loom::thread::spawn(move || {
                for i in 1..=PUBLICATIONS {
                    // Writer::apply: enter the critical section (odd —
                    // readers excluded), mutate, publish the epoch while
                    // still inside, then release (even).
                    epoch.fetch_add(1, Ordering::Release);
                    state.store(i, Ordering::Release);
                    epoch.fetch_add(1, Ordering::Release);
                }
            })
        };
        let reader = {
            let epoch = Arc::clone(&epoch);
            let state = Arc::clone(&state);
            loom::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..2 {
                    if let Some((e, s)) = sample(&epoch, &state) {
                        assert_eq!(
                            s,
                            e / 2,
                            "snapshot pairs state {s} with epoch {e}: torn publication"
                        );
                        assert!(e >= last, "epoch went backwards");
                        last = e;
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        // Quiescent end state: everything published, epoch even.
        assert_eq!(epoch.load(Ordering::Acquire), 2 * PUBLICATIONS);
        assert_eq!(state.load(Ordering::Acquire), PUBLICATIONS);
    });
}

/// The buggy ordering — mutate first, then bump straight to the next
/// even epoch (i.e. the bump happens outside the critical section, as if
/// `Writer::apply` bumped after `drop(guard)`). A reader can then pair
/// the *new* state with the *old* epoch. The checker must find that
/// schedule; if it ever stops doing so, the model has gone blind and
/// the passing test above means nothing.
#[test]
fn late_epoch_bump_is_caught_by_the_model() {
    let caught = std::panic::catch_unwind(|| {
        loom::model(|| {
            let epoch = Arc::new(AtomicU64::new(0));
            let state = Arc::new(AtomicU64::new(0));

            let writer = {
                let epoch = Arc::clone(&epoch);
                let state = Arc::clone(&state);
                loom::thread::spawn(move || {
                    for i in 1..=PUBLICATIONS {
                        state.store(i, Ordering::Release);
                        epoch.fetch_add(2, Ordering::Release);
                    }
                })
            };
            let reader = {
                let epoch = Arc::clone(&epoch);
                let state = Arc::clone(&state);
                loom::thread::spawn(move || {
                    for _ in 0..2 {
                        if let Some((e, s)) = sample(&epoch, &state) {
                            assert_eq!(s, e / 2, "torn publication");
                        }
                    }
                })
            };
            writer.join().unwrap();
            reader.join().unwrap();
        });
    });
    assert!(
        caught.is_err(),
        "the model failed to catch the bump-after-release bug"
    );
}
