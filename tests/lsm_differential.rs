//! Differential update-torture: the segmented (LSM-style) engine against
//! a shadow monolithic `IvaDb` under randomized interleavings of inserts,
//! deletes, updates, seals, compactions, and flushes.
//!
//! Every interleaving drives both engines with the *same* operation
//! sequence (maintenance ops are no-ops on the monolith, which has no
//! tiers) and checks, at interleaved probe points:
//!
//! * tuple ids assigned by the two engines are identical;
//! * top-k hits are bit-identical — same tids, same `f64::to_bits`
//!   distances, same order — under the serial plan, the segmented
//!   parallel plan (2 and 3 threads), batched refinement, and the
//!   sequential plan;
//! * with `refine_batch = 1` the refinement `table_accesses` match
//!   exactly (the carried scan replays the monolithic admission sequence
//!   tuple for tuple);
//! * the segmented engine never scans more tuple-list entries than the
//!   monolith (sealing drops tombstones; the monolith keeps them).
//!
//! The workload's four-attribute density split materializes all four
//! vector-list organizations (Types I–IV), so every probe crosses every
//! organization. Failures print the interleaving's seed.

use std::collections::HashMap;

use iva_core::ListType;
use iva_file::{
    AttrId, IvaDb, IvaDbOptions, LsmDb, LsmOptions, PagerOptions, Query, SearchRequest, Tid, Tuple,
    Value, WeightScheme,
};

const INTERLEAVINGS: u64 = 200;
const OPS_PER_RUN: u32 = 48;

fn pager() -> PagerOptions {
    PagerOptions {
        page_size: 256,
        cache_bytes: 256 * 32,
    }
}

fn mono_opts() -> IvaDbOptions {
    IvaDbOptions {
        pager: pager(),
        // The shadow must never rebuild: a rebuild re-picks organizations
        // and re-quantises numeric domains, while the segmented engine
        // pins both — the equivalence target is the *incrementally
        // maintained* monolith. 1.0 is not enough: a run that deletes
        // every tuple reaches deleted_fraction == 1.0 and still triggers.
        cleaning_threshold: 2.0,
        weights: WeightScheme::Equal,
        ..Default::default()
    }
}

fn lsm_opts() -> LsmOptions {
    LsmOptions {
        pager: pager(),
        weights: WeightScheme::Equal,
        // Maintenance is driven explicitly by the op stream.
        memtable_limit: 0,
        compact_fanout: 0,
        ..Default::default()
    }
}

/// xorshift64*: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The tuple for row `i` under the four-attribute density split that
/// forces list organizations III, I/II, IV and I respectively.
fn row(i: u64) -> Tuple {
    let mut tup = Tuple::new();
    if i % 7 != 0 {
        tup.set(
            AttrId(0),
            Value::text(format!("product listing {:04}", i % 97)),
        );
    }
    if i % 11 == 0 {
        tup.set(
            AttrId(1),
            Value::texts([format!("note {}", i % 37), "extra".to_string()]),
        );
    }
    if i % 10 != 9 {
        tup.set(AttrId(2), Value::num((i % 89) as f64));
    }
    if i % 13 == 0 {
        tup.set(AttrId(3), Value::num(i as f64));
    }
    tup
}

fn define_schema(mono: &mut IvaDb, lsm: &mut LsmDb) {
    for name in ["dense_txt", "sparse_txt"] {
        mono.define_text(name).unwrap();
        lsm.define_text(name).unwrap();
    }
    for name in ["dense_num", "sparse_num"] {
        mono.define_numeric(name).unwrap();
        lsm.define_numeric(name).unwrap();
    }
}

/// Probe queries crossing all four organizations plus single-attribute
/// corner cases.
fn probes(rng: &mut Rng) -> Vec<Query> {
    vec![
        Query::new()
            .text(AttrId(0), format!("product listing {:04}", rng.below(97)))
            .text(AttrId(1), format!("note {}", rng.below(37)))
            .num(AttrId(2), rng.below(89) as f64)
            .num(AttrId(3), rng.below(500) as f64),
        Query::new()
            .text(AttrId(0), format!("product listing {:04}", rng.below(97)))
            .num(AttrId(2), rng.below(89) as f64),
        Query::new().num(AttrId(3), rng.below(500) as f64),
    ]
}

fn keys(hits: &[iva_file::SearchHit]) -> Vec<(u64, u64)> {
    hits.iter().map(|h| (h.dist.to_bits(), h.tid)).collect()
}

/// Compare every plan's answer on one query. `k` varies per call site.
fn check_query(mono: &IvaDb, lsm: &LsmDb, query: &Query, k: usize, ctx: &str) {
    // Serial plan, unbatched refinement, measured counters: hits AND
    // refinement accounting must replay exactly.
    let req = SearchRequest::new(k)
        .measured(true)
        .threads(1)
        .refine_batch(1);
    let want = mono.execute(query, &req).unwrap();
    let got = lsm.execute(query, &req).unwrap();
    assert_eq!(
        keys(&got.hits),
        keys(&want.hits),
        "{ctx}: serial hits diverge"
    );
    for (g, w) in got.hits.iter().zip(&want.hits) {
        assert_eq!(g.tuple, w.tuple, "{ctx}: tuple materialization diverges");
    }
    assert_eq!(
        got.stats.table_accesses, want.stats.table_accesses,
        "{ctx}: refinement table_accesses diverge at refine_batch=1"
    );
    assert!(
        got.stats.tuples_scanned <= want.stats.tuples_scanned,
        "{ctx}: segmented scan visited more directory entries ({}) than the monolith ({})",
        got.stats.tuples_scanned,
        want.stats.tuples_scanned
    );

    // Parallel filter scans and batched refinement: hits stay
    // bit-identical (execution strategies, never semantics).
    for threads in [2usize, 3] {
        let req = SearchRequest::new(k).threads(threads);
        let got = lsm.execute(query, &req).unwrap();
        assert_eq!(
            keys(&got.hits),
            keys(&want.hits),
            "{ctx}: hits diverge at {threads} threads"
        );
    }
    let req = SearchRequest::new(k).refine_batch(4);
    let got = lsm.execute(query, &req).unwrap();
    assert_eq!(
        keys(&got.hits),
        keys(&want.hits),
        "{ctx}: hits diverge at refine_batch=4"
    );

    // Sequential plan: hits bit-identical (its leftover-round ordering is
    // per tier, so only the hit set and distances are contractual —
    // DESIGN.md §14).
    let got = lsm
        .execute_sequential_plan(query, &SearchRequest::new(k))
        .unwrap();
    assert_eq!(
        keys(&got.hits),
        keys(&want.hits),
        "{ctx}: sequential-plan hits diverge"
    );
}

fn check_state(mono: &IvaDb, lsm: &LsmDb, live: &HashMap<Tid, Tuple>, ctx: &str) {
    assert_eq!(lsm.len(), mono.len(), "{ctx}: live count diverges");
    assert_eq!(
        lsm.len(),
        live.len() as u64,
        "{ctx}: live count vs shadow map"
    );
    for (tid, tup) in live {
        let got = lsm.get(*tid).unwrap();
        assert_eq!(got.as_ref(), Some(tup), "{ctx}: get({tid}) diverges");
    }
}

/// One full interleaving under `seed`.
fn run_interleaving(seed: u64) {
    let ctx = |op: u32| format!("seed={seed:#x} op={op}");
    let mut rng = Rng::new(seed);
    let mut mono = IvaDb::create_mem(mono_opts()).unwrap();
    let mut lsm = LsmDb::create_mem(lsm_opts()).unwrap();
    define_schema(&mut mono, &mut lsm);

    let mut live: HashMap<Tid, Tuple> = HashMap::new();
    let mut next_row = seed % 1000;

    for op in 0..OPS_PER_RUN {
        match rng.below(100) {
            // Inserts dominate so tiers actually fill.
            0..=44 => {
                let tup = row(next_row);
                next_row += 1;
                let want_tid = mono.insert(&tup).unwrap();
                let got_tid = lsm.insert(&tup).unwrap();
                assert_eq!(got_tid, want_tid, "{}: tid assignment diverges", ctx(op));
                live.insert(got_tid, tup);
            }
            45..=59 => {
                // Delete a random live tuple (or a bogus tid).
                let tid = pick(&mut rng, &live).unwrap_or(9999);
                let want = mono.delete(tid).unwrap();
                let got = lsm.delete(tid).unwrap();
                assert_eq!(got, want, "{}: delete({tid}) verdict diverges", ctx(op));
                live.remove(&tid);
            }
            60..=74 => {
                if let Some(tid) = pick(&mut rng, &live) {
                    let tup = row(next_row);
                    next_row += 1;
                    let want_tid = mono.update(tid, &tup).unwrap();
                    let got_tid = lsm.update(tid, &tup).unwrap();
                    assert_eq!(got_tid, want_tid, "{}: update tid diverges", ctx(op));
                    live.remove(&tid);
                    live.insert(got_tid, tup);
                }
            }
            75..=84 => {
                lsm.seal().unwrap();
            }
            85..=92 => {
                lsm.compact().unwrap();
            }
            _ => {
                lsm.flush().unwrap();
            }
        }
        if op % 8 == 7 {
            check_state(&mono, &lsm, &live, &ctx(op));
            for (qi, q) in probes(&mut rng).into_iter().enumerate() {
                check_query(&mono, &lsm, &q, 5, &format!("{} probe={qi}", ctx(op)));
            }
        }
    }
    // Final deep check with a couple of k values (k=1 corner, k larger
    // than the live set).
    check_state(&mono, &lsm, &live, &ctx(OPS_PER_RUN));
    for (qi, q) in probes(&mut rng).into_iter().enumerate() {
        for k in [1usize, 5, 64] {
            check_query(
                &mono,
                &lsm,
                &q,
                k,
                &format!("{} final probe={qi} k={k}", ctx(OPS_PER_RUN)),
            );
        }
    }
}

fn pick(rng: &mut Rng, live: &HashMap<Tid, Tuple>) -> Option<Tid> {
    if live.is_empty() {
        return None;
    }
    let mut tids: Vec<Tid> = live.keys().copied().collect();
    tids.sort_unstable();
    Some(tids[rng.below(tids.len() as u64) as usize])
}

#[test]
fn randomized_interleavings_match_monolith_bit_for_bit() {
    for seed in 0..INTERLEAVINGS {
        run_interleaving(0x5EED_0000 + seed);
    }
}

/// The workload must genuinely materialize all four organizations, or
/// the differential sweep silently weakens: sealing re-picks each
/// attribute's organization from the sealed data by the paper's size
/// formulas, and the density split above must hit I, II-or-I, III and IV
/// across the attributes of some sealed segment.
#[test]
fn interleavings_cover_all_four_list_organizations() {
    let mut lsm = LsmDb::create_mem(lsm_opts()).unwrap();
    let mut mono = IvaDb::create_mem(mono_opts()).unwrap();
    define_schema(&mut mono, &mut lsm);
    for i in 0..150 {
        lsm.insert(&row(i)).unwrap();
    }
    lsm.seal().unwrap();
    let seg = &lsm.segments()[0];
    let types: Vec<ListType> = (0..4u32)
        .map(|a| seg.index().attr_entry(AttrId(a)).unwrap().list_type)
        .collect();
    assert_eq!(types[0], ListType::III);
    assert!(matches!(types[1], ListType::I | ListType::II));
    assert_eq!(types[2], ListType::IV);
    assert_eq!(types[3], ListType::I);
}

/// Epoch parity through the serving layer: a served `LsmDb` and a served
/// monolithic shadow, driven by the same mutation stream (maintenance =
/// `Writer::maintain` on the segmented side, a published no-op on the
/// shadow), publish the same epoch sequence and answer every probe
/// bit-identically at every epoch.
#[test]
fn served_epoch_stream_matches_monolith() {
    use iva_file::serve::Writer;

    let mut rng = Rng::new(0xEAC5);
    let mut lsm = Writer::new(
        LsmDb::create_mem(LsmOptions {
            memtable_limit: 8,
            compact_fanout: 3,
            ..lsm_opts()
        })
        .unwrap(),
    );
    let mut mono = Writer::new(IvaDb::create_mem(mono_opts()).unwrap());
    {
        // Writers only expose the trait surface; define through apply.
        lsm.apply(|db| {
            db.define_text("dense_txt")?;
            db.define_text("sparse_txt")?;
            db.define_numeric("dense_num")?;
            db.define_numeric("sparse_num")?;
            Ok(())
        })
        .unwrap();
        mono.apply(|db| {
            db.define_text("dense_txt")?;
            db.define_text("sparse_txt")?;
            db.define_numeric("dense_num")?;
            db.define_numeric("sparse_num")?;
            Ok(())
        })
        .unwrap();
    }
    let lsm_reader = lsm.reader();
    let mono_reader = mono.reader();
    for i in 0..80u64 {
        let tup = row(i);
        let a = lsm.insert(&tup).unwrap();
        let b = mono.insert(&tup).unwrap();
        assert_eq!(a, b, "op {i}: served tid diverges");
        if i % 9 == 8 {
            let tid = i - rng.below(6);
            assert_eq!(
                lsm.delete(tid).unwrap(),
                mono.delete(tid).unwrap(),
                "op {i}: served delete verdict diverges"
            );
        }
        // Threshold-driven background maintenance; the shadow publishes a
        // no-op so the epoch streams stay in step.
        if lsm.maintain().unwrap() {
            mono.apply(|_| Ok(())).unwrap();
        }
        assert_eq!(lsm.epoch(), mono.epoch(), "op {i}: epoch streams diverge");
        let lsnap = lsm_reader.snapshot();
        let msnap = mono_reader.snapshot();
        assert_eq!(
            lsnap.epoch(),
            msnap.epoch(),
            "op {i}: snapshot epochs diverge"
        );
        let q = Query::new()
            .text(AttrId(0), format!("product listing {:04}", rng.below(97)))
            .num(AttrId(2), rng.below(89) as f64);
        let got = lsnap.execute(&q, &SearchRequest::new(5)).unwrap();
        let want = msnap.execute(&q, &SearchRequest::new(5)).unwrap();
        assert_eq!(
            keys(&got.hits),
            keys(&want.hits),
            "op {i}: served hits diverge at epoch {}",
            lsnap.epoch()
        );
    }
    // The maintenance actually ran: segments were sealed and merged.
    let snap = lsm_reader.snapshot();
    assert!(!snap.segments().is_empty(), "no segment was ever sealed");
}
