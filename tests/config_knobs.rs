//! The configuration-layering contract of `IvaDbOptions` (see its
//! rustdoc): structural parameters persist, runtime knobs follow the
//! options of the opening process, and per-request overrides never
//! write through to either.

use iva_file::vfs::{RealVfs, Vfs};
use iva_file::{IvaConfig, IvaDb, IvaDbOptions, Query, SearchRequest, Tuple, Value};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("iva-knobs-{tag}-{}", std::process::id()));
    let _ = RealVfs.remove_dir_all(&dir);
    dir
}

fn knobbed_opts() -> IvaDbOptions {
    IvaDbOptions {
        config: IvaConfig {
            search_threads: 3,
            refine_batch: 32,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn populate(db: &mut IvaDb) {
    let name = db.define_text("name").unwrap();
    for i in 0..40 {
        db.insert(&Tuple::new().with(name, Value::text(format!("widget {i}"))))
            .unwrap();
    }
    db.flush().unwrap();
}

/// Regression: runtime knobs used to be silently dropped on open because
/// the index header round-trip resets them. The opening process's
/// options must win.
#[test]
fn runtime_knobs_survive_reopen() {
    let dir = scratch_dir("survive");
    {
        let mut db = IvaDb::create(&dir, knobbed_opts()).unwrap();
        populate(&mut db);
        assert_eq!(db.index().config().search_threads, 3);
        assert_eq!(db.index().config().refine_batch, 32);
    }
    let db = IvaDb::open(&dir, knobbed_opts()).unwrap();
    assert_eq!(
        db.index().config().search_threads,
        3,
        "search_threads dropped on open"
    );
    assert_eq!(
        db.index().config().refine_batch,
        32,
        "refine_batch dropped on open"
    );
    RealVfs.remove_dir_all(&dir).unwrap();
}

/// Runtime knobs belong to the opening process, not the file: a reopen
/// with default options gets the defaults back, no matter what the
/// writing process used.
#[test]
fn runtime_knobs_are_not_persisted() {
    let dir = scratch_dir("notpersisted");
    {
        let mut db = IvaDb::create(&dir, knobbed_opts()).unwrap();
        populate(&mut db);
    }
    let db = IvaDb::open(&dir, IvaDbOptions::default()).unwrap();
    assert_eq!(db.index().config().search_threads, 0);
    assert_eq!(db.index().config().refine_batch, 1);
    RealVfs.remove_dir_all(&dir).unwrap();
}

/// Per-request overrides are scoped to one `execute` call: they must
/// not leak into the live config, nor into the persisted image.
#[test]
fn search_request_overrides_never_leak() {
    let dir = scratch_dir("noleak");
    {
        let mut db = IvaDb::create(&dir, knobbed_opts()).unwrap();
        populate(&mut db);
        let q = Query::new().text(db.attr("name").unwrap(), "widget 7");
        let req = SearchRequest::new(5).threads(13).refine_batch(1024);
        let out = db.execute(&q, &req).unwrap();
        assert_eq!(out.hits[0].dist, 0.0);
        // The live config still holds the options' knobs.
        assert_eq!(db.index().config().search_threads, 3);
        assert_eq!(db.index().config().refine_batch, 32);
        db.flush().unwrap();
    }
    // ... and the durable image never saw the override either: a reopen
    // with default options shows pure defaults.
    let db = IvaDb::open(&dir, IvaDbOptions::default()).unwrap();
    assert_eq!(db.index().config().search_threads, 0);
    assert_eq!(db.index().config().refine_batch, 1);
    RealVfs.remove_dir_all(&dir).unwrap();
}

/// Structural parameters go the other way: the stored values win over
/// whatever the opening options carry (the index bytes were shaped by
/// them), while the opener's runtime knobs still apply.
#[test]
fn structural_params_from_disk_win_over_options() {
    let dir = scratch_dir("structural");
    {
        let mut db = IvaDb::create(
            &dir,
            IvaDbOptions {
                config: IvaConfig {
                    alpha: 0.30,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        populate(&mut db);
    }
    // Open asking for a different alpha AND custom runtime knobs.
    let db = IvaDb::open(
        &dir,
        IvaDbOptions {
            config: IvaConfig {
                alpha: 0.10,
                search_threads: 2,
                refine_batch: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let cfg = db.index().config();
    assert_eq!(cfg.alpha, 0.30, "stored structural parameter must win");
    assert_eq!(cfg.search_threads, 2, "opener's runtime knob must apply");
    assert_eq!(cfg.refine_batch, 8);
    RealVfs.remove_dir_all(&dir).unwrap();
}
