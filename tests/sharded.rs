//! Tests of the horizontally partitioned deployment (the paper's Sec. VI
//! claim): sharded search must be exact — identical top-k distances to a
//! single-node database over the same data — under parallel execution.

use iva_file::workload::{generate_query_set, Dataset, WorkloadConfig};
use iva_file::{
    IvaDb, IvaDbOptions, MetricKind, Query, SearchRequest, ShardedIvaDb, Tuple, Value, WeightScheme,
};

fn fill_both(n: usize, shards: usize) -> (IvaDb, ShardedIvaDb, Dataset) {
    let cfg = WorkloadConfig::scaled(n);
    let dataset = Dataset::generate(&cfg);
    let mut single = IvaDb::create_mem(IvaDbOptions::default()).unwrap();
    let mut sharded = ShardedIvaDb::create_mem(shards, IvaDbOptions::default()).unwrap();
    for (i, ty) in dataset.attr_types.iter().enumerate() {
        let name = format!("attr_{i}");
        match ty {
            iva_file::AttrType::Text => {
                single.define_text(&name).unwrap();
                sharded.define_text(&name).unwrap();
            }
            iva_file::AttrType::Numeric => {
                single.define_numeric(&name).unwrap();
                sharded.define_numeric(&name).unwrap();
            }
        }
    }
    for t in &dataset.tuples {
        single.insert(t).unwrap();
        sharded.insert(t).unwrap();
    }
    (single, sharded, dataset)
}

#[test]
fn sharded_matches_single_node() {
    let (single, sharded, dataset) = fill_both(2_000, 4);
    assert_eq!(single.len(), sharded.len());
    let qs = generate_query_set(&dataset, 3, 12, 2, 77);
    for q in qs.measured() {
        for k in [1usize, 5, 20] {
            let req = SearchRequest::new(k)
                .metric(MetricKind::L2)
                .weights(WeightScheme::Equal);
            let a = single.execute(q, &req).unwrap().hits;
            let b = sharded.execute(q, &req).unwrap().hits;
            assert_eq!(a.len(), b.len(), "k={k}");
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x.dist - y.dist).abs() < 1e-9,
                    "k={k}: single {:?} vs sharded {:?}",
                    a.iter().map(|h| h.dist).collect::<Vec<_>>(),
                    b.iter().map(|h| h.dist).collect::<Vec<_>>()
                );
            }
        }
    }
}

#[test]
fn sharded_crud() {
    let mut db = ShardedIvaDb::create_mem(3, IvaDbOptions::default()).unwrap();
    let name = db.define_text("name").unwrap();
    let mut ids = Vec::new();
    for i in 0..30 {
        ids.push(
            db.insert(&Tuple::new().with(name, Value::text(format!("item {i}"))))
                .unwrap(),
        );
    }
    assert_eq!(db.len(), 30);
    // Round-robin placement touches every shard.
    assert_eq!(ids[0].shard, 0);
    assert_eq!(ids[1].shard, 1);
    assert_eq!(ids[2].shard, 2);
    assert_eq!(ids[3].shard, 0);

    let got = db.get(ids[7]).unwrap().unwrap();
    assert_eq!(got.get(name), Some(&Value::text("item 7")));

    assert!(db.delete(ids[7]).unwrap());
    assert!(!db.delete(ids[7]).unwrap());
    assert_eq!(db.len(), 29);
    assert!(db.get(ids[7]).unwrap().is_none());

    let hits = db
        .execute(&Query::new().text(name, "item 8"), &SearchRequest::new(1))
        .unwrap()
        .hits;
    assert_eq!(hits[0].dist, 0.0);
    assert_eq!(hits[0].id, ids[8]);
}

#[test]
fn single_shard_degenerates_to_plain_db() {
    let mut db = ShardedIvaDb::create_mem(1, IvaDbOptions::default()).unwrap();
    let a = db.define_text("a").unwrap();
    db.insert(&Tuple::new().with(a, Value::text("only")))
        .unwrap();
    let hits = db
        .execute(&Query::new().text(a, "only"), &SearchRequest::new(3))
        .unwrap()
        .hits;
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].dist, 0.0);
}

#[test]
fn zero_shards_rejected() {
    assert!(ShardedIvaDb::create_mem(0, IvaDbOptions::default()).is_err());
}

#[test]
fn sharded_cleanup_runs_per_shard() {
    let mut db = ShardedIvaDb::create_mem(
        2,
        IvaDbOptions {
            cleaning_threshold: 0.3,
            ..Default::default()
        },
    )
    .unwrap();
    let name = db.define_text("name").unwrap();
    let mut ids = Vec::new();
    for i in 0..20 {
        ids.push(
            db.insert(&Tuple::new().with(name, Value::text(format!("x{i}"))))
                .unwrap(),
        );
    }
    for id in ids.iter().take(10) {
        db.delete(*id).unwrap();
    }
    db.maybe_clean().unwrap();
    // β-cleanups fire inside delete() as thresholds are crossed, so after
    // the final sweep every shard sits below the threshold.
    for i in 0..2 {
        let frac = db.shard(i).unwrap().index().deleted_fraction();
        assert!(frac < 0.3, "shard {i} above threshold: {frac}");
    }
    assert_eq!(db.len(), 10);
}

#[test]
fn sharded_merge_breaks_distance_ties_deterministically() {
    // 12 byte-identical tuples round-robined over 3 shards: every hit ties
    // at distance 0, so the answer order is decided purely by the merge's
    // tie-break (distance, then local tid, then shard). That order must be
    // stable across runs and across thread budgets.
    let mut db = ShardedIvaDb::create_mem(3, IvaDbOptions::default()).unwrap();
    let name = db.define_text("name").unwrap();
    for _ in 0..12 {
        db.insert(&Tuple::new().with(name, Value::text("same")))
            .unwrap();
    }
    let query = db.query_builder().text("name", "same").build().unwrap();

    let reference = db
        .execute(&query, &SearchRequest::new(12).threads(1))
        .unwrap();
    assert_eq!(reference.hits.len(), 12);
    for hit in &reference.hits {
        assert_eq!(hit.dist, 0.0);
    }
    // (tid, shard) lexicographic: tid 0 of shards 0..3, then tid 1, ...
    let ids: Vec<(u64, usize)> = reference
        .hits
        .iter()
        .map(|h| (h.id.tid, h.id.shard as usize))
        .collect();
    let expected: Vec<(u64, usize)> = (0..4u64)
        .flat_map(|t| (0..3).map(move |s| (t, s)))
        .collect();
    assert_eq!(ids, expected);

    for threads in [1usize, 2, 3, 8] {
        for _ in 0..3 {
            let run = db
                .execute(&query, &SearchRequest::new(12).threads(threads))
                .unwrap();
            let got: Vec<(u64, usize)> = run
                .hits
                .iter()
                .map(|h| (h.id.tid, h.id.shard as usize))
                .collect();
            assert_eq!(
                got, expected,
                "non-deterministic merge at threads={threads}"
            );
        }
    }
}
