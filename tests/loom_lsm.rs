//! Loom model of the seal/publish handoff behind
//! `serve::Writer::maintain` (`src/serve.rs` + `src/lsm.rs`): the
//! expensive prepare phase runs *outside* the write critical section
//! (readers keep answering), and the publish phase — the tier-list swap
//! — happens entirely *inside* it, so no reader can ever observe a
//! record in both tiers (double count) or in neither (dropped).
//!
//! The vendored checker has atomics only, so the reader-writer lock is
//! restated as the same seqlock idiom `loom_serve.rs` uses: an odd epoch
//! plays "write lock held" (production readers block; the model's
//! readers discard the sample). The store's tier state is reduced to two
//! words — `sealed` (records in sealed segments) and `mem` (records in
//! the memtable). A seal moves the memtable's records to the sealed
//! tier; the invariant every consistent snapshot must satisfy is
//! conservation: `sealed + mem == TOTAL`.
//!
//! Two models: the shipped protocol (prepare outside, both tier words
//! swapped inside one critical section), which must hold under every
//! interleaving, and the tempting-but-wrong variant that publishes the
//! sealed segment *before* entering the critical section — "the segment
//! is immutable, surely pushing it early is harmless" — which lets a
//! reader double-count the records mid-handoff. The checker must catch
//! it; if it ever stops doing so, the passing model above means nothing.
//!
//! Run with the vendored bounded checker (see TESTING.md):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test --test loom_lsm --release
//! ```
#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;

/// Records living in the memtable at the start; a seal moves all of them.
const TOTAL: u64 = 3;

/// One reader pass — the model analogue of pinning a snapshot and
/// scanning both tiers. Valid only if the writer provably did not
/// overlap (both epoch loads equal and even).
fn sample(epoch: &AtomicU64, sealed: &AtomicU64, mem: &AtomicU64) -> Option<(u64, u64)> {
    let e1 = epoch.load(Ordering::Acquire);
    let s = sealed.load(Ordering::Acquire);
    let m = mem.load(Ordering::Acquire);
    let e2 = epoch.load(Ordering::Acquire);
    (e1 == e2 && e1 % 2 == 0).then_some((s, m))
}

#[test]
fn seal_handoff_conserves_every_record() {
    loom::model(|| {
        let epoch = Arc::new(AtomicU64::new(0));
        let sealed = Arc::new(AtomicU64::new(0));
        let mem = Arc::new(AtomicU64::new(TOTAL));

        let writer = {
            let epoch = Arc::clone(&epoch);
            let sealed = Arc::clone(&sealed);
            let mem = Arc::clone(&mem);
            loom::thread::spawn(move || {
                // Prepare (LsmDb::prepare_seal under a read snapshot):
                // stage the segment from the memtable's records. Reads
                // only — concurrent readers are unaffected.
                let staged = mem.load(Ordering::Acquire);
                // Publish (Writer::apply(publish_seal)): enter the
                // critical section, swap both tier words, leave. The two
                // stores sit inside one lock hold, which is exactly what
                // keeps the conservation invariant readable.
                epoch.fetch_add(1, Ordering::Release);
                sealed.store(staged, Ordering::Release);
                mem.store(0, Ordering::Release);
                epoch.fetch_add(1, Ordering::Release);
            })
        };
        let reader = {
            let epoch = Arc::clone(&epoch);
            let sealed = Arc::clone(&sealed);
            let mem = Arc::clone(&mem);
            loom::thread::spawn(move || {
                for _ in 0..2 {
                    if let Some((s, m)) = sample(&epoch, &sealed, &mem) {
                        assert_eq!(
                            s + m,
                            TOTAL,
                            "snapshot sees {s} sealed + {m} memtable records: the seal \
                             handoff tore"
                        );
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        // Quiescent end state: everything sealed, nothing left behind.
        assert_eq!(sealed.load(Ordering::Acquire), TOTAL);
        assert_eq!(mem.load(Ordering::Acquire), 0);
        assert_eq!(epoch.load(Ordering::Acquire), 2);
    });
}

/// The buggy ordering — push the sealed segment into the tier list
/// during the prepare phase (outside the critical section) and only
/// clear the memtable inside it. A reader between the two observes the
/// records twice. The checker must find that schedule.
#[test]
fn early_segment_publish_is_caught_by_the_model() {
    let caught = std::panic::catch_unwind(|| {
        loom::model(|| {
            let epoch = Arc::new(AtomicU64::new(0));
            let sealed = Arc::new(AtomicU64::new(0));
            let mem = Arc::new(AtomicU64::new(TOTAL));

            let writer = {
                let epoch = Arc::clone(&epoch);
                let sealed = Arc::clone(&sealed);
                let mem = Arc::clone(&mem);
                loom::thread::spawn(move || {
                    let staged = mem.load(Ordering::Acquire);
                    // Bug: the swap's first half leaks out of the
                    // critical section.
                    sealed.store(staged, Ordering::Release);
                    epoch.fetch_add(1, Ordering::Release);
                    mem.store(0, Ordering::Release);
                    epoch.fetch_add(1, Ordering::Release);
                })
            };
            let reader = {
                let epoch = Arc::clone(&epoch);
                let sealed = Arc::clone(&sealed);
                let mem = Arc::clone(&mem);
                loom::thread::spawn(move || {
                    for _ in 0..2 {
                        if let Some((s, m)) = sample(&epoch, &sealed, &mem) {
                            assert_eq!(s + m, TOTAL, "torn seal handoff");
                        }
                    }
                })
            };
            writer.join().unwrap();
            reader.join().unwrap();
        });
    });
    assert!(
        caught.is_err(),
        "the model failed to catch the early-publish bug"
    );
}
