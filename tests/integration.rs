//! Whole-system integration tests: `IvaDb` lifecycle, persistence,
//! automatic cleanup, and agreement with the baselines on generated
//! workloads.

use iva_file::baselines::{DirectScan, SiiIndex};
use iva_file::workload::{generate_query_set, Dataset, WorkloadConfig};
use iva_file::{
    IvaDb, IvaDbOptions, MetricKind, PagerOptions, Query, SearchRequest, Tuple, Value, WeightScheme,
};
use iva_storage::{RealVfs, Vfs};

fn mem_db() -> IvaDb {
    IvaDb::create_mem(IvaDbOptions::default()).unwrap()
}

#[test]
fn crud_lifecycle() {
    let mut db = mem_db();
    let name = db.define_text("name").unwrap();
    let price = db.define_numeric("price").unwrap();

    let t1 = db
        .insert(
            &Tuple::new()
                .with(name, Value::text("alpha"))
                .with(price, Value::num(10.0)),
        )
        .unwrap();
    let t2 = db
        .insert(
            &Tuple::new()
                .with(name, Value::text("beta"))
                .with(price, Value::num(20.0)),
        )
        .unwrap();
    assert_eq!(db.len(), 2);

    // Read back.
    let got = db.get(t1).unwrap().unwrap();
    assert_eq!(got.get(name), Some(&Value::text("alpha")));

    // Update gives a fresh id (paper Sec. IV-B).
    let t3 = db
        .update(
            t2,
            &Tuple::new()
                .with(name, Value::text("beta v2"))
                .with(price, Value::num(21.0)),
        )
        .unwrap();
    assert_ne!(t2, t3);
    assert!(db.get(t2).unwrap().is_none());
    assert!(db.get(t3).unwrap().is_some());

    // Delete.
    assert!(db.delete(t1).unwrap());
    assert!(!db.delete(t1).unwrap());
    assert_eq!(db.len(), 1);

    // Search still exact.
    let hits = db
        .execute(&Query::new().text(name, "beta v2"), &SearchRequest::new(5))
        .unwrap()
        .hits;
    assert_eq!(hits[0].tid, t3);
    assert_eq!(hits[0].dist, 0.0);
}

#[test]
fn update_of_unknown_tuple_fails() {
    let mut db = mem_db();
    let name = db.define_text("name").unwrap();
    assert!(db
        .update(42, &Tuple::new().with(name, Value::text("x")))
        .is_err());
}

#[test]
fn auto_cleanup_triggers_at_beta() {
    let mut db = IvaDb::create_mem(IvaDbOptions {
        cleaning_threshold: 0.10,
        ..Default::default()
    })
    .unwrap();
    let name = db.define_text("name").unwrap();
    let mut tids = Vec::new();
    for i in 0..50 {
        tids.push(
            db.insert(&Tuple::new().with(name, Value::text(format!("item {i}"))))
                .unwrap(),
        );
    }
    // Delete 4 tuples: fraction 8% < β, no cleanup.
    for &t in &tids[..4] {
        db.delete(t).unwrap();
    }
    assert!(db.index().n_deleted() > 0);
    // The 5th deletion crosses 10%: rebuild fires and tombstones vanish.
    db.delete(tids[4]).unwrap();
    assert_eq!(db.index().n_deleted(), 0);
    assert_eq!(db.len(), 45);
    // Content preserved.
    let hits = db
        .execute(&Query::new().text(name, "item 30"), &SearchRequest::new(1))
        .unwrap()
        .hits;
    assert_eq!(hits[0].dist, 0.0);
}

#[test]
fn disk_persistence_full_cycle() {
    let dir = std::env::temp_dir().join(format!("iva-db-int-{}", std::process::id()));
    let _ = RealVfs.remove_dir_all(&dir);
    let name_attr;
    {
        let mut db = IvaDb::create(&dir, IvaDbOptions::default()).unwrap();
        name_attr = db.define_text("name").unwrap();
        let year = db.define_numeric("year").unwrap();
        for i in 0..100 {
            db.insert(
                &Tuple::new()
                    .with(name_attr, Value::text(format!("record number {i}")))
                    .with(year, Value::num(1990.0 + f64::from(i % 30))),
            )
            .unwrap();
        }
        db.delete(7).unwrap();
        db.flush().unwrap();
    }
    {
        let mut db = IvaDb::open(&dir, IvaDbOptions::default()).unwrap();
        assert_eq!(db.len(), 99);
        let hits = db
            .execute(
                &Query::new().text(name_attr, "record number 42"),
                &SearchRequest::new(1),
            )
            .unwrap()
            .hits;
        assert_eq!(hits[0].dist, 0.0);
        assert!(db.get(7).unwrap().is_none());
        // Mutate after reopen; rebuild on disk; reopen again.
        db.insert(&Tuple::new().with(name_attr, Value::text("post-reopen insert")))
            .unwrap();
        db.rebuild().unwrap();
        db.flush().unwrap();
        assert_eq!(db.len(), 100);
    }
    let db = IvaDb::open(&dir, IvaDbOptions::default()).unwrap();
    assert_eq!(db.len(), 100);
    let hits = db
        .execute(
            &Query::new().text(name_attr, "post-reopen insert"),
            &SearchRequest::new(1),
        )
        .unwrap()
        .hits;
    assert_eq!(hits[0].dist, 0.0);
    RealVfs.remove_dir_all(&dir).unwrap();
}

#[test]
fn generated_workload_agreement_with_baselines() {
    let cfg = WorkloadConfig::scaled(3_000);
    let dataset = Dataset::generate(&cfg);
    let opts = PagerOptions::default();
    let table = dataset
        .build_table(&opts, iva_file::IoStats::new())
        .unwrap();
    let index = iva_file::build_index(
        &table,
        iva_file::IndexTarget::Mem,
        &opts,
        iva_file::IoStats::new(),
        iva_file::IvaConfig::default(),
    )
    .unwrap();
    let sii = SiiIndex::build(&table, &opts, iva_file::IoStats::new(), 20.0).unwrap();
    let dst = DirectScan::new(20.0);

    let qs = generate_query_set(&dataset, 3, 15, 5, 1234);
    for q in qs.measured() {
        let a = index
            .query(&table, q, 10, &MetricKind::L2, WeightScheme::Equal)
            .unwrap();
        let b = sii
            .query(&table, q, 10, &MetricKind::L2, WeightScheme::Equal)
            .unwrap();
        let c = dst
            .query(&table, q, 10, &MetricKind::L2, WeightScheme::Equal)
            .unwrap();
        let da: Vec<f64> = a.results.iter().map(|e| e.dist).collect();
        let db_: Vec<f64> = b.results.iter().map(|e| e.dist).collect();
        let dc: Vec<f64> = c.results.iter().map(|e| e.dist).collect();
        for ((x, y), z) in da.iter().zip(&db_).zip(&dc) {
            assert!(
                (x - y).abs() < 1e-9 && (x - z).abs() < 1e-9,
                "{da:?} {db_:?} {dc:?}"
            );
        }
        // And the sampled query must have a strong match somewhere (its
        // values came from the data).
        assert!(!a.results.is_empty());
    }
}

#[test]
fn search_hits_materialize_matching_tuples() {
    let mut db = mem_db();
    let brand = db.define_text("brand").unwrap();
    for b in ["Canon", "Sony", "Nikon", "Cannon"] {
        db.insert(&Tuple::new().with(brand, Value::text(b)))
            .unwrap();
    }
    let hits = db
        .execute(&Query::new().text(brand, "Canon"), &SearchRequest::new(2))
        .unwrap()
        .hits;
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].tuple.get(brand), Some(&Value::text("Canon")));
    assert_eq!(hits[1].tuple.get(brand), Some(&Value::text("Cannon")));
}

#[test]
fn empty_database_searches_cleanly() {
    let mut db = mem_db();
    let a = db.define_text("a").unwrap();
    assert!(db.is_empty());
    let hits = db
        .execute(&Query::new().text(a, "nothing"), &SearchRequest::new(5))
        .unwrap()
        .hits;
    assert!(hits.is_empty());
}

#[test]
fn failed_update_rolls_back_to_old_tuple() {
    let mut db = mem_db();
    let name = db.define_text("name").unwrap();
    let price = db.define_numeric("price").unwrap();
    let tid = db
        .insert(
            &Tuple::new()
                .with(name, Value::text("keep me"))
                .with(price, Value::num(7.0)),
        )
        .unwrap();
    assert_eq!(db.len(), 1);

    // The replacement references an attribute that was never defined, so
    // the insert half of the delete+insert update fails. The old tuple
    // must survive (under a fresh id, as any update would assign).
    let bogus = Tuple::new().with(iva_file::AttrId(999), Value::text("x"));
    let err = db.update(tid, &bogus).unwrap_err();
    assert!(
        err.to_string().contains("unknown attribute"),
        "unexpected error: {err}"
    );

    assert_eq!(db.len(), 1, "old tuple lost by failed update");
    let hits = db
        .execute(&Query::new().text(name, "keep me"), &SearchRequest::new(1))
        .unwrap()
        .hits;
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].dist, 0.0);
    assert_eq!(hits[0].tuple.get(price), Some(&Value::num(7.0)));
}

#[test]
fn execute_metric_agrees_with_metric_override() {
    // `execute` with a request-level metric override must match
    // `execute_metric` with the same metric passed directly.
    let mut db = mem_db();
    let name = db.define_text("name").unwrap();
    for i in 0..20 {
        db.insert(&Tuple::new().with(name, Value::text(format!("gadget {i}"))))
            .unwrap();
    }
    let q = Query::new().text(name, "gadget 7");
    let req = SearchRequest::new(3)
        .metric(MetricKind::L2)
        .weights(WeightScheme::Equal);
    let via_execute = db.execute(&q, &req).unwrap().hits;

    let direct = db
        .execute_metric(
            &q,
            &MetricKind::L2,
            &SearchRequest::new(3).weights(WeightScheme::Equal),
        )
        .unwrap();

    assert_eq!(direct.hits.len(), via_execute.len());
    for (a, b) in direct.hits.iter().zip(&via_execute) {
        assert_eq!(a.tid, b.tid);
        assert_eq!(a.dist.to_bits(), b.dist.to_bits());
    }
    assert!(direct.stats.tuples_scanned > 0);
}
