//! Serial/parallel equivalence of the segmented filter scan, end to end
//! through the `SearchRequest` API: at any thread count the top-k results
//! must be **bit-identical** to the single-threaded scan and the filter
//! must admit exactly the same candidates (`table_accesses`).

use iva_file::workload::{generate_query_set, Dataset, WorkloadConfig};
use iva_file::{IvaDb, IvaDbOptions, MetricKind, SearchRequest, WeightScheme};
use proptest::prelude::*;

fn db_from_workload(n: usize) -> (IvaDb, Dataset) {
    let cfg = WorkloadConfig::scaled(n);
    let dataset = Dataset::generate(&cfg);
    let mut db = IvaDb::create_mem(IvaDbOptions::default()).unwrap();
    for (i, ty) in dataset.attr_types.iter().enumerate() {
        let name = format!("attr_{i}");
        match ty {
            iva_file::AttrType::Text => db.define_text(&name).unwrap(),
            iva_file::AttrType::Numeric => db.define_numeric(&name).unwrap(),
        };
    }
    for t in &dataset.tuples {
        db.insert(t).unwrap();
    }
    (db, dataset)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn parallel_topk_and_accesses_match_serial(seed in 0u64..10_000, k in 1usize..25) {
        let (db, dataset) = db_from_workload(700);
        let qs = generate_query_set(&dataset, 3, 10, 2, seed);
        for q in qs.measured() {
            for metric in [MetricKind::L1, MetricKind::L2, MetricKind::LInf] {
                let base = db
                    .execute_metric(
                        q,
                        &metric,
                        &SearchRequest::new(k).weights(WeightScheme::Itf).threads(1),
                    )
                    .unwrap();
                prop_assert_eq!(base.stats.speculative_accesses, 0);
                for threads in [2usize, 4, 8] {
                    let par = db
                        .execute_metric(
                            q,
                            &metric,
                            &SearchRequest::new(k)
                                .weights(WeightScheme::Itf)
                                .threads(threads),
                        )
                        .unwrap();
                    prop_assert_eq!(base.hits.len(), par.hits.len());
                    for (a, b) in base.hits.iter().zip(&par.hits) {
                        prop_assert_eq!(a.tid, b.tid);
                        prop_assert_eq!(a.dist.to_bits(), b.dist.to_bits());
                    }
                    prop_assert_eq!(
                        base.stats.table_accesses,
                        par.stats.table_accesses,
                        "threads={} metric={:?}",
                        threads,
                        metric
                    );
                    prop_assert_eq!(base.stats.tuples_scanned, par.stats.tuples_scanned);
                }
            }
        }
    }
}

#[test]
fn refine_batch_request_override_is_bit_identical() {
    let (db, dataset) = db_from_workload(600);
    let qs = generate_query_set(&dataset, 3, 10, 2, 42);
    for q in qs.measured() {
        let base = db
            .execute(q, &SearchRequest::new(15).threads(1).refine_batch(1))
            .unwrap();
        assert_eq!(base.stats.speculative_accesses, 0);
        for batch in [2usize, 16, 128] {
            for threads in [1usize, 4] {
                let got = db
                    .execute(
                        q,
                        &SearchRequest::new(15).threads(threads).refine_batch(batch),
                    )
                    .unwrap();
                assert_eq!(base.hits.len(), got.hits.len());
                for (a, b) in base.hits.iter().zip(&got.hits) {
                    assert_eq!((a.tid, a.dist.to_bits()), (b.tid, b.dist.to_bits()));
                }
                assert_eq!(
                    base.stats.table_accesses, got.stats.table_accesses,
                    "batch={batch} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn parallel_equivalence_survives_deletes() {
    let (mut db, dataset) = db_from_workload(500);
    // Tombstone a band of tuples without triggering the β rebuild.
    let qs = generate_query_set(&dataset, 2, 10, 2, 9);
    for tid in (0u64..500).step_by(51) {
        db.delete(tid).unwrap();
    }
    for q in qs.measured() {
        let base = db.execute(q, &SearchRequest::new(10).threads(1)).unwrap();
        for threads in [2usize, 4, 8] {
            let par = db
                .execute(q, &SearchRequest::new(10).threads(threads))
                .unwrap();
            assert_eq!(base.hits.len(), par.hits.len());
            for (a, b) in base.hits.iter().zip(&par.hits) {
                assert_eq!((a.tid, a.dist.to_bits()), (b.tid, b.dist.to_bits()));
            }
            assert_eq!(base.stats.table_accesses, par.stats.table_accesses);
        }
    }
}
