//! The serving layer's contract under real concurrency: N readers × one
//! writer never observe torn state, every snapshot answers bit-identical
//! to a serial replay against the same snapshot, and the admission-
//! batching server returns exactly what direct execution would.
//!
//! (The epoch publication *protocol* itself is additionally model-checked
//! under the bounded scheduler in `tests/loom_serve.rs`.)

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use iva_file::serve::{ServeOptions, Server, Writer};
use iva_file::workload::{generate_query_set, Dataset, WorkloadConfig};
use iva_file::{
    EngineOutcome, IvaDb, IvaDbOptions, IvaError, Query, Result, SearchRequest, ShardedIvaDb,
    Tuple, Value,
};

fn text_db(rows: usize) -> (Writer<IvaDb>, iva_file::AttrId) {
    let mut writer = Writer::new(IvaDb::create_mem(IvaDbOptions::default()).unwrap());
    let name = writer.define_text("name").unwrap();
    for i in 0..rows {
        writer
            .insert(&Tuple::new().with(name, Value::text(format!("item number {i:04}"))))
            .unwrap();
    }
    (writer, name)
}

/// The S3 property test: 4 readers hammer snapshots while the writer
/// churns inserts and deletes. Every snapshot must (a) hold a stable
/// epoch, (b) answer the parallel/batched plan bit-identically to a
/// serial replay of the same snapshot with honest table-access counts,
/// and (c) agree with every other snapshot of the same epoch.
#[test]
fn concurrent_readers_observe_consistent_epochs() {
    let (mut writer, name) = text_db(60);
    let reader = writer.reader();
    let done = AtomicBool::new(false);
    // epoch -> canonical (hit keys, table accesses) digest for that epoch.
    type Digest = (Vec<(u64, u64, u32)>, u64);
    let digests: Mutex<HashMap<u64, Digest>> = Mutex::new(HashMap::new());

    crossbeam::thread::scope(|scope| {
        for _ in 0..4 {
            let reader = reader.clone();
            let done = &done;
            let digests = &digests;
            scope.spawn(move |_| {
                let query = Query::new().text(name, "item number 0042");
                let mut last_epoch = 0u64;
                let mut rounds = 0u32;
                while !done.load(Ordering::Acquire) || rounds < 20 {
                    rounds += 1;
                    let snap = reader.snapshot();
                    let epoch = snap.epoch();
                    assert!(epoch >= last_epoch, "epoch went backwards on one reader");
                    last_epoch = epoch;

                    let fast = snap
                        .execute(&query, &SearchRequest::new(8).measured(true))
                        .unwrap();
                    // Serial replay of the *same snapshot*: single-threaded,
                    // unbatched. The plan knobs must not change the answer.
                    let serial = snap
                        .execute(
                            &query,
                            &SearchRequest::new(8)
                                .measured(true)
                                .threads(1)
                                .refine_batch(1),
                        )
                        .unwrap();
                    assert_eq!(
                        fast.hit_keys(),
                        serial.hit_keys(),
                        "snapshot answer differs from its serial replay"
                    );
                    assert_eq!(
                        fast.stats().table_accesses,
                        serial.stats().table_accesses,
                        "table-access accounting depends on the plan"
                    );
                    assert!(fast.stats().tuples_scanned > 0);
                    // The snapshot pins the engine: the epoch cannot have
                    // moved while we held it.
                    assert_eq!(snap.epoch(), epoch);

                    let digest = (fast.hit_keys(), fast.stats().table_accesses);
                    let mut map = digests.lock().unwrap();
                    if let Some(seen) = map.get(&epoch) {
                        assert_eq!(seen, &digest, "two snapshots of epoch {epoch} disagree");
                    } else {
                        map.insert(epoch, digest);
                    }
                }
            });
        }

        // The single writer churns: inserts with occasional deletes.
        let mut tids = Vec::new();
        for i in 60..220 {
            tids.push(
                writer
                    .insert(&Tuple::new().with(name, Value::text(format!("item number {i:04}"))))
                    .unwrap(),
            );
            if i % 5 == 0 {
                let tid = tids.remove(0);
                writer.delete(tid).unwrap();
            }
        }
        done.store(true, Ordering::Release);
    })
    .unwrap();

    assert!(
        writer.epoch() >= 160 + 32,
        "writer published too few epochs"
    );
    assert!(
        digests.lock().unwrap().len() > 1,
        "readers never caught more than one epoch"
    );
}

/// Answers through the admission-batching server are bit-identical to
/// direct execution against a snapshot — including the I/O accounting.
#[test]
fn served_answers_match_direct_execution() {
    let cfg = WorkloadConfig::scaled(1_500);
    let dataset = Dataset::generate(&cfg);
    let mut writer = Writer::new(IvaDb::create_mem(IvaDbOptions::default()).unwrap());
    for (i, ty) in dataset.attr_types.iter().enumerate() {
        let name = format!("attr_{i}");
        match ty {
            iva_file::AttrType::Text => writer.define_text(&name).unwrap(),
            iva_file::AttrType::Numeric => writer.define_numeric(&name).unwrap(),
        };
    }
    for t in &dataset.tuples {
        writer.insert(t).unwrap();
    }
    let reader = writer.reader();
    let queries: Vec<Query> = generate_query_set(&dataset, 3, 24, 0, 4242)
        .measured()
        .to_vec();
    assert!(queries.len() >= 16);

    let server = Server::start(
        reader.clone(),
        ServeOptions {
            workers: 2,
            max_batch: 8,
        },
    );
    let client = server.client();
    let request = SearchRequest::new(10).measured(true);

    // (query index, hit keys, table accesses) for one served answer.
    type ServedAnswer = (usize, Vec<(u64, u64, u32)>, u64);
    let answers: Mutex<Vec<ServedAnswer>> = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for chunk in queries.chunks(queries.len().div_ceil(6)) {
            let client = client.clone();
            let request = request.clone();
            let answers = &answers;
            let queries = &queries;
            scope.spawn(move |_| {
                for q in chunk {
                    let idx = queries.iter().position(|c| std::ptr::eq(c, q)).unwrap();
                    let out = client.search(q.clone(), request.clone()).unwrap();
                    answers
                        .lock()
                        .unwrap()
                        .push((idx, out.hit_keys(), out.stats().table_accesses));
                }
            });
        }
    })
    .unwrap();

    // No writer ran: every served answer came from the same (only) epoch
    // and must match a direct, single-caller execution exactly.
    let snap = reader.snapshot();
    for (idx, keys, accesses) in answers.lock().unwrap().iter() {
        let direct = snap.execute(&queries[*idx], &request).unwrap();
        assert_eq!(
            keys,
            &direct.hit_keys(),
            "served answer differs from direct execution for query {idx}"
        );
        assert_eq!(
            *accesses,
            direct.stats().table_accesses,
            "served I/O accounting differs for query {idx}"
        );
    }
    drop(snap);

    let stats = server.stats();
    assert_eq!(stats.submitted, queries.len() as u64);
    assert_eq!(stats.completed, queries.len() as u64);
    assert!(stats.batches >= 1 && stats.batches <= stats.completed);
    // Every answered request's filter phase touched vector lists, so the
    // compression-visibility counters must have accumulated.
    assert!(stats.list_bytes_logical > 0);
    assert!(stats.list_bytes_physical > 0);
    server.shutdown();
}

/// The serving layer works over the sharded engine unchanged.
#[test]
fn sharded_engine_serves_through_the_same_api() {
    let mut writer = Writer::new(ShardedIvaDb::create_mem(3, IvaDbOptions::default()).unwrap());
    let name = writer.define_text("name").unwrap();
    for i in 0..30 {
        writer
            .insert(&Tuple::new().with(name, Value::text(format!("gadget {i}"))))
            .unwrap();
    }
    let reader = writer.reader();
    let server = Server::start(reader.clone(), ServeOptions::default());
    let client = server.client();
    let query = Query::new().text(name, "gadget 7");
    let served = client.search(query.clone(), SearchRequest::new(3)).unwrap();
    let direct = reader.execute(&query, &SearchRequest::new(3)).unwrap();
    assert_eq!(served.hit_keys(), direct.hit_keys());
    assert_eq!(served.hits[0].dist, 0.0);
    server.shutdown();
}

/// Epochs advance on every publication — including mutations that fail
/// after possibly partial application.
#[test]
fn failed_mutations_still_publish() {
    let (mut writer, _) = text_db(5);
    let before = writer.epoch();
    let err = writer
        .apply(|_db| -> Result<()> { Err(IvaError::InvalidArgument("deliberate failure".into())) });
    assert!(err.is_err());
    assert_eq!(
        writer.epoch(),
        before + 1,
        "failed publication must still bump the epoch"
    );
}

/// `into_inner` refuses to tear down serving while read handles exist.
#[test]
fn into_inner_guarded_by_live_readers() {
    let (writer, _) = text_db(3);
    let reader = writer.reader();
    let writer = match writer.into_inner() {
        Ok(_) => panic!("teardown succeeded with a live reader"),
        Err(w) => w,
    };
    drop(reader);
    let db = match writer.into_inner() {
        Ok(db) => db,
        Err(_) => panic!("teardown failed with no readers left"),
    };
    assert_eq!(db.len(), 3);
}

/// A stopped server rejects new submissions instead of hanging them.
#[test]
fn stopped_server_rejects_submissions() {
    let (writer, name) = text_db(4);
    let server = Server::start(writer.reader(), ServeOptions::default());
    let client = server.client();
    let query = Query::new().text(name, "item number 0001");
    assert!(client.search(query.clone(), SearchRequest::new(1)).is_ok());
    server.shutdown();
    let err = client.search(query, SearchRequest::new(1)).unwrap_err();
    assert!(err.to_string().contains("stopped"), "got: {err}");
}
