//! Partitioned parallel search — the deployment sketched in the paper's
//! conclusion: "being a non-hierarchical index, the iVA-file is suitable
//! for indexing horizontally or vertically partitioned datasets in a
//! distributed and parallel system architecture".
//!
//! Splits a community dataset across four shards, runs every query on all
//! shards in parallel, and verifies the merged answers equal a
//! single-node database's — then compares latency.
//!
//! Run with: `cargo run --release --example partitioned_search`

use std::time::Instant;

use iva_file::workload::{generate_query_set, Dataset, WorkloadConfig};
use iva_file::{IvaDb, IvaDbOptions, SearchRequest, ShardedIvaDb};

fn main() -> iva_file::Result<()> {
    let cfg = WorkloadConfig::scaled(48_000);
    let dataset = Dataset::generate(&cfg);
    println!(
        "dataset: {} listings over {} attributes",
        cfg.n_tuples, cfg.n_attrs
    );

    let mut single = IvaDb::create_mem(IvaDbOptions::default())?;
    let mut sharded = ShardedIvaDb::create_mem(4, IvaDbOptions::default())?;
    for (i, ty) in dataset.attr_types.iter().enumerate() {
        let name = format!("attr_{i}");
        match ty {
            iva_file::AttrType::Text => {
                single.define_text(&name)?;
                sharded.define_text(&name)?;
            }
            iva_file::AttrType::Numeric => {
                single.define_numeric(&name)?;
                sharded.define_numeric(&name)?;
            }
        }
    }
    for t in &dataset.tuples {
        single.insert(t)?;
        sharded.insert(t)?;
    }
    println!(
        "loaded into 1 node and into {} shards\n",
        sharded.n_shards()
    );

    let qs = generate_query_set(&dataset, 3, 25, 5, 4242);
    let (mut t_single, mut t_sharded) = (0.0f64, 0.0f64);
    let mut agree = 0;
    for q in qs.measured() {
        let s0 = Instant::now();
        let a = single.execute(q, &SearchRequest::new(10))?.hits;
        t_single += s0.elapsed().as_secs_f64();

        let s1 = Instant::now();
        let b = sharded.execute(q, &SearchRequest::new(10))?.hits;
        t_sharded += s1.elapsed().as_secs_f64();

        let same = a.len() == b.len()
            && a.iter()
                .zip(&b)
                .all(|(x, y)| (x.dist - y.dist).abs() < 1e-9);
        agree += usize::from(same);
    }
    let n = qs.measured().len();
    println!("answers identical on {agree}/{n} queries");
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "mean latency: single node {:.1} ms, {} shards {:.1} ms (this host has {cores} core(s))",
        t_single / n as f64 * 1e3,
        sharded.n_shards(),
        t_sharded / n as f64 * 1e3,
    );
    if cores < sharded.n_shards() {
        println!(
            "note: shard fan-out only wins with >= {} cores (or one machine per shard);",
            sharded.n_shards()
        );
        println!("      the point demonstrated here is exactness under partitioning.");
    }
    assert_eq!(agree, n, "sharded results must be exact");
    Ok(())
}
