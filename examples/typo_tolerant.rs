//! Typo-tolerant search, inside and out.
//!
//! Demonstrates the machinery of Sec. III-B directly: nG-signatures, the
//! hit-gram estimator, its no-false-negative guarantee, and how the
//! relative vector length α trades index size against filtering power —
//! then shows the end-to-end effect on a noisy community dataset where 20%
//! of stored strings carry typos.
//!
//! Run with: `cargo run --release --example typo_tolerant`

use iva_file::text::{edit_distance, PreparedMatcher, SigCodec};
use iva_file::workload::{Dataset, WorkloadConfig};
use iva_file::{IvaDb, IvaDbOptions, SearchRequest};

fn main() -> iva_file::Result<()> {
    // --- Part 1: signatures up close (the paper's Examples 3.2/3.4). ---
    println!("== nG-signatures up close ==");
    let codec = SigCodec::new(0.2, 2);
    let data_strings = ["canon", "cannon", "sony", "digital camera", "digtal camera"];
    let query = "canon";
    let matcher = PreparedMatcher::new(&codec, query.as_bytes());
    println!("query string: {query:?}");
    for d in data_strings {
        let sig = codec.encode_to_vec(d.as_bytes());
        let est = matcher.estimate(&sig)?;
        let ed = edit_distance(query, d);
        println!(
            "  data {d:22} sig {:2} B   est {est:4.1} <= ed {ed}",
            sig.len()
        );
        assert!(est <= ed as f64, "no-false-negative guarantee violated");
    }

    // α controls signature width: longer signatures estimate tighter.
    println!("\n== α trade-off on 1000 unrelated string pairs ==");
    for alpha in [0.10, 0.20, 0.30] {
        let codec = SigCodec::new(alpha, 2);
        let mut total_est = 0.0;
        let mut bytes = 0usize;
        let m = PreparedMatcher::new(&codec, b"wide-angle zoom lens");
        for i in 0..1000 {
            let d = format!("unrelated product {i}");
            let sig = codec.encode_to_vec(d.as_bytes());
            bytes += sig.len();
            total_est += m.estimate(&sig)?;
        }
        println!(
            "  alpha {alpha:.2}: {:5} sig bytes, mean estimate {:.2} (higher = better pruning)",
            bytes,
            total_est / 1000.0
        );
    }

    // --- Part 2: end-to-end on a noisy dataset. ---
    println!("\n== end-to-end on a 20%-typo community dataset ==");
    let cfg = WorkloadConfig {
        typo_rate: 0.2,
        ..WorkloadConfig::scaled(4_000)
    };
    let dataset = Dataset::generate(&cfg);
    let mut db = IvaDb::create_mem(IvaDbOptions::default())?;
    for (i, ty) in dataset.attr_types.iter().enumerate() {
        match ty {
            iva_file::AttrType::Text => db.define_text(&format!("attr_{i}"))?,
            iva_file::AttrType::Numeric => db.define_numeric(&format!("attr_{i}"))?,
        };
    }
    for t in &dataset.tuples {
        db.insert(t)?;
    }

    // Search with a clean spelling; typo'd listings surface at distance 1-2.
    let some_string = dataset
        .tuples
        .iter()
        .find_map(|t| {
            t.iter().find_map(|(a, v)| match v {
                iva_file::Value::Text(ss) if ss[0].len() > 8 => Some((a, ss[0].clone())),
                _ => None,
            })
        })
        .expect("dataset has text values");
    let (attr, needle) = some_string;
    let attr_name = format!("attr_{}", attr.index());
    println!("searching {attr_name} for {needle:?}");
    let query = db
        .query_builder()
        .text(&attr_name, needle.clone())
        .build()?;
    let outcome = db.execute(&query, &SearchRequest::new(8))?;
    for hit in &outcome.hits {
        if let Some(iva_file::Value::Text(ss)) = hit.tuple.get(attr) {
            println!("  dist {:4.1}  {:?}", hit.dist, ss);
        }
    }
    println!(
        "filtering pruned {} of {} tuples without touching the table file",
        outcome.stats.tuples_scanned - outcome.stats.table_accesses,
        outcome.stats.tuples_scanned
    );
    let near: usize = outcome.hits.iter().filter(|h| h.dist <= 2.0).count();
    println!(
        "{near} of {} hits within edit distance 2 — typos tolerated.",
        outcome.hits.len()
    );
    Ok(())
}
