//! A living community catalog — the Google-Base scenario of Sec. I-A with
//! the full update lifecycle of Sec. IV-B.
//!
//! Community members continuously publish, revise and retract listings.
//! This example drives inserts, updates (delete + re-insert under a fresh
//! tuple id) and deletions against a live database, and shows the periodic
//! cleanup (β threshold) rebuilding the table file and the iVA-file when
//! enough tombstones accumulate.
//!
//! Run with: `cargo run --release --example community_catalog`

use iva_file::workload::{generate_query_set, Dataset, WorkloadConfig};
use iva_file::{IvaDb, IvaDbOptions, SearchRequest, Tuple, Value};

fn main() -> iva_file::Result<()> {
    let cfg = WorkloadConfig::scaled(5_000);
    let dataset = Dataset::generate(&cfg);
    println!(
        "community dataset: {} items, {} attributes, {:.1} defined/item, {:.1} B strings",
        cfg.n_tuples,
        cfg.n_attrs,
        dataset.mean_defined(),
        dataset.mean_string_len()
    );

    let mut db = IvaDb::create_mem(IvaDbOptions {
        cleaning_threshold: 0.05, // β = 5 %
        ..Default::default()
    })?;
    for (i, ty) in dataset.attr_types.iter().enumerate() {
        match ty {
            iva_file::AttrType::Text => db.define_text(&format!("attr_{i}"))?,
            iva_file::AttrType::Numeric => db.define_numeric(&format!("attr_{i}"))?,
        };
    }
    let mut live: Vec<u64> = Vec::new();
    for t in &dataset.tuples {
        live.push(db.insert(t)?);
    }
    println!(
        "inserted {} items; index {} KB",
        db.len(),
        db.index().size_bytes() / 1024
    );

    // A day in the life: members retract some listings, revise others, and
    // add new ones. Deterministic little LCG for the choreography.
    let mut state = 0xC0FFEEu64;
    let mut rnd = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    let mut deleted = 0u64;
    let mut updated = 0u64;
    for round in 0..6 {
        for _ in 0..80 {
            let pick = live[rnd(live.len() as u64) as usize];
            match rnd(3) {
                0 => {
                    if db.delete(pick)? {
                        deleted += 1;
                    }
                }
                1 => {
                    if db.get(pick)?.is_some() {
                        let new_tuple = Tuple::new()
                            .with(
                                iva_file::AttrId(0),
                                Value::text(format!("revised listing r{round}")),
                            )
                            .with(iva_file::AttrId(cfg.n_attrs as u32 - 1), Value::num(42.0));
                        let new_tid = db.update(pick, &new_tuple)?;
                        live.push(new_tid);
                        updated += 1;
                    }
                }
                _ => {
                    let t = &dataset.tuples[rnd(dataset.tuples.len() as u64) as usize];
                    live.push(db.insert(t)?);
                }
            }
        }
        println!(
            "round {round}: {} live items, deleted fraction {:.2} %",
            db.len(),
            db.index().deleted_fraction() * 100.0
        );
    }
    println!("\ntotals: {deleted} deletions, {updated} updates");
    println!(
        "tombstones now {:.2} % (β = 5 % rebuilds keep scans tight)",
        db.index().deleted_fraction() * 100.0
    );

    // Queries still return exact answers mid-churn.
    let qs = generate_query_set(&dataset, 3, 12, 2, 99);
    let mut answered = 0;
    for q in qs.measured() {
        let hits = db.execute(q, &SearchRequest::new(10))?.hits;
        answered += usize::from(!hits.is_empty());
    }
    println!(
        "ran {} post-churn queries, {answered} returned results",
        qs.measured().len()
    );
    Ok(())
}
