//! E-commerce catalog search — the CNET-style scenario of Sec. I-A.
//!
//! Builds a product catalog in the shape Chu et al. measured for CNET
//! (hundreds of attributes, ~11 defined per product), persists it to disk,
//! reopens it, and runs structured similarity searches under different
//! metrics and attribute weights, printing the filtering statistics that
//! make the iVA-file interesting.
//!
//! Run with: `cargo run --release --example ecommerce_search`

use iva_file::vfs::{RealVfs, Vfs};
use iva_file::workload::{Dataset, WorkloadConfig};
use iva_file::{IvaDb, IvaDbOptions, MetricKind, Query, SearchRequest, Tuple, Value, WeightScheme};

fn main() -> iva_file::Result<()> {
    let dir = std::env::temp_dir().join("iva-ecommerce-example");
    let _ = RealVfs.remove_dir_all(&dir);

    // A CNET-ish shape: sparse, wide, mostly text.
    let cfg = WorkloadConfig {
        n_tuples: 8_000,
        n_attrs: 120,
        mean_defined: 11.0,
        ..WorkloadConfig::scaled(8_000)
    };
    println!(
        "generating {} products over {} attributes...",
        cfg.n_tuples, cfg.n_attrs
    );
    let dataset = Dataset::generate(&cfg);

    let mut db = IvaDb::create(&dir, IvaDbOptions::default())?;
    // Register the generated catalog, then a few curated attributes we
    // will search on.
    for (i, ty) in dataset.attr_types.iter().enumerate() {
        match ty {
            iva_file::AttrType::Text => db.define_text(&format!("attr_{i}"))?,
            iva_file::AttrType::Numeric => db.define_numeric(&format!("attr_{i}"))?,
        };
    }
    let brand = db.define_text("brand")?;
    let category = db.define_text("category")?;
    let price = db.define_numeric("price")?;

    let brands = ["Canon", "Nikon", "Sony", "Panasonic", "Olympus"];
    let categories = ["digital camera", "camera lens", "tripod", "memory card"];
    for (i, tuple) in dataset.tuples.iter().enumerate() {
        let mut t = tuple.clone();
        // Only camera-shop listings (a third of the catalog) carry the
        // curated attributes — keeping them sparse keeps ITF informative.
        if i % 3 == 0 {
            t.set(brand, Value::text(brands[i % brands.len()]));
            t.set(category, Value::text(categories[i % categories.len()]));
            t.set(price, Value::num(49.0 + (i % 400) as f64 * 2.5));
        }
        db.insert(&t)?;
    }
    db.flush()?;
    drop(db);

    // Reopen from disk — the index file is used as-is, no rebuild.
    let db = IvaDb::open(&dir, IvaDbOptions::default())?;
    println!(
        "reopened: {} products, table {} KB, index {} KB\n",
        db.len(),
        db.table().file().size_bytes() / 1024,
        db.index().size_bytes() / 1024
    );

    let query = Query::new()
        .text(category, "digital camera")
        .text(brand, "Canon")
        .num(price, 250.0);

    for (metric_name, weights) in [
        ("L2 + equal weights", WeightScheme::Equal),
        ("L2 + ITF weights", WeightScheme::Itf),
    ] {
        let req = SearchRequest::new(5)
            .metric(MetricKind::L2)
            .weights(weights)
            .measured(true);
        let out = db.execute(&query, &req)?;
        let (hits, stats) = (out.hits, out.stats);
        println!("top-5 under {metric_name}:");
        for hit in &hits {
            let b = text_of(&hit.tuple, brand);
            let c = text_of(&hit.tuple, category);
            let p = num_of(&hit.tuple, price);
            println!(
                "    tid {:>5}  dist {:>7.2}  {b} / {c} / ${p:.0}",
                hit.tid, hit.dist
            );
        }
        println!(
            "    scanned {} tuples, fetched only {} from the table file ({:.1} %)\n",
            stats.tuples_scanned,
            stats.table_accesses,
            100.0 * stats.table_accesses as f64 / stats.tuples_scanned as f64
        );
    }

    let _ = RealVfs.remove_dir_all(&dir);
    Ok(())
}

fn text_of(t: &Tuple, attr: iva_file::AttrId) -> String {
    match t.get(attr) {
        Some(Value::Text(s)) => s[0].clone(),
        _ => "-".into(),
    }
}

fn num_of(t: &Tuple, attr: iva_file::AttrId) -> f64 {
    match t.get(attr) {
        Some(Value::Num(v)) => *v,
        _ => f64::NAN,
    }
}
