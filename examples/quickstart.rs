//! Quickstart: the 60-second tour of the iVA-file system.
//!
//! Recreates the paper's running example (Figs. 1 and 2): a community
//! system where users publish free-form product metadata into one sparse
//! wide table, then search it with typo-tolerant structured similarity
//! queries.
//!
//! Run with: `cargo run --release --example quickstart`

use iva_file::{IvaDb, IvaDbOptions, SearchRequest, Tuple, Value};

fn main() -> iva_file::Result<()> {
    let mut db = IvaDb::create_mem(IvaDbOptions::default())?;

    // Users define attributes freely, as in Google Base (Fig. 1).
    let ty = db.define_text("Type")?;
    let industry = db.define_text("Industry")?;
    let company = db.define_text("Company")?;
    let salary = db.define_numeric("Salary")?;
    let price = db.define_numeric("Price")?;
    let pixel = db.define_numeric("Pixel")?;
    let artist = db.define_text("Artist")?;
    let year = db.define_numeric("Year")?;

    // The three tuples of Fig. 1 — note the multi-string Industry value
    // and that every tuple leaves most attributes undefined.
    db.insert(
        &Tuple::new()
            .with(ty, Value::text("Job Position"))
            .with(industry, Value::texts(["Computer", "Software"]))
            .with(company, Value::text("Google"))
            .with(salary, Value::num(1_000.0)),
    )?;
    db.insert(
        &Tuple::new()
            .with(ty, Value::text("Digital Camera"))
            .with(price, Value::num(230.0))
            .with(company, Value::text("Canon"))
            .with(pixel, Value::num(10_000_000.0)),
    )?;
    db.insert(
        &Tuple::new()
            .with(ty, Value::text("Music Album"))
            .with(year, Value::num(1996.0))
            .with(price, Value::num(20.0))
            .with(artist, Value::text("Michael Jackson")),
    )?;
    // And Fig. 2's typo tuple: "Cannon" instead of "Canon".
    db.insert(
        &Tuple::new()
            .with(ty, Value::text("Digital Camera"))
            .with(price, Value::num(230.0))
            .with(company, Value::text("Cannon")),
    )?;

    // Fig. 2's query: a digital camera from Canon around 230 USD —
    // attributes addressed by name, resolved through the catalog.
    let query = db
        .query_builder()
        .text("Type", "Digital Camera")
        .text("Company", "Canon")
        .num("Price", 230.0)
        .build()?;

    println!("query: Type=\"Digital Camera\", Company=\"Canon\", Price=230\n");
    let outcome = db.execute(&query, &SearchRequest::new(3))?;
    for (rank, hit) in outcome.hits.iter().enumerate() {
        println!("#{rank}: tuple {} at distance {:.2}", hit.tid, hit.dist);
        for (attr, value) in hit.tuple.iter() {
            let name = &db.table().catalog().def(attr).unwrap().name;
            match value {
                Value::Text(strings) => println!("    {name}: {strings:?}"),
                Value::Num(v) => println!("    {name}: {v}"),
            }
        }
    }
    println!(
        "\nscanned {} tuples, fetched {} from the table file",
        outcome.stats.tuples_scanned, outcome.stats.table_accesses
    );

    // The exact-match camera ranks first; the "Cannon" typo listing is
    // still found, one edit behind — that is the typo tolerance the edit
    // distance metric buys.
    assert_eq!(outcome.hits[0].tid, 1);
    assert_eq!(outcome.hits[1].tid, 3);

    // Misspell an *attribute name* and the builder says so, by name:
    let err = db
        .query_builder()
        .text("Compny", "Canon")
        .build()
        .unwrap_err();
    println!("misspelled attribute: {err}");

    println!("\ntyped \"Canon\", still found \"Cannon\" — working as intended.");
    Ok(())
}
