//! `IvaDb`: the full system — a sparse wide table plus its iVA-file, with
//! the paper's periodic-cleanup policy (Sec. IV-B / V-C) wired in.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use iva_core::{
    build_index, BatchItem, IndexTarget, IvaConfig, IvaError, IvaIndex, Metric, MetricKind, Query,
    QueryOptions, QueryOutcome, QueryStats, Result, WeightScheme,
};
use iva_storage::vfs::{RealVfs, Vfs};
use iva_storage::{sidecar_path, IoStats, PagerOptions, StorageError};
use iva_swt::{AttrId, SwtTable, Tid, Tuple};

use crate::search::{QueryBuilder, SearchRequest};

/// Options for creating an [`IvaDb`].
///
/// # Persisted vs. per-request configuration
///
/// Three layers of knobs exist, from most to least durable:
///
/// 1. **Structural parameters** (`config.alpha`, `config.n`,
///    `config.ndf_penalty`, `config.numeric_width`) shape the index's
///    bytes. They are persisted in the index header; on
///    [`IvaDb::open`] the *stored* values win — the ones in `opts` are
///    only used if the index has to be rebuilt from the table.
/// 2. **Runtime defaults** (`config.search_threads`,
///    `config.refine_batch`, `config.hot_tier_bytes`, plus `metric` and
///    `weights` here) set the
///    database's default execution plan. They are *never* persisted:
///    an index header round-trip deliberately drops them, and open
///    re-applies the values from `opts` so a reopened database behaves
///    like the options say, not like the process that wrote the file.
/// 3. **Per-request overrides** ([`SearchRequest::metric`],
///    [`SearchRequest::threads`], [`SearchRequest::refine_batch`], ...)
///    apply to one `execute` call only. They never write through to
///    either layer above — a request can never change what a later
///    request or a reopened database does.
///
/// Every layer-2/3 knob is plan-only: any setting produces bit-identical
/// top-k answers, differing only in timing and speculative I/O.
#[derive(Debug, Clone)]
pub struct IvaDbOptions {
    /// Pager/page-cache options (shared shape for table and index files).
    pub pager: PagerOptions,
    /// Index configuration (α, n, ndf penalty...).
    pub config: IvaConfig,
    /// Cleaning trigger threshold β (Sec. V-C): when the fraction of
    /// deleted tuples reaches β, the table file and the iVA-file are
    /// rebuilt. Set to 1.0 to disable automatic cleaning.
    pub cleaning_threshold: f64,
    /// Default metric for [`IvaDb::execute`].
    pub metric: MetricKind,
    /// Default weight scheme for [`IvaDb::execute`].
    pub weights: WeightScheme,
}

impl Default for IvaDbOptions {
    fn default() -> Self {
        Self {
            pager: PagerOptions::default(),
            config: IvaConfig::default(),
            cleaning_threshold: 0.02,
            metric: MetricKind::L2,
            weights: WeightScheme::Equal,
        }
    }
}

/// One search answer with its tuple materialized.
#[derive(Debug, Clone)]
pub struct SearchHit {
    /// Tuple id.
    pub tid: Tid,
    /// Distance to the query (under the metric used).
    pub dist: f64,
    /// The matching tuple.
    pub tuple: Tuple,
}

/// Everything one search run produces: the ranked hits and the
/// measurement counters.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The top-k answers in ascending distance order.
    pub hits: Vec<SearchHit>,
    /// Measurement counters (timings zeroed for unmeasured requests).
    pub stats: QueryStats,
}

/// A complete community-data store: table + iVA-file + cleanup policy.
pub struct IvaDb {
    table: SwtTable,
    index: IvaIndex,
    vfs: Arc<dyn Vfs>,
    dir: Option<PathBuf>,
    opts: IvaDbOptions,
    table_io: IoStats,
    index_io: IoStats,
}

impl IvaDb {
    /// Create an in-memory database (tests, examples, experiments).
    pub fn create_mem(opts: IvaDbOptions) -> Result<Self> {
        let table_io = IoStats::new();
        let index_io = IoStats::new();
        let table = SwtTable::create_mem(&opts.pager, table_io.clone())?;
        let index = build_index(
            &table,
            IndexTarget::Mem,
            &opts.pager,
            index_io.clone(),
            opts.config,
        )?;
        Ok(Self {
            table,
            index,
            vfs: Arc::new(RealVfs),
            dir: None,
            opts,
            table_io,
            index_io,
        })
    }

    /// Create a disk-backed database inside directory `dir` (created if
    /// missing): `data.tbl` + `data.meta` + `index.iva`.
    pub fn create(dir: &Path, opts: IvaDbOptions) -> Result<Self> {
        Self::create_with_vfs(Arc::new(RealVfs), dir, opts)
    }

    /// [`IvaDb::create`] on an explicit [`Vfs`] (fault injection, crash
    /// replay).
    pub fn create_with_vfs(vfs: Arc<dyn Vfs>, dir: &Path, opts: IvaDbOptions) -> Result<Self> {
        vfs.create_dir_all(dir)
            .map_err(|e| IvaError::Storage(e.into()))?;
        let table_io = IoStats::new();
        let index_io = IoStats::new();
        let table = SwtTable::create_with_vfs(
            Arc::clone(&vfs),
            &dir.join("data"),
            &opts.pager,
            table_io.clone(),
        )?;
        let index = build_index(
            &table,
            IndexTarget::Vfs(Arc::clone(&vfs), &dir.join("index.iva")),
            &opts.pager,
            index_io.clone(),
            opts.config,
        )?;
        let mut db = Self {
            table,
            index,
            vfs,
            dir: Some(dir.to_path_buf()),
            opts,
            table_io,
            index_io,
        };
        db.flush()?; // make the directory openable immediately
        Ok(db)
    }

    /// Open an existing disk-backed database.
    pub fn open(dir: &Path, opts: IvaDbOptions) -> Result<Self> {
        Self::open_with_vfs(Arc::new(RealVfs), dir, opts)
    }

    /// [`IvaDb::open`] on an explicit [`Vfs`], with crash recovery.
    ///
    /// The table file recovers itself (its commit record rolls back any
    /// unflushed tail). The index is then validated against it: a dirty
    /// epoch flag (crash mid-update), a watermark that disagrees with the
    /// table's committed length (index and table flushed out of step), a
    /// corrupt page or a missing file all trigger a rebuild of the index
    /// from the recovered table — the iVA-file is derived data and can
    /// always be regenerated (Sec. IV-B's rebuild path).
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, dir: &Path, opts: IvaDbOptions) -> Result<Self> {
        let table_io = IoStats::new();
        let index_io = IoStats::new();
        let table = SwtTable::open_with_vfs(
            Arc::clone(&vfs),
            &dir.join("data"),
            &opts.pager,
            table_io.clone(),
        )?;
        let index = Self::open_or_rebuild_index(&vfs, dir, &table, &opts, index_io.clone())?;
        Ok(Self {
            table,
            index,
            vfs,
            dir: Some(dir.to_path_buf()),
            opts,
            table_io,
            index_io,
        })
    }

    fn open_or_rebuild_index(
        vfs: &Arc<dyn Vfs>,
        dir: &Path,
        table: &SwtTable,
        opts: &IvaDbOptions,
        io: IoStats,
    ) -> Result<IvaIndex> {
        let path = dir.join("index.iva");
        let reusable =
            match IvaIndex::open_with_vfs(Arc::clone(vfs), &path, &opts.pager, io.clone()) {
                Ok(index)
                    if !index.is_dirty() && index.table_watermark() == table.file().data_len() =>
                {
                    Some(index)
                }
                Ok(_) => None, // dirty or stale: fall through to the rebuild
                Err(e) if e.is_corruption() => None,
                Err(IvaError::Storage(StorageError::Io(e)))
                    if e.kind() == std::io::ErrorKind::NotFound =>
                {
                    None
                }
                Err(e) => return Err(e),
            };
        let mut index = match reusable {
            Some(index) => index,
            None => {
                // Rebuild to a temporary file, then swap it in atomically
                // so a crash mid-rebuild leaves the (still rebuildable)
                // old state.
                let tmp = dir.join("index.rebuild.iva");
                let mut index = build_index(
                    table,
                    IndexTarget::Vfs(Arc::clone(vfs), &tmp),
                    &opts.pager,
                    io.clone(),
                    opts.config,
                )?;
                index.flush()?;
                drop(index);
                vfs.rename(&tmp, &path)
                    .map_err(|e| IvaError::Storage(e.into()))?;
                IvaIndex::open_with_vfs(Arc::clone(vfs), &path, &opts.pager, io)?
            }
        };
        // The header persists only structural parameters; re-apply the
        // caller's execution knobs so a reopened database behaves like
        // the one that was closed (see "Persisted vs. per-request
        // configuration" on [`IvaDbOptions`]).
        index.set_runtime_knobs(
            opts.config.search_threads,
            opts.config.refine_batch,
            opts.config.hot_tier_bytes,
        );
        Ok(index)
    }

    /// Define (or look up) a text attribute.
    pub fn define_text(&mut self, name: &str) -> Result<AttrId> {
        Ok(self.table.define_text(name)?)
    }

    /// Define (or look up) a numerical attribute.
    pub fn define_numeric(&mut self, name: &str) -> Result<AttrId> {
        Ok(self.table.define_numeric(name)?)
    }

    /// Attribute id by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.table.catalog().id_of(name)
    }

    /// Insert a tuple; returns its tuple id.
    pub fn insert(&mut self, tuple: &Tuple) -> Result<Tid> {
        let (tid, ptr) = self.table.insert(tuple)?;
        self.index.insert(tid, ptr, tuple, self.table.catalog())?;
        Ok(tid)
    }

    /// Delete a tuple by id. Returns false if absent/already deleted.
    /// Triggers a rebuild when the deleted fraction reaches β.
    pub fn delete(&mut self, tid: Tid) -> Result<bool> {
        let Some(ptr) = self.index.lookup_ptr(tid)? else {
            return Ok(false);
        };
        self.table.delete(ptr)?;
        self.index.delete(tid)?;
        self.maybe_clean()?;
        Ok(true)
    }

    /// Update = delete + insert under a fresh tuple id (Sec. IV-B).
    /// Returns the new tuple id.
    ///
    /// If inserting `new_tuple` fails (say, it references an undefined
    /// attribute), the old tuple is reinserted — under a fresh id, like
    /// any update — so the data survives the failed attempt.
    pub fn update(&mut self, tid: Tid, new_tuple: &Tuple) -> Result<Tid> {
        let Some(ptr) = self.index.lookup_ptr(tid)? else {
            return Err(IvaError::InvalidArgument(format!(
                "update of unknown tuple {tid}"
            )));
        };
        let old = self.table.get(ptr)?.tuple;
        if !self.delete(tid)? {
            return Err(IvaError::InvalidArgument(format!(
                "update of unknown tuple {tid}"
            )));
        }
        match self.insert(new_tuple) {
            Ok(new_tid) => Ok(new_tid),
            Err(e) => {
                self.insert(&old)?;
                Err(e)
            }
        }
    }

    /// Fetch a live tuple by id.
    pub fn get(&self, tid: Tid) -> Result<Option<Tuple>> {
        match self.index.lookup_ptr(tid)? {
            Some(ptr) => Ok(Some(self.table.get(ptr)?.tuple)),
            None => Ok(None),
        }
    }

    /// Build a [`Query`] from attribute names resolved through this
    /// database's catalog:
    ///
    /// ```
    /// # use iva_file::{IvaDb, IvaDbOptions, SearchRequest};
    /// # let mut db = IvaDb::create_mem(IvaDbOptions::default()).unwrap();
    /// # db.define_text("Company").unwrap();
    /// # db.define_numeric("Price").unwrap();
    /// let query = db.query_builder().text("Company", "Canon").num("Price", 230.0).build()?;
    /// let outcome = db.execute(&query, &SearchRequest::new(5))?;
    /// # Ok::<(), iva_file::IvaError>(())
    /// ```
    ///
    /// Unknown or mistyped names surface as
    /// [`IvaError::InvalidArgument`] from `build()`.
    pub fn query_builder(&self) -> QueryBuilder<'_> {
        QueryBuilder::new(self.table.catalog())
    }

    /// Run one top-k search as described by `request` — the single entry
    /// point every other search method wraps.
    pub fn execute(&self, query: &Query, request: &SearchRequest) -> Result<SearchOutcome> {
        let metric = request.metric_override().unwrap_or(self.opts.metric);
        self.execute_metric(query, &metric, request)
    }

    /// [`IvaDb::execute`] under a caller-supplied [`Metric`]
    /// implementation (for metrics beyond [`MetricKind`]).
    pub fn execute_metric<M: Metric + Sync>(
        &self,
        query: &Query,
        metric: &M,
        request: &SearchRequest,
    ) -> Result<SearchOutcome> {
        let weights = request.weights_override().unwrap_or(self.opts.weights);
        let qopts = QueryOptions {
            threads: request.threads_override(),
            measured: request.is_measured(),
            refine_batch: request.refine_batch_override(),
        };
        let out =
            self.index
                .query_opts(&self.table, query, request.k(), metric, weights, &qopts)?;
        self.materialize(out)
    }

    /// Turn a raw index outcome into a [`SearchOutcome`] by fetching each
    /// hit's tuple from the table file.
    fn materialize(&self, out: QueryOutcome) -> Result<SearchOutcome> {
        let hits = out
            .results
            .into_iter()
            .map(|e| {
                Ok(SearchHit {
                    tid: e.tid,
                    dist: e.dist,
                    tuple: self.table.get(e.ptr)?.tuple,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(SearchOutcome {
            hits,
            stats: out.stats,
        })
    }

    /// Run several searches as one admission batch: the tuple list is
    /// scanned once for the whole batch and refinement fetches are pooled
    /// into shared page-coalesced rounds (see
    /// [`iva_core::IvaIndex::query_batch`]). Every entry's result is
    /// bit-identical to calling [`IvaDb::execute`] with the same query and
    /// request on its own.
    ///
    /// Requests may disagree on their knobs: entries are grouped by
    /// resolved metric (one shared scan per distinct metric), weights and
    /// `k` are honored per entry, and the scan-level knobs take the first
    /// explicit override in the group (`refine_batch`, `threads` — the
    /// latter only reaches a singleton group, since batching replaces
    /// segment parallelism) or any entry's `measured`.
    pub fn execute_batch(&self, batch: &[(Query, SearchRequest)]) -> Result<Vec<SearchOutcome>> {
        let mut out: Vec<Option<SearchOutcome>> = Vec::new();
        out.resize_with(batch.len(), || None);
        // Group by resolved metric, preserving submission order per group.
        // Each group keeps the entry reference next to its slot index so the
        // batch is never re-indexed.
        type Entry<'b> = (usize, &'b (Query, SearchRequest));
        let mut groups: Vec<(MetricKind, Vec<Entry<'_>>)> = Vec::new();
        for (i, entry) in batch.iter().enumerate() {
            let m = entry.1.metric_override().unwrap_or(self.opts.metric);
            match groups.iter_mut().find(|(g, _)| *g == m) {
                Some((_, idxs)) => idxs.push((i, entry)),
                None => groups.push((m, vec![(i, entry)])),
            }
        }
        for (metric, idxs) in groups {
            let items: Vec<BatchItem<'_>> = idxs
                .iter()
                .map(|(_, (q, r))| BatchItem {
                    query: q,
                    k: r.k(),
                    weights: r.weights_override().unwrap_or(self.opts.weights),
                })
                .collect();
            let qopts = QueryOptions {
                threads: idxs.iter().find_map(|(_, (_, r))| r.threads_override()),
                measured: idxs.iter().any(|(_, (_, r))| r.is_measured()),
                refine_batch: idxs
                    .iter()
                    .find_map(|(_, (_, r))| r.refine_batch_override()),
            };
            let outs = self
                .index
                .query_batch(&self.table, &items, &metric, &qopts)?;
            for (&(i, _), o) in idxs.iter().zip(outs) {
                if let Some(slot) = out.get_mut(i) {
                    *slot = Some(self.materialize(o)?);
                }
            }
        }
        out.into_iter()
            .map(|o| o.ok_or_else(|| IvaError::Corrupt("batch entry left unanswered".into())))
            .collect()
    }

    /// The metric used when a request carries no override.
    pub fn default_metric(&self) -> MetricKind {
        self.opts.metric
    }

    /// Rebuild if the deleted fraction reached β.
    pub fn maybe_clean(&mut self) -> Result<bool> {
        if self.index.deleted_fraction() >= self.opts.cleaning_threshold
            && self.index.n_deleted() > 0
        {
            self.rebuild()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// The periodic cleanup (Sec. IV-B): compact the table file (dropping
    /// tombstones, preserving tuple ids) and rebuild the iVA-file over it.
    pub fn rebuild(&mut self) -> Result<()> {
        let table_io = IoStats::new();
        let index_io = IoStats::new();
        match &self.dir {
            None => {
                let (fresh, _) =
                    self.table
                        .compact_into(None, &self.opts.pager, table_io.clone())?;
                let index = build_index(
                    &fresh,
                    IndexTarget::Mem,
                    &self.opts.pager,
                    index_io.clone(),
                    self.opts.config,
                )?;
                self.table = fresh;
                self.index = index;
            }
            Some(dir) => {
                let tmp_base = dir.join("data.rebuild");
                let tmp_index = dir.join("index.rebuild.iva");
                {
                    let (mut fresh, _) = self.table.compact_into(
                        Some(&tmp_base),
                        &self.opts.pager,
                        table_io.clone(),
                    )?;
                    fresh.flush()?;
                    let mut index = build_index(
                        &fresh,
                        IndexTarget::Vfs(Arc::clone(&self.vfs), &tmp_index),
                        &self.opts.pager,
                        index_io.clone(),
                        self.opts.config,
                    )?;
                    index.flush()?;
                }
                // Swap files into place, then reopen. The byte log's
                // commit-record sidecar (`data.tbl.meta`) must move with
                // its data file, or the old sidecar would describe the new
                // file.
                let rn = |a: PathBuf, b: PathBuf| {
                    self.vfs
                        .rename(&a, &b)
                        .map_err(|e| IvaError::Storage(e.into()))
                };
                let tmp_tbl = tmp_base.with_extension("tbl");
                let dst_tbl = dir.join("data.tbl");
                rn(sidecar_path(&tmp_tbl), sidecar_path(&dst_tbl))?;
                rn(tmp_tbl, dst_tbl)?;
                rn(tmp_base.with_extension("meta"), dir.join("data.meta"))?;
                rn(tmp_index, dir.join("index.iva"))?;
                self.table = SwtTable::open_with_vfs(
                    Arc::clone(&self.vfs),
                    &dir.join("data"),
                    &self.opts.pager,
                    table_io.clone(),
                )?;
                self.index = IvaIndex::open_with_vfs(
                    Arc::clone(&self.vfs),
                    &dir.join("index.iva"),
                    &self.opts.pager,
                    index_io.clone(),
                )?;
                // Reopening dropped the runtime knobs with the header
                // round-trip; restore this database's execution defaults.
                self.index.set_runtime_knobs(
                    self.opts.config.search_threads,
                    self.opts.config.refine_batch,
                    self.opts.config.hot_tier_bytes,
                );
            }
        }
        self.table_io = table_io;
        self.index_io = index_io;
        Ok(())
    }

    /// Live tuple count.
    pub fn len(&self) -> u64 {
        self.table.file().live_records()
    }

    /// True if no live tuples exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying table.
    pub fn table(&self) -> &SwtTable {
        &self.table
    }

    /// The underlying index.
    pub fn index(&self) -> &IvaIndex {
        &self.index
    }

    /// Table-file I/O counters.
    pub fn table_io(&self) -> &IoStats {
        &self.table_io
    }

    /// Index-file I/O counters.
    pub fn index_io(&self) -> &IoStats {
        &self.index_io
    }

    /// Persist both files: the table commits first, then the index commits
    /// stamped with the table's data length. A crash between the two
    /// leaves the index watermark behind the table, which open-time
    /// recovery detects and repairs by rebuilding the index.
    pub fn flush(&mut self) -> Result<()> {
        self.table.flush()?;
        self.index.commit(self.table.file().data_len())?;
        Ok(())
    }
}
