//! The unified search surface: [`SearchRequest`] describes *how* to run a
//! top-k search (k, metric, weights, measurement, parallelism) while
//! [`crate::Query`] describes *what* to search for. Every search entry
//! point on [`crate::IvaDb`] and [`crate::ShardedIvaDb`] funnels into one
//! `execute` implementation taking a request.
//!
//! [`QueryBuilder`] complements it on the *what* side: it builds a
//! [`crate::Query`] from attribute **names**, resolving them through the
//! catalog and reporting unknown or mistyped names as errors instead of
//! panicking or silently matching nothing.

use iva_core::{IvaError, MetricKind, Query, Result, WeightScheme};
use iva_swt::{AttrType, Catalog};

/// Execution options for one top-k search, builder style.
///
/// ```
/// use iva_file::{MetricKind, SearchRequest, WeightScheme};
///
/// let req = SearchRequest::new(10)
///     .metric(MetricKind::L1)
///     .weights(WeightScheme::Itf)
///     .threads(4)
///     .measured(true);
/// assert_eq!(req.k(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    k: usize,
    metric: Option<MetricKind>,
    weights: Option<WeightScheme>,
    threads: Option<usize>,
    measured: bool,
    refine_batch: Option<usize>,
}

impl SearchRequest {
    /// A request for the `k` nearest tuples under the database's default
    /// metric and weight scheme, measured, with the configured parallelism.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            metric: None,
            weights: None,
            threads: None,
            measured: true,
            refine_batch: None,
        }
    }

    /// Override the database's default metric.
    pub fn metric(mut self, metric: MetricKind) -> Self {
        self.metric = Some(metric);
        self
    }

    /// Override the database's default weight scheme.
    pub fn weights(mut self, weights: WeightScheme) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Override the configured filter-scan thread count
    /// ([`crate::IvaConfig::search_threads`]) for this request. Any count
    /// returns bit-identical results; `1` forces the single-threaded path.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Collect wall-clock phase timings (on by default). When off, no
    /// clock is read on the hot path and the timing stats stay 0; the
    /// counter stats are always collected.
    pub fn measured(mut self, measured: bool) -> Self {
        self.measured = measured;
        self
    }

    /// Override the configured refinement batch size
    /// ([`crate::IvaConfig::refine_batch`]) for this request. Admitted
    /// candidates are fetched from the table file in page-ordered,
    /// coalesced batches of up to `batch`; any size returns bit-identical
    /// results, and `1` (or `0`) fetches one candidate at a time.
    pub fn refine_batch(mut self, batch: usize) -> Self {
        self.refine_batch = Some(batch);
        self
    }

    /// Requested result count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Metric override, if any.
    pub fn metric_override(&self) -> Option<MetricKind> {
        self.metric
    }

    /// Weight-scheme override, if any.
    pub fn weights_override(&self) -> Option<WeightScheme> {
        self.weights
    }

    /// Thread-count override, if any.
    pub fn threads_override(&self) -> Option<usize> {
        self.threads
    }

    /// Whether phase timings are collected.
    pub fn is_measured(&self) -> bool {
        self.measured
    }

    /// Refinement-batch override, if any.
    pub fn refine_batch_override(&self) -> Option<usize> {
        self.refine_batch
    }
}

/// Builds a [`Query`] from attribute *names*, resolved through a catalog.
///
/// Created by [`crate::IvaDb::query_builder`] /
/// [`crate::ShardedIvaDb::query_builder`]. Name resolution errors (unknown
/// attribute, string value on a numerical attribute, number on a text
/// attribute) are reported by [`QueryBuilder::build`]; the first error
/// wins.
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    query: Query,
    err: Option<IvaError>,
}

impl<'a> QueryBuilder<'a> {
    pub(crate) fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            query: Query::new(),
            err: None,
        }
    }

    fn resolve(&mut self, name: &str, want: AttrType) -> Option<iva_swt::AttrId> {
        let Some(id) = self.catalog.id_of(name) else {
            if self.err.is_none() {
                self.err = Some(IvaError::InvalidArgument(format!(
                    "unknown attribute \"{name}\""
                )));
            }
            return None;
        };
        let ty = self
            .catalog
            .attr_type(id)
            .expect("catalog id without a definition");
        if ty != want {
            if self.err.is_none() {
                let (is, use_) = match ty {
                    AttrType::Text => ("a text", ".text()"),
                    AttrType::Numeric => ("a numerical", ".num()"),
                };
                self.err = Some(IvaError::InvalidArgument(format!(
                    "attribute \"{name}\" is {is} attribute; use {use_}"
                )));
            }
            return None;
        }
        Some(id)
    }

    /// Define a string value on the text attribute called `name`.
    pub fn text(mut self, name: &str, value: impl Into<String>) -> Self {
        if let Some(id) = self.resolve(name, AttrType::Text) {
            self.query = self.query.text(id, value);
        }
        self
    }

    /// Define a numerical value on the numerical attribute called `name`.
    pub fn num(mut self, name: &str, value: f64) -> Self {
        if let Some(id) = self.resolve(name, AttrType::Numeric) {
            self.query = self.query.num(id, value);
        }
        self
    }

    /// Finish, returning the query or the first name-resolution error.
    pub fn build(self) -> Result<Query> {
        match self.err {
            Some(e) => Err(e),
            None => Ok(self.query),
        }
    }
}
