//! `LsmDb`: the segmented (LSM-style) write path — an in-memory
//! [`Memtable`] in front of immutable sealed [`Segment`]s, merged by a
//! background compactor, all tracked by an atomically-committed manifest.
//!
//! ## Tiers
//!
//! Inserts land in the memtable: a fully in-memory table + iVA-file pair
//! indexing exactly like the monolithic engine (same quantisation — the
//! numeric codec domains are pinned store-wide, see [`DomainPin`]).
//! Sealing freezes the memtable's live records into an on-disk segment
//! with its own table file, catalog sidecar, index, and [`IoStats`];
//! compaction merges several segments into one. Deletes tombstone in
//! whichever tier holds the record — in place, through the same
//! Sec. IV-B protocol the monolithic file uses.
//!
//! ## Commit protocol
//!
//! Both seal and compaction run in two phases:
//!
//! 1. **Prepare** (`&self`) — stage the new segment's files under the
//!    next unallocated id. Nothing references them; readers are
//!    unaffected.
//! 2. **Publish** (`&mut self`) — swap the in-memory tier list and
//!    commit the manifest through the storage layer's atomic commit
//!    record. The manifest rename is the *only* commit point: a crash on
//!    either side of it leaves every segment fully merged or fully
//!    intact, with any half-staged files collected as orphans at the
//!    next open.
//!
//! A mutation is acknowledged by [`LsmDb::flush`] (which seals); a crash
//! loses at most unacknowledged operations — the acked-or-pending
//! contract shared with the monolithic engine's torture suite.
//!
//! ## Query equivalence
//!
//! A query scans the tiers oldest-first (segments in tid order, then the
//! memtable), threading one [`ScanCarry`] — the shared candidate pool
//! and counters — through every per-tier scan. Because the concatenated
//! tier scan visits live tuples in exactly the monolithic engine's scan
//! order with the same vector encodings, hits, distance bits, and
//! `table_accesses` are bit-identical to the single-file engine (see
//! DESIGN.md §14 for the argument and the one documented exception).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use iva_core::{
    collect_orphans, prepare_merge, remove_segment_files, write_segment, CompactionPlan, IvaConfig,
    IvaError, Memtable, Metric, MetricKind, Query, QueryOptions, QueryOutcome, Result, ScanCarry,
    Segment, WeightScheme,
};
use iva_storage::vfs::{MemVfs, RealVfs, Vfs};
use iva_storage::{
    read_manifest, write_manifest, DomainPin, IoStats, Manifest, PagerOptions, SegmentMeta,
};
use iva_swt::{AttrId, Catalog, SwtTable, Tid, Tuple, Value};

use crate::db::{SearchHit, SearchOutcome};
use crate::search::{QueryBuilder, SearchRequest};

/// Options for creating an [`LsmDb`].
///
/// The layering contract of [`crate::IvaDbOptions`] carries over
/// unchanged: structural parameters in `config` shape segment bytes and
/// are persisted per segment; runtime knobs (`metric`, `weights`,
/// threads/batching inside `config`) are never persisted; per-request
/// overrides win for one call. The two thresholds below only steer
/// *when* maintenance runs — any schedule yields bit-identical answers.
#[derive(Debug, Clone)]
pub struct LsmOptions {
    /// Pager/page-cache options (shared shape for every tier's files).
    pub pager: PagerOptions,
    /// Index configuration (α, n, ndf penalty...), applied to every
    /// tier's iVA-file.
    pub config: IvaConfig,
    /// Default metric for [`LsmDb::execute`].
    pub metric: MetricKind,
    /// Default weight scheme for [`LsmDb::execute`].
    pub weights: WeightScheme,
    /// Memtable record count (tombstones included) at which
    /// [`LsmDb::plan_maintenance`] proposes a seal. `0` disables the
    /// automatic trigger; [`LsmDb::seal`] always works.
    pub memtable_limit: u64,
    /// Sealed-segment count at which [`LsmDb::plan_maintenance`]
    /// proposes a full merge. `0` disables the automatic trigger;
    /// [`LsmDb::compact`] always works.
    pub compact_fanout: usize,
}

impl Default for LsmOptions {
    fn default() -> Self {
        Self {
            pager: PagerOptions::default(),
            config: IvaConfig::default(),
            metric: MetricKind::L2,
            weights: WeightScheme::Equal,
            memtable_limit: 4096,
            compact_fanout: 8,
        }
    }
}

/// A staged (prepared but unpublished) seal of the memtable.
#[derive(Debug, Clone)]
pub struct SealPlan {
    id: u64,
    range: Option<(Tid, Tid)>,
    next_tid: Tid,
    ops: u64,
}

/// A staged (prepared but unpublished) merge of sealed segments.
#[derive(Debug, Clone)]
pub struct MergePlan {
    inner: CompactionPlan,
    ops: u64,
}

/// One unit of staged maintenance work: what
/// [`LsmDb::plan_maintenance`] proposes and
/// [`LsmDb::publish_maintenance`] commits.
#[derive(Debug, Clone)]
pub enum MaintenancePlan {
    /// Seal the memtable into a fresh segment.
    Seal(SealPlan),
    /// Merge every sealed segment into one.
    Merge(MergePlan),
}

/// The segmented store: memtable + sealed segments + manifest.
pub struct LsmDb {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    opts: LsmOptions,
    /// Store-wide numeric codec domains, indexed by attribute. Pinned at
    /// the first inserted value of each numeric attribute (exactly the
    /// monolithic engine's degenerate first-value domain) and never
    /// widened, so every tier quantises every value identically.
    domains: Vec<DomainPin>,
    /// Sealed segments in ascending tid order (oldest first — scan order).
    segments: Vec<Segment>,
    memtable: Memtable,
    next_segment_id: u64,
    /// Mutation counter fencing prepare/publish pairs: a plan prepared
    /// at one count publishes only at the same count.
    ops: u64,
    manifest_io: IoStats,
    maintenance_io: IoStats,
    /// Catalog or domain pins changed since the last manifest write.
    meta_dirty: bool,
}

/// Path of the store's manifest inside `dir`.
fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.ivls")
}

impl LsmDb {
    /// Create an in-memory store (tests, examples, experiments). Sealed
    /// segments live on a private [`MemVfs`].
    pub fn create_mem(opts: LsmOptions) -> Result<Self> {
        Self::create_with_vfs(Arc::new(MemVfs::new()), Path::new("/lsm"), opts)
    }

    /// Create a disk-backed store inside directory `dir` (created if
    /// missing): a manifest plus `seg-NNNNNNNN.{tbl,meta,iva}` files as
    /// segments are sealed.
    pub fn create(dir: &Path, opts: LsmOptions) -> Result<Self> {
        Self::create_with_vfs(Arc::new(RealVfs), dir, opts)
    }

    /// [`LsmDb::create`] on an explicit [`Vfs`] (fault injection, crash
    /// replay).
    pub fn create_with_vfs(vfs: Arc<dyn Vfs>, dir: &Path, opts: LsmOptions) -> Result<Self> {
        vfs.create_dir_all(dir)
            .map_err(|e| IvaError::Storage(e.into()))?;
        let memtable = Memtable::new(&Catalog::new(), &opts.pager, opts.config, 0, &[])?;
        let mut db = Self {
            vfs,
            dir: dir.to_path_buf(),
            opts,
            domains: Vec::new(),
            segments: Vec::new(),
            memtable,
            next_segment_id: 0,
            ops: 0,
            manifest_io: IoStats::new(),
            maintenance_io: IoStats::new(),
            meta_dirty: false,
        };
        db.write_manifest()?; // make the directory openable immediately
        Ok(db)
    }

    /// Open an existing store.
    pub fn open(dir: &Path, opts: LsmOptions) -> Result<Self> {
        Self::open_with_vfs(Arc::new(RealVfs), dir, opts)
    }

    /// [`LsmDb::open`] on an explicit [`Vfs`], with crash recovery.
    ///
    /// The manifest's commit record picks the last committed tier set;
    /// any segment files it does not reference (a seal or compaction
    /// that crashed around its commit point) are collected as orphans.
    /// Each referenced segment then recovers exactly like the monolithic
    /// engine: reuse a clean index whose watermark matches its table,
    /// rebuild (on the store's pinned domains) otherwise. The memtable
    /// is volatile — recovery restarts it empty at the manifest's tid
    /// watermark.
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, dir: &Path, opts: LsmOptions) -> Result<Self> {
        let manifest_io = IoStats::new();
        let manifest = read_manifest(vfs.as_ref(), &manifest_path(dir), &manifest_io)?;
        let catalog = Catalog::decode(&manifest.catalog)?;
        collect_orphans(vfs.as_ref(), dir, &manifest)?;
        let mut segments = Vec::with_capacity(manifest.segments.len());
        for meta in &manifest.segments {
            segments.push(Segment::open(
                &vfs,
                dir,
                meta.id,
                meta.lo_tid,
                meta.hi_tid,
                &opts.pager,
                opts.config,
                &manifest.domains,
            )?);
        }
        let memtable = Memtable::new(
            &catalog,
            &opts.pager,
            opts.config,
            manifest.next_tid,
            &manifest.domains,
        )?;
        Ok(Self {
            vfs,
            dir: dir.to_path_buf(),
            opts,
            domains: manifest.domains,
            segments,
            memtable,
            next_segment_id: manifest.next_segment_id,
            ops: 0,
            manifest_io,
            maintenance_io: IoStats::new(),
            meta_dirty: false,
        })
    }

    fn catalog(&self) -> &Catalog {
        self.memtable.table().catalog()
    }

    fn write_manifest(&mut self) -> Result<()> {
        let m = Manifest {
            next_segment_id: self.next_segment_id,
            next_tid: self.memtable.base_tid(),
            segments: self
                .segments
                .iter()
                .map(|s| SegmentMeta {
                    id: s.id(),
                    lo_tid: s.lo_tid(),
                    hi_tid: s.hi_tid(),
                })
                .collect(),
            domains: self.domains.clone(),
            catalog: self.catalog().encode(),
        };
        write_manifest(
            self.vfs.as_ref(),
            &manifest_path(&self.dir),
            &m,
            &self.manifest_io,
        )?;
        self.meta_dirty = false;
        Ok(())
    }

    /// Define (or look up) a text attribute.
    pub fn define_text(&mut self, name: &str) -> Result<AttrId> {
        let id = self.memtable.define_text(name)?;
        self.sync_domains();
        Ok(id)
    }

    /// Define (or look up) a numerical attribute.
    pub fn define_numeric(&mut self, name: &str) -> Result<AttrId> {
        let id = self.memtable.define_numeric(name)?;
        self.sync_domains();
        Ok(id)
    }

    /// Attribute id by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.catalog().id_of(name)
    }

    fn sync_domains(&mut self) {
        if self.domains.len() < self.catalog().len() {
            self.domains
                .resize(self.catalog().len(), DomainPin::unpinned());
            self.ops += 1;
            self.meta_dirty = true;
        }
    }

    /// Pin the codec domain of any numeric attribute `tuple` defines for
    /// the first time store-wide. The memtable's index just fixed the
    /// degenerate first-value domain (the monolithic engine's rule);
    /// recording it makes every later tier quantise identically.
    fn observe_domains(&mut self, tuple: &Tuple) {
        for (attr, value) in tuple.iter() {
            if !matches!(value, Value::Num(_)) {
                continue;
            }
            let i = attr.index();
            if self.domains.get(i).is_some_and(|d| d.is_pinned()) {
                continue;
            }
            if let Some(e) = self.memtable.index().attr_entry(attr) {
                if e.min <= e.max {
                    self.domains[i] = DomainPin {
                        min: e.min,
                        max: e.max,
                    };
                    self.meta_dirty = true;
                }
            }
        }
    }

    /// Insert a tuple; returns its tuple id (globally unique across
    /// tiers). Volatile until the next [`LsmDb::flush`].
    pub fn insert(&mut self, tuple: &Tuple) -> Result<Tid> {
        let (tid, _ptr) = self.memtable.insert(tuple)?;
        self.observe_domains(tuple);
        self.ops += 1;
        Ok(tid)
    }

    /// Delete a tuple by id, tombstoning whichever tier holds it.
    /// Returns false if absent/already deleted.
    pub fn delete(&mut self, tid: Tid) -> Result<bool> {
        self.ops += 1;
        if self.memtable.delete(tid)? {
            return Ok(true);
        }
        for seg in &mut self.segments {
            if seg.covers(tid) {
                return seg.delete(tid);
            }
        }
        Ok(false)
    }

    /// Update = delete + insert under a fresh tuple id (Sec. IV-B).
    /// Returns the new tuple id.
    ///
    /// If inserting `new_tuple` fails, the old tuple is reinserted —
    /// under a fresh id, like any update — so the data survives the
    /// failed attempt.
    pub fn update(&mut self, tid: Tid, new_tuple: &Tuple) -> Result<Tid> {
        let Some(old) = self.get(tid)? else {
            return Err(IvaError::InvalidArgument(format!(
                "update of unknown tuple {tid}"
            )));
        };
        self.delete(tid)?;
        match self.insert(new_tuple) {
            Ok(new_tid) => Ok(new_tid),
            Err(e) => {
                self.insert(&old)?;
                Err(e)
            }
        }
    }

    /// Fetch a live tuple by id from whichever tier holds it.
    pub fn get(&self, tid: Tid) -> Result<Option<Tuple>> {
        if let Some(ptr) = self.memtable.lookup_ptr(tid)? {
            return Ok(Some(self.memtable.table().get(ptr)?.tuple));
        }
        for seg in &self.segments {
            if seg.covers(tid) {
                return seg.get(tid);
            }
        }
        Ok(None)
    }

    /// Live tuple count across every tier.
    pub fn len(&self) -> u64 {
        self.memtable.live_records() + self.segments.iter().map(Segment::live_records).sum::<u64>()
    }

    /// True if no live tuples exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sealed segments, oldest first (advanced/testing surface).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The mutable tier (advanced/testing surface).
    pub fn memtable(&self) -> &Memtable {
        &self.memtable
    }

    /// Manifest read/write accounting.
    pub fn manifest_io(&self) -> &IoStats {
        &self.manifest_io
    }

    /// Seal/compaction build accounting (staging I/O).
    pub fn maintenance_io(&self) -> &IoStats {
        &self.maintenance_io
    }

    /// Stage a seal of the current memtable (`&self` — readers keep
    /// going). Returns `None` when the memtable holds nothing to seal.
    pub fn prepare_seal(&self) -> Result<Option<SealPlan>> {
        if self.memtable.is_unused() {
            return Ok(None);
        }
        let id = self.next_segment_id;
        let range = write_segment(
            &self.vfs,
            &self.dir,
            id,
            &[self.memtable.table()],
            self.catalog(),
            &self.opts.pager,
            self.opts.config,
            &self.domains,
            self.maintenance_io.clone(),
            self.maintenance_io.clone(),
        )?;
        Ok(Some(SealPlan {
            id,
            range,
            next_tid: self.memtable.next_tid(),
            ops: self.ops,
        }))
    }

    /// Publish a staged seal: swap in the new segment (if any record
    /// survived), restart the memtable past the sealed tids, and commit
    /// the manifest — the seal's single atomic point.
    pub fn publish_seal(&mut self, plan: SealPlan) -> Result<()> {
        if plan.id != self.next_segment_id || plan.ops != self.ops {
            return Err(IvaError::InvalidArgument(
                "stale seal plan: mutations interleaved with the prepare phase".into(),
            ));
        }
        if let Some((lo, hi)) = plan.range {
            self.segments.push(Segment::open(
                &self.vfs,
                &self.dir,
                plan.id,
                lo,
                hi,
                &self.opts.pager,
                self.opts.config,
                &self.domains,
            )?);
        }
        self.next_segment_id = plan.id + 1;
        let catalog = self.catalog().clone();
        self.memtable = Memtable::new(
            &catalog,
            &self.opts.pager,
            self.opts.config,
            plan.next_tid,
            &self.domains,
        )?;
        self.write_manifest()
    }

    /// Seal the memtable into a fresh segment (prepare + publish in
    /// one). Returns whether anything was sealed.
    pub fn seal(&mut self) -> Result<bool> {
        match self.prepare_seal()? {
            Some(plan) => {
                self.publish_seal(plan)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Stage a merge of every sealed segment into one (`&self` —
    /// readers keep scanning the sources). Returns `None` with fewer
    /// than two segments.
    pub fn prepare_compact(&self) -> Result<Option<MergePlan>> {
        if self.segments.len() < 2 {
            return Ok(None);
        }
        let sources: Vec<&Segment> = self.segments.iter().collect();
        let inner = prepare_merge(
            &self.vfs,
            &self.dir,
            self.next_segment_id,
            &sources,
            self.catalog(),
            &self.opts.pager,
            self.opts.config,
            &self.domains,
            &self.maintenance_io,
        )?;
        Ok(Some(MergePlan {
            inner,
            ops: self.ops,
        }))
    }

    /// Publish a staged merge: swap the merged segment in for its
    /// sources, commit the manifest (the merge's single atomic point),
    /// then garbage-collect the source files.
    pub fn publish_compact(&mut self, plan: MergePlan) -> Result<()> {
        if plan.inner.new_id != self.next_segment_id || plan.ops != self.ops {
            return Err(IvaError::InvalidArgument(
                "stale merge plan: mutations interleaved with the prepare phase".into(),
            ));
        }
        let merged = match plan.inner.range {
            Some((lo, hi)) => Some(Segment::open(
                &self.vfs,
                &self.dir,
                plan.inner.new_id,
                lo,
                hi,
                &self.opts.pager,
                self.opts.config,
                &self.domains,
            )?),
            None => None,
        };
        self.segments
            .retain(|s| !plan.inner.source_ids.contains(&s.id()));
        if let Some(seg) = merged {
            self.segments.push(seg);
            self.segments.sort_by_key(Segment::lo_tid);
        }
        self.next_segment_id = plan.inner.new_id + 1;
        self.write_manifest()?;
        for &sid in &plan.inner.source_ids {
            remove_segment_files(self.vfs.as_ref(), &self.dir, sid)?;
        }
        Ok(())
    }

    /// Merge every sealed segment into one (prepare + publish in one).
    /// Returns whether a merge ran.
    pub fn compact(&mut self) -> Result<bool> {
        match self.prepare_compact()? {
            Some(plan) => {
                self.publish_compact(plan)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Propose the next unit of maintenance under the configured
    /// thresholds: a seal once the memtable reaches
    /// [`LsmOptions::memtable_limit`] records, else a merge once the
    /// store reaches [`LsmOptions::compact_fanout`] segments. `&self` —
    /// this is the expensive staging half, safe under concurrent reads.
    pub fn plan_maintenance(&self) -> Result<Option<MaintenancePlan>> {
        if self.opts.memtable_limit > 0 && self.memtable.total_records() >= self.opts.memtable_limit
        {
            if let Some(plan) = self.prepare_seal()? {
                return Ok(Some(MaintenancePlan::Seal(plan)));
            }
        }
        if self.opts.compact_fanout > 0 && self.segments.len() >= self.opts.compact_fanout {
            if let Some(plan) = self.prepare_compact()? {
                return Ok(Some(MaintenancePlan::Merge(plan)));
            }
        }
        Ok(None)
    }

    /// Commit a staged maintenance plan (`&mut self` — the cheap swap).
    /// Returns whether the plan published (an interleaved mutation makes
    /// it stale, which surfaces as an error).
    pub fn publish_maintenance(&mut self, plan: MaintenancePlan) -> Result<bool> {
        match plan {
            MaintenancePlan::Seal(p) => self.publish_seal(p)?,
            MaintenancePlan::Merge(p) => self.publish_compact(p)?,
        }
        Ok(true)
    }

    /// Run one round of threshold-driven maintenance synchronously.
    /// Returns whether any work ran.
    pub fn maintain(&mut self) -> Result<bool> {
        match self.plan_maintenance()? {
            Some(plan) => self.publish_maintenance(plan),
            None => Ok(false),
        }
    }

    /// Persist everything durably — the acknowledgement point. Dirty
    /// segments commit their in-place tombstones; the memtable (if used)
    /// seals into a segment; metadata-only changes (new attributes,
    /// freshly pinned domains) rewrite the manifest.
    pub fn flush(&mut self) -> Result<()> {
        for seg in &mut self.segments {
            if seg.is_dirty() {
                seg.flush()?;
            }
        }
        if !self.seal()? && self.meta_dirty {
            self.write_manifest()?;
        }
        Ok(())
    }

    /// Build a [`Query`] from attribute names resolved through this
    /// store's catalog.
    pub fn query_builder(&self) -> QueryBuilder<'_> {
        QueryBuilder::new(self.catalog())
    }

    /// Resolve the weight `λ` of each query attribute under `scheme`,
    /// aggregated across every tier: `|T|` is the store's live tuple
    /// count and `|T|_A` sums the attribute's document frequency over
    /// all tiers, so λ is one global vector — every tier scan lower-
    /// bounds the same weighted metric (a per-tier λ would break the
    /// carried pool's admission bound).
    pub fn resolve_weights(&self, query: &Query, scheme: WeightScheme) -> Vec<f64> {
        let mut total = self.memtable.index().n_tuples() - self.memtable.index().n_deleted();
        for seg in &self.segments {
            total += seg.index().n_tuples() - seg.index().n_deleted();
        }
        query
            .iter()
            .map(|(attr, _)| {
                let mut df = self.memtable.index().attr_entry(attr).map_or(0, |e| e.df);
                for seg in &self.segments {
                    df += seg.index().attr_entry(attr).map_or(0, |e| e.df);
                }
                scheme.weight(total, df)
            })
            .collect()
    }

    /// Run one top-k search as described by `request` — the single entry
    /// point every other search method wraps.
    pub fn execute(&self, query: &Query, request: &SearchRequest) -> Result<SearchOutcome> {
        let metric = request.metric_override().unwrap_or(self.opts.metric);
        self.execute_metric(query, &metric, request)
    }

    /// [`LsmDb::execute`] under a caller-supplied [`Metric`]
    /// implementation.
    pub fn execute_metric<M: Metric + Sync>(
        &self,
        query: &Query,
        metric: &M,
        request: &SearchRequest,
    ) -> Result<SearchOutcome> {
        let scheme = request.weights_override().unwrap_or(self.opts.weights);
        let lambda = self.resolve_weights(query, scheme);
        let qopts = QueryOptions {
            threads: request.threads_override(),
            measured: request.is_measured(),
            refine_batch: request.refine_batch_override(),
        };
        let mut carry = ScanCarry::new(request.k());
        for seg in &self.segments {
            seg.index().query_carry_opts(
                seg.table(),
                query,
                metric,
                &lambda,
                &qopts,
                &mut carry,
            )?;
        }
        self.memtable.index().query_carry_opts(
            self.memtable.table(),
            query,
            metric,
            &lambda,
            &qopts,
            &mut carry,
        )?;
        self.materialize(carry.finish())
    }

    /// The table holding live tuple `tid` (tiers cover disjoint tid
    /// ranges, so the covering tier is the holding tier).
    fn tier_table(&self, tid: Tid) -> &SwtTable {
        for seg in &self.segments {
            if seg.covers(tid) {
                return seg.table();
            }
        }
        self.memtable.table()
    }

    /// Turn a raw carried outcome into a [`SearchOutcome`] by fetching
    /// each hit's tuple from the tier that holds it.
    fn materialize(&self, out: QueryOutcome) -> Result<SearchOutcome> {
        let hits = out
            .results
            .into_iter()
            .map(|e| {
                Ok(SearchHit {
                    tid: e.tid,
                    dist: e.dist,
                    tuple: self.tier_table(e.tid).get(e.ptr)?.tuple,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(SearchOutcome {
            hits,
            stats: out.stats,
        })
    }

    /// The metric used when a request carries no override.
    pub fn default_metric(&self) -> MetricKind {
        self.opts.metric
    }

    /// Cross-tier sequential plan (Sec. V-A's ordered-refinement
    /// baseline): the same carried scan, driven through each tier's
    /// [`iva_core::IvaIndex::query_sequential_plan`] stage. Hits are
    /// bit-identical
    /// to the monolithic sequential plan; `table_accesses` may differ,
    /// since leftover-round ordering is per tier (DESIGN.md §14).
    pub fn execute_sequential_plan(
        &self,
        query: &Query,
        request: &SearchRequest,
    ) -> Result<SearchOutcome> {
        let metric = request.metric_override().unwrap_or(self.opts.metric);
        let scheme = request.weights_override().unwrap_or(self.opts.weights);
        let lambda = self.resolve_weights(query, scheme);
        let mut carry = ScanCarry::new(request.k());
        for seg in &self.segments {
            seg.index().query_carry_sequential_plan(
                seg.table(),
                query,
                &metric,
                &lambda,
                &mut carry,
            )?;
        }
        self.memtable.index().query_carry_sequential_plan(
            self.memtable.table(),
            query,
            &metric,
            &lambda,
            &mut carry,
        )?;
        self.materialize(carry.finish())
    }
}
