//! lint:scope(no-panic-decode)
//! The single-writer / multi-reader serving layer.
//!
//! An engine ([`crate::IvaDb`] or [`crate::ShardedIvaDb`]) enters serving
//! through [`Writer::new`], which wraps it in a shared cell. From there:
//!
//! * **One [`Writer`]** owns every mutation. Each mutator (or a
//!   multi-operation [`Writer::apply`]) takes the exclusive side of the
//!   lock, mutates, bumps the epoch counter *while still holding the
//!   lock*, and releases — publishing a new immutable snapshot.
//! * **Any number of [`Reader`]s** (cheap `Arc` clones) pin snapshots:
//!   [`Reader::snapshot`] takes the shared side of the lock, so the state
//!   a [`Snapshot`] dereferences to cannot change while it is held, and
//!   its [`Snapshot::epoch`] uniquely identifies that state — two
//!   snapshots with equal epochs saw bit-identical data.
//! * **A [`Server`]** (optional) adds admission batching on top: worker
//!   threads drain a queue of submitted requests and execute each drained
//!   group as one [`crate::Engine::execute_batch`] call against a single
//!   snapshot, so concurrent queries share the filter scan and the
//!   refinement fetch rounds. Batching never changes results — every
//!   response is bit-identical to executing that request alone against
//!   the same snapshot (see `iva_core::multi`).
//!
//! ## What the epoch contract guarantees (and doesn't)
//!
//! The epoch is bumped inside the write critical section, so a reader can
//! never observe new data under an old epoch or old data under a new one.
//! It advances on every write-lock release — including mutations that
//! returned an error after partially applying — so an epoch says "the
//! state may have changed", not "a mutation succeeded". Epochs order
//! snapshots; they do not name durable states (call
//! [`Writer::flush`] for durability). Readers holding a [`Snapshot`]
//! block the writer: this is snapshot *consistency* via a reader-writer
//! lock, not MVCC — hold snapshots for the duration of a query, not for
//! the lifetime of a connection.

use std::collections::VecDeque;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;

use iva_core::{IvaError, Query, Result};
use iva_swt::{AttrId, Tuple};

use crate::engine::{Engine, EngineOutcome, EngineWriter};
use crate::search::SearchRequest;

/// The shared cell behind one writer and its readers.
struct Shared<E> {
    engine: RwLock<E>,
    /// Publication counter. Bumped with `Release` ordering inside the
    /// write critical section; read with `Acquire` under the read guard.
    epoch: AtomicU64,
}

/// The single mutating handle over a served engine.
///
/// `Writer` is deliberately not `Clone` — the type system enforces the
/// single-writer half of the contract the same way `&mut self` did on the
/// bare engine, while [`Writer::reader`] hands out as many read handles
/// as the deployment wants.
pub struct Writer<E: EngineWriter> {
    shared: Arc<Shared<E>>,
}

impl<E: EngineWriter> Writer<E> {
    /// Move `engine` into a shared cell and return its writer.
    pub fn new(engine: E) -> Self {
        Self {
            shared: Arc::new(Shared {
                engine: RwLock::new(engine),
                epoch: AtomicU64::new(0),
            }),
        }
    }

    /// A new read handle onto the same engine. Cheap; clone freely across
    /// threads.
    pub fn reader(&self) -> Reader<E> {
        Reader {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Run one publication: exclusive access to the engine for the
    /// duration of `f`, then an epoch bump *before* the lock releases, so
    /// every operation inside `f` lands in a single snapshot transition.
    /// This is the escape hatch to engine-specific mutators the
    /// [`EngineWriter`] trait doesn't carry (`update`, `rebuild`, …):
    ///
    /// ```
    /// # use iva_file::{IvaDb, IvaDbOptions};
    /// # use iva_file::serve::Writer;
    /// # let mut w = Writer::new(IvaDb::create_mem(IvaDbOptions::default()).unwrap());
    /// w.apply(|db| db.rebuild()).unwrap();
    /// ```
    pub fn apply<T>(&mut self, f: impl FnOnce(&mut E) -> Result<T>) -> Result<T> {
        let mut guard = self
            .shared
            .engine
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        // lint:allow(panic-reachability, "dynamic edge: the caller-supplied mutation closure is application code outside the decode paths this lint guards")
        let out = f(&mut guard);
        // Bump while still holding the write lock: a reader acquiring the
        // read lock afterwards sees the new state *and* the new epoch;
        // no interleaving can pair them crosswise. Errors bump too — a
        // failed mutation may have partially applied.
        self.shared.epoch.fetch_add(1, Ordering::Release);
        drop(guard);
        out
    }

    /// Read-only access through the writer itself (the writer can always
    /// observe its own latest publication).
    pub fn snapshot(&self) -> Snapshot<'_, E> {
        read_snapshot(&self.shared)
    }

    /// Epochs published so far.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Define (or look up) a text attribute. Publishes.
    pub fn define_text(&mut self, name: &str) -> Result<AttrId> {
        self.apply(|e| e.define_text(name))
    }

    /// Define (or look up) a numerical attribute. Publishes.
    pub fn define_numeric(&mut self, name: &str) -> Result<AttrId> {
        self.apply(|e| e.define_numeric(name))
    }

    /// Insert a tuple. Publishes.
    pub fn insert(&mut self, tuple: &Tuple) -> Result<E::Id> {
        self.apply(|e| e.insert(tuple))
    }

    /// Delete a tuple by handle. Publishes.
    pub fn delete(&mut self, id: E::Id) -> Result<bool> {
        self.apply(|e| e.delete(id))
    }

    /// Persist the engine durably. Publishes (durability changed, even
    /// though query-visible state did not).
    pub fn flush(&mut self) -> Result<()> {
        self.apply(|e| e.flush())
    }

    /// Run one round of background maintenance (a seal or a compaction)
    /// without stalling readers: the expensive staging half runs under a
    /// *read* snapshot — concurrent searches proceed throughout — and
    /// the write lock is taken only for the publish half, whose critical
    /// section is a tier-list swap plus one manifest commit. Returns
    /// whether any work ran. Publishes when it does.
    ///
    /// This is the serving-layer fix for the naive
    /// `writer.apply(|db| db.seal())` route, which holds the exclusive
    /// lock across an entire segment build. The single-writer discipline
    /// (`&mut self` here) guarantees no mutation interleaves between the
    /// two halves, so the staged plan can never go stale.
    pub fn maintain(&mut self) -> Result<bool>
    where
        E: crate::engine::MaintainEngine,
    {
        let plan = {
            let snap = self.snapshot();
            snap.plan_maintenance()?
        };
        match plan {
            Some(plan) => self.apply(|e| e.publish_maintenance(plan)),
            None => Ok(false),
        }
    }

    /// Tear down serving and take the engine back. Fails (returning the
    /// intact writer) while any [`Reader`], [`Snapshot`] or [`Server`] is
    /// still alive.
    pub fn into_inner(self) -> std::result::Result<E, Self> {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => Ok(shared
                .engine
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)),
            Err(shared) => Err(Self { shared }),
        }
    }
}

/// A cheap, cloneable read handle. See [`Reader::snapshot`].
pub struct Reader<E: Engine> {
    shared: Arc<Shared<E>>,
}

impl<E: Engine> Clone for Reader<E> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

fn read_snapshot<E>(shared: &Shared<E>) -> Snapshot<'_, E> {
    let guard = shared.engine.read().unwrap_or_else(PoisonError::into_inner);
    // The write side bumps before releasing, so under the read guard the
    // loaded epoch is exactly the one that published the guarded state.
    let epoch = shared.epoch.load(Ordering::Acquire);
    Snapshot { guard, epoch }
}

impl<E: Engine> Reader<E> {
    /// Pin the current publication. The returned [`Snapshot`] derefs to
    /// the engine; the writer is excluded until it drops.
    pub fn snapshot(&self) -> Snapshot<'_, E> {
        read_snapshot(&self.shared)
    }

    /// Convenience: pin a snapshot, run one search, release.
    pub fn execute(&self, query: &Query, request: &SearchRequest) -> Result<E::Outcome> {
        self.snapshot().execute(query, request)
    }

    /// The epoch a snapshot taken now would see (advisory — a writer may
    /// publish between this load and a later [`Reader::snapshot`]).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }
}

/// A pinned publication: shared access to the engine state of one epoch.
///
/// Derefs to the engine, so the whole read API is available:
/// `snap.query_builder()`, `snap.execute(…)`, `snap.execute_batch(…)`,
/// `snap.len()`. Holding a snapshot blocks the writer — keep it scoped to
/// one query or one batch.
pub struct Snapshot<'a, E> {
    guard: RwLockReadGuard<'a, E>,
    epoch: u64,
}

impl<E> Snapshot<'_, E> {
    /// The publication this snapshot pinned. Two snapshots with equal
    /// epochs dereference to bit-identical engine state.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<E> Deref for Snapshot<'_, E> {
    type Target = E;
    fn deref(&self) -> &E {
        &self.guard
    }
}

/// Tuning for [`Server::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads draining the admission queue. Each worker executes
    /// one batch at a time against its own pinned snapshot.
    pub workers: usize,
    /// Most requests coalesced into one shared-scan batch. `1` disables
    /// coalescing (the queue then only provides thread hand-off).
    pub max_batch: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 16,
        }
    }
}

/// Admission-queue counters (monotone; read with [`Server::stats`] or
/// [`Client::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Requests submitted through [`Client::search`].
    pub submitted: u64,
    /// Batches executed (each against one snapshot).
    pub batches: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests that shared a batch with at least one other request —
    /// the admission queue's coalescing win.
    pub coalesced: u64,
    /// Query attributes whose filter phase ran from the in-memory hot
    /// tier, summed over every answered request.
    pub hot_tier_attrs: u64,
    /// Query attributes whose filter phase went to the durable iVA-file.
    pub cold_tier_attrs: u64,
    /// Bytes the filter phases swept in RAM (hot-tier columns).
    pub hot_tier_bytes_scanned: u64,
    /// Bytes the filter phases pulled through the pager (cold lists).
    pub cold_tier_bytes_scanned: u64,
    /// Logical (raw-layout-equivalent) bytes of the vector lists behind
    /// every answered request's filter phase — the denominator of the
    /// serving-level compression ratio.
    pub list_bytes_logical: u64,
    /// Physical page-padded stored bytes of the same lists (packed lists
    /// count at their compressed size).
    pub list_bytes_physical: u64,
}

/// One queued request and the channel its answer goes back on.
struct Job<E: Engine> {
    query: Query,
    request: SearchRequest,
    reply: mpsc::Sender<Result<E::Outcome>>,
}

struct ServerState<E: Engine> {
    queue: Mutex<VecDeque<Job<E>>>,
    available: Condvar,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    batches: AtomicU64,
    completed: AtomicU64,
    coalesced: AtomicU64,
    hot_tier_attrs: AtomicU64,
    cold_tier_attrs: AtomicU64,
    hot_tier_bytes_scanned: AtomicU64,
    cold_tier_bytes_scanned: AtomicU64,
    list_bytes_logical: AtomicU64,
    list_bytes_physical: AtomicU64,
}

impl<E: Engine> ServerState<E> {
    fn stats(&self) -> ServingStats {
        ServingStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            hot_tier_attrs: self.hot_tier_attrs.load(Ordering::Relaxed),
            cold_tier_attrs: self.cold_tier_attrs.load(Ordering::Relaxed),
            hot_tier_bytes_scanned: self.hot_tier_bytes_scanned.load(Ordering::Relaxed),
            cold_tier_bytes_scanned: self.cold_tier_bytes_scanned.load(Ordering::Relaxed),
            list_bytes_logical: self.list_bytes_logical.load(Ordering::Relaxed),
            list_bytes_physical: self.list_bytes_physical.load(Ordering::Relaxed),
        }
    }

    /// Fold one answered outcome's tier breakdown into the serving-level
    /// counters.
    fn absorb_tiering(&self, out: &E::Outcome) {
        let s = out.stats();
        self.hot_tier_attrs
            .fetch_add(s.hot_tier_attrs, Ordering::Relaxed);
        self.cold_tier_attrs
            .fetch_add(s.cold_tier_attrs, Ordering::Relaxed);
        self.hot_tier_bytes_scanned
            .fetch_add(s.hot_tier_bytes_scanned, Ordering::Relaxed);
        self.cold_tier_bytes_scanned
            .fetch_add(s.cold_tier_bytes_scanned, Ordering::Relaxed);
        self.list_bytes_logical
            .fetch_add(s.list_bytes_logical, Ordering::Relaxed);
        self.list_bytes_physical
            .fetch_add(s.list_bytes_physical, Ordering::Relaxed);
    }
}

/// The admission-batching front end: worker threads + a request queue
/// over a [`Reader`].
///
/// Submissions arriving while all workers are busy pile up in the queue;
/// when a worker frees up it drains up to `max_batch` of them and runs
/// them as **one** shared-scan batch against **one** snapshot. Under
/// light load batches degenerate to singletons and the server adds only
/// a thread hand-off; under heavy load batching caps the per-query scan
/// cost at `1/batch_size` of a dedicated scan.
pub struct Server<E: Engine + 'static> {
    state: Arc<ServerState<E>>,
    workers: Vec<JoinHandle<()>>,
}

impl<E: Engine + 'static> Server<E> {
    /// Spawn the worker threads and start serving.
    pub fn start(reader: Reader<E>, opts: ServeOptions) -> Self {
        let state = Arc::new(ServerState {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            hot_tier_attrs: AtomicU64::new(0),
            cold_tier_attrs: AtomicU64::new(0),
            hot_tier_bytes_scanned: AtomicU64::new(0),
            cold_tier_bytes_scanned: AtomicU64::new(0),
            list_bytes_logical: AtomicU64::new(0),
            list_bytes_physical: AtomicU64::new(0),
        });
        let max_batch = opts.max_batch.max(1);
        let n_workers = opts.workers.max(1);
        let workers = (0..n_workers)
            .map(|_| {
                let reader = reader.clone();
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(reader, state, max_batch, n_workers))
            })
            .collect();
        Self { state, workers }
    }

    /// A submission handle. Cheap; clone freely across client threads.
    pub fn client(&self) -> Client<E> {
        Client {
            state: Arc::clone(&self.state),
        }
    }

    /// Admission-queue counters so far.
    pub fn stats(&self) -> ServingStats {
        self.state.stats()
    }

    /// Stop accepting work, drain the queue, and join the workers.
    /// Requests still queued are answered before workers exit.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Release);
        let _guard = self
            .state
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.state.available.notify_all();
    }
}

impl<E: Engine + 'static> Drop for Server<E> {
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A cloneable submission handle onto a [`Server`]'s admission queue.
pub struct Client<E: Engine> {
    state: Arc<ServerState<E>>,
}

impl<E: Engine> Clone for Client<E> {
    fn clone(&self) -> Self {
        Self {
            state: Arc::clone(&self.state),
        }
    }
}

impl<E: Engine> Client<E> {
    /// Submit one search and block until its answer arrives. The answer
    /// is bit-identical to `reader.execute(&query, &request)` against the
    /// snapshot the serving batch pinned.
    pub fn search(&self, query: Query, request: SearchRequest) -> Result<E::Outcome> {
        if self.state.shutdown.load(Ordering::Acquire) {
            return Err(IvaError::InvalidArgument(
                "serving: request submitted to a stopped server".into(),
            ));
        }
        let (reply, rx) = mpsc::channel();
        {
            let mut q = self
                .state
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.push_back(Job {
                query,
                request,
                reply,
            });
        }
        self.state.submitted.fetch_add(1, Ordering::Relaxed);
        self.state.available.notify_one();
        rx.recv().map_err(|_| {
            IvaError::InvalidArgument("serving: server stopped before answering".into())
        })?
    }

    /// Admission-queue counters so far.
    pub fn stats(&self) -> ServingStats {
        self.state.stats()
    }
}

fn worker_loop<E: Engine>(
    reader: Reader<E>,
    state: Arc<ServerState<E>>,
    max_batch: usize,
    n_workers: usize,
) {
    loop {
        let jobs: Vec<Job<E>> = {
            let mut q = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if !q.is_empty() {
                    break;
                }
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = state
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            // Fair-share drain. Taking `q.len()` outright lets the first
            // worker woken by a burst swallow the whole queue and serve it
            // as one serial mega-batch while its siblings sleep — under an
            // open-loop arrival stream that is head-of-line blocking and
            // tail latency grows with the burst, not with `max_batch`.
            // Each worker instead takes its 1/n share (capped by
            // `max_batch`), and, if work remains, wakes one sibling before
            // releasing the lock so the burst fans out across all workers.
            let take = (q.len().div_ceil(n_workers)).clamp(1, max_batch);
            let jobs: Vec<Job<E>> = q.drain(..take).collect();
            if !q.is_empty() {
                state.available.notify_one();
            }
            jobs
        };
        // One snapshot per batch: every member answers from the same
        // epoch, and the write lock is held shared for exactly one
        // execution round.
        let snap = reader.snapshot();
        state.batches.fetch_add(1, Ordering::Relaxed);
        state
            .completed
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        if jobs.len() == 1 {
            for job in jobs {
                let out = snap.execute(&job.query, &job.request);
                if let Ok(out) = &out {
                    state.absorb_tiering(out);
                }
                let _ = job.reply.send(out);
            }
            continue;
        }
        state
            .coalesced
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        let batch: Vec<(Query, SearchRequest)> = jobs
            .iter()
            .map(|j| (j.query.clone(), j.request.clone()))
            .collect();
        match snap.execute_batch(&batch) {
            Ok(outs) => {
                for (job, out) in jobs.into_iter().zip(outs) {
                    state.absorb_tiering(&out);
                    let _ = job.reply.send(Ok(out));
                }
            }
            // A batch-level failure (say, one malformed query) must not
            // take its neighbors down: re-run each member alone so every
            // caller gets its own verdict.
            Err(_) => {
                for job in jobs {
                    let out = snap.execute(&job.query, &job.request);
                    if let Ok(out) = &out {
                        state.absorb_tiering(out);
                    }
                    let _ = job.reply.send(out);
                }
            }
        }
    }
}
