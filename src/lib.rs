//! # iva-file
//!
//! A from-scratch Rust implementation of the **iVA-file** (inverted vector
//! approximation file) from *"iVA-File: Efficiently Indexing Sparse Wide
//! Tables in Community Systems"* (ICDE 2009) — the first content-conscious
//! index for top-k structured similarity search over sparse wide tables —
//! together with the complete system around it: the interpreted-format
//! table storage, nG-signature string approximation, relative-domain
//! numeric codes, the evaluation baselines (SII, DST, VA-file), a
//! calibrated Google-Base-like workload generator, and a benchmark harness
//! regenerating every figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! The serving API splits the engine into one mutating [`Writer`] and any
//! number of cloneable [`Reader`]s. The writer publishes an immutable
//! *epoch snapshot* after every mutation; readers pin snapshots and run
//! searches against them from any thread.
//!
//! ```
//! use iva_file::serve::Writer;
//! use iva_file::{IvaDb, IvaDbOptions, SearchRequest, Tuple, Value};
//!
//! let mut writer = Writer::new(IvaDb::create_mem(IvaDbOptions::default()).unwrap());
//! let ty = writer.define_text("Type").unwrap();
//! let price = writer.define_numeric("Price").unwrap();
//! let company = writer.define_text("Company").unwrap();
//!
//! writer
//!     .insert(
//!         &Tuple::new()
//!             .with(ty, Value::text("Digital Camera"))
//!             .with(price, Value::num(230.0))
//!             .with(company, Value::text("Canon")),
//!     )
//!     .unwrap();
//!
//! // Readers are cheap Arc clones; snapshots pin one publication.
//! let reader = writer.reader();
//! let snap = reader.snapshot();
//!
//! // Queries address attributes by name, resolved through the catalog;
//! // a SearchRequest carries the execution knobs (k, metric, weights,
//! // measurement, filter-scan threads, refinement batching).
//! let query = snap
//!     .query_builder()
//!     .text("Type", "Digital Camera")
//!     .text("Company", "Cannon")
//!     .build()
//!     .unwrap();
//! let outcome = snap.execute(&query, &SearchRequest::new(5)).unwrap();
//! assert_eq!(outcome.hits[0].dist, 1.0); // one typo away
//! assert_eq!(outcome.stats.tuples_scanned, 1);
//! ```
//!
//! Single-caller deployments can keep using [`IvaDb`] directly — the
//! writer/reader split wraps the same engine without copying it, and
//! [`serve::Server`] adds an admission queue that coalesces concurrent
//! requests into shared scans (see the [`serve`] module docs).
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | `iva-storage` | pager, buffer pool, chained lists, I/O accounting |
//! | `iva-text` | n-grams, edit distance, nG-signatures |
//! | `iva-swt` | the sparse wide table (interpreted row format) |
//! | `iva-core` | the iVA-file index and query processor |
//! | `iva-baselines` | SII, DST, VA-file |
//! | `iva-workload` | synthetic Google-Base-like datasets and query sets |
//! | `iva-bench` | per-figure experiment harness |

#![warn(missing_docs)]

mod db;
mod engine;
mod lsm;
mod search;
pub mod serve;
mod sharded;

pub use db::{IvaDb, IvaDbOptions, SearchHit, SearchOutcome};
pub use engine::{Engine, EngineOutcome, EngineWriter, MaintainEngine};
pub use lsm::{LsmDb, LsmOptions, MaintenancePlan, MergePlan, SealPlan};
pub use search::{QueryBuilder, SearchRequest};
pub use serve::{Client, Reader, ServeOptions, Server, ServingStats, Snapshot, Writer};
pub use sharded::{ShardedHit, ShardedIvaDb, ShardedSearchOutcome, ShardedTid};

// Re-export the pieces users compose.
pub use iva_core::{
    build_index, IndexTarget, IvaConfig, IvaError, IvaIndex, Metric, MetricKind, Query,
    QueryOptions, QueryStats, QueryValue, Result, WeightScheme,
};
pub use iva_storage::{DiskModel, IoSnapshot, IoStats, PagerOptions};
pub use iva_swt::{AttrId, AttrType, Catalog, SwtTable, Tid, Tuple, Value};

/// The virtual-filesystem seam and its fault-injecting implementation
/// (crash testing, deterministic torture harnesses).
pub mod vfs {
    pub use iva_storage::{
        write_vec, FaultKind, FaultVfs, MemVfs, PlannedFault, RealVfs, Vfs, VfsFile,
    };
}

/// Baseline methods from the paper's evaluation.
pub mod baselines {
    pub use iva_baselines::{DirectScan, SiiIndex, VaFile};
}

/// Workload generation (synthetic Google Base).
pub mod workload {
    pub use iva_workload::{generate_query_set, Dataset, QuerySet, WorkloadConfig};
}

/// String approximation internals (exposed for power users).
pub mod text {
    pub use iva_text::{
        edit_distance, edit_distance_bytes, est_prime, expected_relative_error,
        false_hit_probability, optimal_t, PreparedMatcher, QueryStringMatcher, SigCodec, SigError,
    };
}
