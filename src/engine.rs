//! The common engine surface: one trait pair implemented by both
//! [`IvaDb`] and [`ShardedIvaDb`] so callers — the serving layer above
//! all — are generic over sharding.
//!
//! [`Engine`] is the read side: everything that runs with `&self` and is
//! safe to call from any number of threads at once (both engines hold
//! only `Sync` state on the query path). [`EngineWriter`] is the write
//! side: the `&mut self` mutators, which the serving layer funnels
//! through a single [`crate::serve::Writer`] handle.
//!
//! The split mirrors how the system is meant to be deployed: one writer
//! thread owns the mutations and publishes epoch snapshots; reader
//! threads execute searches against whichever snapshot they pinned.

use iva_core::{MetricKind, Query, QueryStats, Result};
use iva_swt::{AttrId, Tid, Tuple};

use crate::db::{IvaDb, SearchOutcome};
use crate::lsm::LsmDb;
use crate::search::{QueryBuilder, SearchRequest};
use crate::sharded::{ShardedIvaDb, ShardedSearchOutcome, ShardedTid};

/// What any engine's search outcome can report, independent of its hit
/// type. `hit_keys` gives a shape-independent digest — `(distance bits,
/// tid, shard)` per hit, in rank order — so generic callers (the
/// concurrent-reader tests, the load harness) can compare results across
/// engines bit-for-bit without knowing the concrete hit type.
pub trait EngineOutcome {
    /// Measurement counters of the run.
    fn stats(&self) -> &QueryStats;
    /// `(dist.to_bits(), tid, shard)` per hit in rank order (`shard` is 0
    /// for unsharded engines).
    fn hit_keys(&self) -> Vec<(u64, u64, u32)>;
}

impl EngineOutcome for SearchOutcome {
    fn stats(&self) -> &QueryStats {
        &self.stats
    }
    fn hit_keys(&self) -> Vec<(u64, u64, u32)> {
        self.hits
            .iter()
            .map(|h| (h.dist.to_bits(), h.tid, 0))
            .collect()
    }
}

impl EngineOutcome for ShardedSearchOutcome {
    fn stats(&self) -> &QueryStats {
        &self.stats
    }
    fn hit_keys(&self) -> Vec<(u64, u64, u32)> {
        self.hits
            .iter()
            .map(|h| (h.dist.to_bits(), h.id.tid, h.id.shard))
            .collect()
    }
}

/// The read side of an engine: concurrent top-k search with `&self`.
///
/// Implemented by [`IvaDb`] and [`ShardedIvaDb`]; the serving layer
/// ([`crate::serve`]) is generic over this trait, so a deployment can
/// switch between one database and a partitioned one without touching
/// its serving code.
pub trait Engine: Send + Sync {
    /// What one search run produces.
    type Outcome: EngineOutcome + Send;

    /// Build a [`Query`] from attribute names resolved through the
    /// engine's catalog.
    fn query_builder(&self) -> QueryBuilder<'_>;

    /// Run one top-k search as described by `request`.
    fn execute(&self, query: &Query, request: &SearchRequest) -> Result<Self::Outcome>;

    /// Run several searches as one admission batch, sharing the filter
    /// scan and the refinement fetch rounds where the engine supports it.
    /// Results are bit-identical to calling [`Engine::execute`] once per
    /// entry — batching is an execution strategy, never a semantic.
    ///
    /// The default implementation simply loops; engines override it with
    /// a genuinely shared plan.
    fn execute_batch(&self, batch: &[(Query, SearchRequest)]) -> Result<Vec<Self::Outcome>> {
        batch.iter().map(|(q, r)| self.execute(q, r)).collect()
    }

    /// The metric used when a request carries no override.
    fn default_metric(&self) -> MetricKind;

    /// Live tuple count.
    fn len(&self) -> u64;

    /// True if no live tuples exist.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The write side of an engine: every `&mut self` mutator the serving
/// layer routes through its single [`crate::serve::Writer`]. Engine-
/// specific operations not listed here (`update`, `rebuild`, …) remain
/// reachable through [`crate::serve::Writer::apply`].
pub trait EngineWriter: Engine {
    /// The engine's tuple handle ([`Tid`] or [`ShardedTid`]).
    type Id: Copy + Send + Sync + std::fmt::Debug;

    /// Define (or look up) a text attribute.
    fn define_text(&mut self, name: &str) -> Result<AttrId>;

    /// Define (or look up) a numerical attribute.
    fn define_numeric(&mut self, name: &str) -> Result<AttrId>;

    /// Insert a tuple; returns its handle.
    fn insert(&mut self, tuple: &Tuple) -> Result<Self::Id>;

    /// Delete a tuple by handle. Returns false if absent/already deleted.
    fn delete(&mut self, id: Self::Id) -> Result<bool>;

    /// Fetch a live tuple by handle.
    fn get(&self, id: Self::Id) -> Result<Option<Tuple>>;

    /// Persist all files durably.
    fn flush(&mut self) -> Result<()>;
}

/// Engines whose maintenance (sealing, compaction, rebuilds) splits into
/// an expensive read-side **prepare** and a cheap exclusive **publish**.
///
/// The split exists for the serving layer: [`crate::serve::Writer::maintain`]
/// runs [`MaintainEngine::plan_maintenance`] under a *read* snapshot — so
/// concurrent readers keep answering while the new segment is staged — and
/// takes the write lock only for [`MaintainEngine::publish_maintenance`],
/// whose critical section is a pointer swap plus one manifest commit.
/// Holding the write lock across the whole operation (the
/// [`crate::serve::Writer::apply`] route) is correct but stalls every
/// reader for the duration of an index build.
///
/// A plan is only valid against the exact engine state it was prepared
/// from. The serving layer's single-writer discipline guarantees no
/// mutation interleaves between the two phases; engines must still
/// *detect* a stale plan (mutations did interleave) and reject it with an
/// error rather than publish a torn state.
pub trait MaintainEngine: EngineWriter {
    /// A staged unit of maintenance work.
    type Plan: Send;

    /// Stage the next unit of maintenance with `&self`, or `None` when
    /// nothing needs doing. Expensive; safe under concurrent reads.
    fn plan_maintenance(&self) -> Result<Option<Self::Plan>>;

    /// Commit a staged plan with `&mut self`. Cheap. Errors on a stale
    /// plan instead of publishing torn state.
    fn publish_maintenance(&mut self, plan: Self::Plan) -> Result<bool>;
}

impl Engine for IvaDb {
    type Outcome = SearchOutcome;

    fn query_builder(&self) -> QueryBuilder<'_> {
        IvaDb::query_builder(self)
    }
    fn execute(&self, query: &Query, request: &SearchRequest) -> Result<SearchOutcome> {
        IvaDb::execute(self, query, request)
    }
    fn execute_batch(&self, batch: &[(Query, SearchRequest)]) -> Result<Vec<SearchOutcome>> {
        IvaDb::execute_batch(self, batch)
    }
    fn default_metric(&self) -> MetricKind {
        IvaDb::default_metric(self)
    }
    fn len(&self) -> u64 {
        IvaDb::len(self)
    }
}

impl EngineWriter for IvaDb {
    type Id = Tid;

    fn define_text(&mut self, name: &str) -> Result<AttrId> {
        IvaDb::define_text(self, name)
    }
    fn define_numeric(&mut self, name: &str) -> Result<AttrId> {
        IvaDb::define_numeric(self, name)
    }
    fn insert(&mut self, tuple: &Tuple) -> Result<Tid> {
        IvaDb::insert(self, tuple)
    }
    fn delete(&mut self, id: Tid) -> Result<bool> {
        IvaDb::delete(self, id)
    }
    fn get(&self, id: Tid) -> Result<Option<Tuple>> {
        IvaDb::get(self, id)
    }
    fn flush(&mut self) -> Result<()> {
        IvaDb::flush(self)
    }
}

impl Engine for LsmDb {
    type Outcome = SearchOutcome;

    fn query_builder(&self) -> QueryBuilder<'_> {
        LsmDb::query_builder(self)
    }
    fn execute(&self, query: &Query, request: &SearchRequest) -> Result<SearchOutcome> {
        LsmDb::execute(self, query, request)
    }
    fn default_metric(&self) -> MetricKind {
        LsmDb::default_metric(self)
    }
    fn len(&self) -> u64 {
        LsmDb::len(self)
    }
}

impl EngineWriter for LsmDb {
    type Id = Tid;

    fn define_text(&mut self, name: &str) -> Result<AttrId> {
        LsmDb::define_text(self, name)
    }
    fn define_numeric(&mut self, name: &str) -> Result<AttrId> {
        LsmDb::define_numeric(self, name)
    }
    fn insert(&mut self, tuple: &Tuple) -> Result<Tid> {
        LsmDb::insert(self, tuple)
    }
    fn delete(&mut self, id: Tid) -> Result<bool> {
        LsmDb::delete(self, id)
    }
    fn get(&self, id: Tid) -> Result<Option<Tuple>> {
        LsmDb::get(self, id)
    }
    fn flush(&mut self) -> Result<()> {
        LsmDb::flush(self)
    }
}

impl MaintainEngine for LsmDb {
    type Plan = crate::lsm::MaintenancePlan;

    fn plan_maintenance(&self) -> Result<Option<Self::Plan>> {
        LsmDb::plan_maintenance(self)
    }
    fn publish_maintenance(&mut self, plan: Self::Plan) -> Result<bool> {
        LsmDb::publish_maintenance(self, plan)
    }
}

impl Engine for ShardedIvaDb {
    type Outcome = ShardedSearchOutcome;

    fn query_builder(&self) -> QueryBuilder<'_> {
        ShardedIvaDb::query_builder(self)
    }
    fn execute(&self, query: &Query, request: &SearchRequest) -> Result<ShardedSearchOutcome> {
        ShardedIvaDb::execute(self, query, request)
    }
    fn execute_batch(&self, batch: &[(Query, SearchRequest)]) -> Result<Vec<ShardedSearchOutcome>> {
        ShardedIvaDb::execute_batch(self, batch)
    }
    fn default_metric(&self) -> MetricKind {
        ShardedIvaDb::default_metric(self)
    }
    fn len(&self) -> u64 {
        ShardedIvaDb::len(self)
    }
}

impl EngineWriter for ShardedIvaDb {
    type Id = ShardedTid;

    fn define_text(&mut self, name: &str) -> Result<AttrId> {
        ShardedIvaDb::define_text(self, name)
    }
    fn define_numeric(&mut self, name: &str) -> Result<AttrId> {
        ShardedIvaDb::define_numeric(self, name)
    }
    fn insert(&mut self, tuple: &Tuple) -> Result<ShardedTid> {
        ShardedIvaDb::insert(self, tuple)
    }
    fn delete(&mut self, id: ShardedTid) -> Result<bool> {
        ShardedIvaDb::delete(self, id)
    }
    fn get(&self, id: ShardedTid) -> Result<Option<Tuple>> {
        ShardedIvaDb::get(self, id)
    }
    fn flush(&mut self) -> Result<()> {
        ShardedIvaDb::flush(self)
    }
}
