//! `ivactl` — command-line front end for iVA-file databases.
//!
//! ```text
//! ivactl create  <dir>                                create an empty database
//! ivactl define  <dir> text|num <name>...             add attributes
//! ivactl insert  <dir> "attr=value;attr=value;..."    insert one tuple
//! ivactl search  <dir> <k> "attr=value;..." [l1|l2|linf] [equ|itf]
//! ivactl stats   <dir>                                sizes and counts
//! ivactl gen     <dir> <n_tuples>                     load a synthetic CWMS dataset
//! ivactl rebuild <dir>                                compact table + rebuild index
//! ivactl export-ciff <dir> <out-file>                 export the index (CIFF-style)
//! ```
//!
//! Values are typed by the catalog: numbers on numerical attributes parse
//! as f64; everything else is a string. Multi-string text values use `|`:
//! `industry=Computer|Software`.

use std::path::Path;
use std::process::ExitCode;

use iva_file::workload::{Dataset, WorkloadConfig};
use iva_file::{
    AttrType, IvaDb, IvaDbOptions, MetricKind, Query, SearchRequest, Tuple, Value, WeightScheme,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ivactl: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let usage =
        "usage: ivactl <create|define|insert|search|stats|gen|rebuild|export-ciff> <dir> ...";
    let cmd = args.first().ok_or(usage)?;
    let dir = Path::new(args.get(1).ok_or(usage)?);
    let opts = IvaDbOptions::default();
    match cmd.as_str() {
        "create" => {
            IvaDb::create(dir, opts).map_err(|e| e.to_string())?;
            println!("created database at {}", dir.display());
            Ok(())
        }
        "define" => {
            let kind = args.get(2).ok_or("define needs text|num")?;
            let mut db = IvaDb::open(dir, opts).map_err(|e| e.to_string())?;
            for name in &args[3..] {
                let id = match kind.as_str() {
                    "text" => db.define_text(name),
                    "num" | "numeric" => db.define_numeric(name),
                    other => return Err(format!("unknown attribute kind {other:?}")),
                }
                .map_err(|e| e.to_string())?;
                println!("{name} -> {id}");
            }
            db.flush().map_err(|e| e.to_string())
        }
        "insert" => {
            let spec = args.get(2).ok_or("insert needs \"attr=value;...\"")?;
            let mut db = IvaDb::open(dir, opts).map_err(|e| e.to_string())?;
            let tuple = parse_tuple(&db, spec)?;
            let tid = db.insert(&tuple).map_err(|e| e.to_string())?;
            db.flush().map_err(|e| e.to_string())?;
            println!("inserted tuple {tid}");
            Ok(())
        }
        "search" => {
            let k: usize = args
                .get(2)
                .ok_or("search needs k")?
                .parse()
                .map_err(|_| "k must be a number")?;
            let spec = args.get(3).ok_or("search needs \"attr=value;...\"")?;
            let metric = match args.get(4).map(String::as_str) {
                None | Some("l2") => MetricKind::L2,
                Some("l1") => MetricKind::L1,
                Some("linf") => MetricKind::LInf,
                Some(other) => return Err(format!("unknown metric {other:?}")),
            };
            let weights = match args.get(5).map(String::as_str) {
                None | Some("equ") => WeightScheme::Equal,
                Some("itf") => WeightScheme::Itf,
                Some(other) => return Err(format!("unknown weights {other:?}")),
            };
            let db = IvaDb::open(dir, opts).map_err(|e| e.to_string())?;
            let query = parse_query(&db, spec)?;
            let outcome = db
                .execute(
                    &query,
                    &SearchRequest::new(k).metric(metric).weights(weights),
                )
                .map_err(|e| e.to_string())?;
            let stats = outcome.stats;
            for (rank, hit) in outcome.hits.iter().enumerate() {
                println!("#{rank} tid={} dist={:.3}", hit.tid, hit.dist);
                for (attr, value) in hit.tuple.iter() {
                    let name = db
                        .table()
                        .catalog()
                        .def(attr)
                        .map(|d| d.name.clone())
                        .unwrap_or_else(|| attr.to_string());
                    match value {
                        Value::Text(s) => println!("    {name} = {}", s.join(" | ")),
                        Value::Num(v) => println!("    {name} = {v}"),
                    }
                }
            }
            println!(
                "scanned {} tuples, {} table accesses, {:.1} ms filter + {:.1} ms refine",
                stats.tuples_scanned,
                stats.table_accesses,
                stats.filter_ms(),
                stats.refine_ms()
            );
            Ok(())
        }
        "stats" => {
            let db = IvaDb::open(dir, opts).map_err(|e| e.to_string())?;
            println!("tuples (live):     {}", db.len());
            println!("attributes:        {}", db.table().catalog().len());
            println!(
                "table file:        {} bytes",
                db.table().file().size_bytes()
            );
            println!("iVA-file:          {} bytes", db.index().size_bytes());
            println!(
                "deleted fraction:  {:.2} %",
                db.index().deleted_fraction() * 100.0
            );
            let cfg = db.index().config();
            println!(
                "index config:      alpha={:.0}% n={} ndf-penalty={}",
                cfg.alpha * 100.0,
                cfg.n,
                cfg.ndf_penalty
            );
            Ok(())
        }
        "gen" => {
            let n: usize = args
                .get(2)
                .ok_or("gen needs a tuple count")?
                .parse()
                .map_err(|_| "tuple count must be a number")?;
            let dataset = Dataset::generate(&WorkloadConfig::scaled(n));
            let mut db = IvaDb::create(dir, opts).map_err(|e| e.to_string())?;
            for (i, ty) in dataset.attr_types.iter().enumerate() {
                let name = format!("attr_{i}");
                match ty {
                    AttrType::Text => db.define_text(&name),
                    AttrType::Numeric => db.define_numeric(&name),
                }
                .map_err(|e| e.to_string())?;
            }
            for t in &dataset.tuples {
                db.insert(t).map_err(|e| e.to_string())?;
            }
            db.rebuild().map_err(|e| e.to_string())?;
            db.flush().map_err(|e| e.to_string())?;
            println!(
                "generated {} tuples over {} attributes into {}",
                n,
                dataset.attr_types.len(),
                dir.display()
            );
            Ok(())
        }
        "rebuild" => {
            let mut db = IvaDb::open(dir, opts).map_err(|e| e.to_string())?;
            db.rebuild().map_err(|e| e.to_string())?;
            db.flush().map_err(|e| e.to_string())?;
            println!("rebuilt table + index");
            Ok(())
        }
        "export-ciff" => {
            let out = Path::new(args.get(2).ok_or("export-ciff needs an output file")?);
            let db = IvaDb::open(dir, opts).map_err(|e| e.to_string())?;
            let bytes = iva_baselines::export_iva(db.index()).map_err(|e| e.to_string())?;
            iva_file::vfs::write_vec(&iva_file::vfs::RealVfs, out, &bytes)
                .map_err(|e| e.to_string())?;
            println!(
                "exported {} tuples / {} attributes: {} index bytes -> {} CIFF bytes at {}",
                db.index().n_tuples(),
                db.table().catalog().len(),
                db.index().size_bytes(),
                bytes.len(),
                out.display()
            );
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{usage}")),
    }
}

fn split_spec(spec: &str) -> impl Iterator<Item = Result<(&str, &str), String>> {
    spec.split(';')
        .filter(|s| !s.trim().is_empty())
        .map(|pair| {
            pair.split_once('=')
                .map(|(a, v)| (a.trim(), v.trim()))
                .ok_or_else(|| format!("bad field {pair:?}, expected attr=value"))
        })
}

fn parse_tuple(db: &IvaDb, spec: &str) -> Result<Tuple, String> {
    let mut t = Tuple::new();
    for field in split_spec(spec) {
        let (name, raw) = field?;
        let attr = db
            .attr(name)
            .ok_or_else(|| format!("unknown attribute {name:?}"))?;
        match db.table().catalog().attr_type(attr) {
            Some(AttrType::Numeric) => {
                let v: f64 = raw
                    .parse()
                    .map_err(|_| format!("{name}: {raw:?} is not a number"))?;
                t.set(attr, Value::num(v));
            }
            _ => {
                let strings: Vec<String> = raw.split('|').map(str::to_string).collect();
                t.set(attr, Value::Text(strings));
            }
        }
    }
    Ok(t)
}

fn parse_query(db: &IvaDb, spec: &str) -> Result<Query, String> {
    let mut q = Query::new();
    for field in split_spec(spec) {
        let (name, raw) = field?;
        let attr = db
            .attr(name)
            .ok_or_else(|| format!("unknown attribute {name:?}"))?;
        match db.table().catalog().attr_type(attr) {
            Some(AttrType::Numeric) => {
                let v: f64 = raw
                    .parse()
                    .map_err(|_| format!("{name}: {raw:?} is not a number"))?;
                q = q.num(attr, v);
            }
            _ => q = q.text(attr, raw),
        }
    }
    Ok(q)
}
