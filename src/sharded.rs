//! Horizontally partitioned iVA-files.
//!
//! The paper closes by noting that, "being a non-hierarchical index, the
//! iVA-file is suitable for indexing horizontally or vertically partitioned
//! datasets in a distributed and parallel system architecture which is
//! widely adopted for implementing the community systems" (Sec. VI). This
//! module makes that concrete for the horizontal case: a [`ShardedIvaDb`]
//! hash-partitions tuples across N independent table+index shards, fans a
//! query out to every shard in parallel (scan-based indexes need no
//! cross-shard coordination), and merges the per-shard top-k pools.
//!
//! Exactness is preserved: each shard's result is its exact local top-k,
//! and the global top-k is contained in the union of local top-ks.

use iva_core::{
    BatchItem, IvaError, Metric, MetricKind, PoolEntry, Query, QueryOptions, QueryOutcome,
    QueryStats, Result,
};
use iva_swt::{Tid, Tuple};

use crate::db::{IvaDb, IvaDbOptions};
use crate::search::{QueryBuilder, SearchRequest};

/// A horizontally partitioned collection of [`IvaDb`] shards.
pub struct ShardedIvaDb {
    shards: Vec<IvaDb>,
    /// Tuples inserted so far (drives round-robin placement and global ids).
    inserted: u64,
    opts: IvaDbOptions,
}

/// A globally unique tuple handle: `(shard, local tid)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardedTid {
    /// Which shard holds the tuple.
    pub shard: u32,
    /// The tuple id within that shard.
    pub tid: Tid,
}

/// One ranked answer from a sharded search.
#[derive(Debug, Clone)]
pub struct ShardedHit {
    /// Global handle of the tuple.
    pub id: ShardedTid,
    /// Distance to the query.
    pub dist: f64,
    /// The tuple.
    pub tuple: Tuple,
}

/// Everything one sharded search run produces.
#[derive(Debug, Clone)]
pub struct ShardedSearchOutcome {
    /// The global top-k in ascending distance order (ties broken by tid,
    /// then shard — deterministic regardless of shard completion order).
    pub hits: Vec<ShardedHit>,
    /// Counters summed across shards; phase timings take the slowest
    /// shard (the shards run concurrently).
    pub stats: QueryStats,
}

impl ShardedIvaDb {
    /// Create `n_shards` in-memory shards.
    pub fn create_mem(n_shards: usize, opts: IvaDbOptions) -> Result<Self> {
        if n_shards == 0 {
            return Err(IvaError::InvalidArgument("need at least one shard".into()));
        }
        let shards = (0..n_shards)
            .map(|_| IvaDb::create_mem(opts.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            inserted: 0,
            opts,
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total live tuples across shards.
    pub fn len(&self) -> u64 {
        self.shards.iter().map(IvaDb::len).sum()
    }

    /// True if no live tuples exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Define a text attribute on every shard (same id everywhere as long
    /// as definitions happen through this method, in order).
    pub fn define_text(&mut self, name: &str) -> Result<iva_swt::AttrId> {
        let mut id = None;
        for s in &mut self.shards {
            let got = s.define_text(name)?;
            if *id.get_or_insert(got) != got {
                return Err(IvaError::Corrupt("shards disagree on attribute ids".into()));
            }
        }
        id.ok_or_else(|| IvaError::Corrupt("sharded table has no shards".into()))
    }

    /// Define a numerical attribute on every shard.
    pub fn define_numeric(&mut self, name: &str) -> Result<iva_swt::AttrId> {
        let mut id = None;
        for s in &mut self.shards {
            let got = s.define_numeric(name)?;
            if *id.get_or_insert(got) != got {
                return Err(IvaError::Corrupt("shards disagree on attribute ids".into()));
            }
        }
        id.ok_or_else(|| IvaError::Corrupt("sharded table has no shards".into()))
    }

    /// Insert a tuple (round-robin placement), returning its global handle.
    pub fn insert(&mut self, tuple: &Tuple) -> Result<ShardedTid> {
        let shard = (self.inserted % self.shards.len() as u64) as u32;
        self.inserted += 1;
        let tid = self.shards[shard as usize].insert(tuple)?;
        Ok(ShardedTid { shard, tid })
    }

    /// Delete by global handle.
    pub fn delete(&mut self, id: ShardedTid) -> Result<bool> {
        let Some(shard) = self.shards.get_mut(id.shard as usize) else {
            return Ok(false);
        };
        shard.delete(id.tid)
    }

    /// Fetch by global handle.
    pub fn get(&self, id: ShardedTid) -> Result<Option<Tuple>> {
        match self.shards.get(id.shard as usize) {
            Some(shard) => shard.get(id.tid),
            None => Ok(None),
        }
    }

    /// Build a [`Query`] from attribute names resolved through the shared
    /// catalog (see [`IvaDb::query_builder`]).
    pub fn query_builder(&self) -> QueryBuilder<'_> {
        QueryBuilder::new(self.shards[0].table().catalog())
    }

    /// Run one top-k search as described by `request` — the single entry
    /// point every other sharded search method wraps.
    ///
    /// Shard- and segment-level parallelism compose: each shard runs on
    /// its own scoped thread, and the request's thread budget (or the
    /// configured [`crate::IvaConfig::search_threads`]) is split evenly
    /// across shards to bound the total filter-worker count.
    pub fn execute(&self, query: &Query, request: &SearchRequest) -> Result<ShardedSearchOutcome> {
        let metric = request.metric_override().unwrap_or(self.opts.metric);
        self.execute_metric(query, &metric, request)
    }

    /// [`ShardedIvaDb::execute`] under a caller-supplied [`Metric`]
    /// implementation.
    pub fn execute_metric<M: Metric + Sync>(
        &self,
        query: &Query,
        metric: &M,
        request: &SearchRequest,
    ) -> Result<ShardedSearchOutcome> {
        let k = request.k();
        let weights = request.weights_override().unwrap_or(self.opts.weights);
        let budget = request
            .threads_override()
            .unwrap_or_else(|| self.opts.config.resolved_search_threads());
        let qopts = QueryOptions {
            threads: Some((budget / self.shards.len()).max(1)),
            measured: request.is_measured(),
            refine_batch: request.refine_batch_override(),
        };

        let locals: Vec<Result<QueryOutcome>> = if let [only] = self.shards.as_slice() {
            vec![only
                .index()
                .query_opts(only.table(), query, k, metric, weights, &qopts)]
        } else {
            let mut slots: Vec<Option<Result<QueryOutcome>>> = Vec::new();
            slots.resize_with(self.shards.len(), || None);
            crossbeam::thread::scope(|scope| {
                for (shard, slot) in self.shards.iter().zip(slots.iter_mut()) {
                    let qopts = &qopts;
                    scope.spawn(move |_| {
                        *slot = Some(shard.index().query_opts(
                            shard.table(),
                            query,
                            k,
                            metric,
                            weights,
                            qopts,
                        ));
                    });
                }
            })
            .map_err(|_| IvaError::Corrupt("shard query thread panicked".into()))?;
            slots
                .into_iter()
                .map(|s| {
                    s.unwrap_or_else(|| Err(IvaError::Corrupt("shard query slot unfilled".into())))
                })
                .collect()
        };

        let locals = locals.into_iter().collect::<Result<Vec<_>>>()?;
        self.merge_locals(k, locals)
    }

    /// Merge per-shard local top-k outcomes (in shard order) into the
    /// global top-k: take the k smallest across shards (deterministic
    /// ordering: distance, then tid, then shard), then materialize.
    /// Counters sum across shards; phase timings take the slowest shard.
    fn merge_locals(&self, k: usize, locals: Vec<QueryOutcome>) -> Result<ShardedSearchOutcome> {
        let mut stats = QueryStats::default();
        let mut merged: Vec<(u32, PoolEntry)> = Vec::new();
        for (i, out) in locals.into_iter().enumerate() {
            stats.tuples_scanned += out.stats.tuples_scanned;
            stats.table_accesses += out.stats.table_accesses;
            stats.speculative_accesses += out.stats.speculative_accesses;
            stats.hot_tier_attrs += out.stats.hot_tier_attrs;
            stats.cold_tier_attrs += out.stats.cold_tier_attrs;
            stats.hot_tier_bytes_scanned += out.stats.hot_tier_bytes_scanned;
            stats.cold_tier_bytes_scanned += out.stats.cold_tier_bytes_scanned;
            stats.list_bytes_logical += out.stats.list_bytes_logical;
            stats.list_bytes_physical += out.stats.list_bytes_physical;
            stats.filter_nanos = stats.filter_nanos.max(out.stats.filter_nanos);
            stats.refine_nanos = stats.refine_nanos.max(out.stats.refine_nanos);
            for e in out.results {
                merged.push((i as u32, e));
            }
        }
        merged.sort_by(|a, b| {
            a.1.dist
                .partial_cmp(&b.1.dist)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.tid.cmp(&b.1.tid))
                .then(a.0.cmp(&b.0))
        });
        merged.truncate(k);
        let hits = merged
            .into_iter()
            .map(|(shard, e)| {
                let id = ShardedTid { shard, tid: e.tid };
                let owner = self
                    .shards
                    .get(shard as usize)
                    .ok_or_else(|| IvaError::Corrupt("merged hit names an unknown shard".into()))?;
                let tuple = owner.table().get(e.ptr)?.tuple;
                Ok(ShardedHit {
                    id,
                    dist: e.dist,
                    tuple,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedSearchOutcome { hits, stats })
    }

    /// Run several searches as one admission batch: every shard scans its
    /// tuple list once for the whole batch (see
    /// [`iva_core::IvaIndex::query_batch`]), then the per-shard local
    /// top-ks merge per entry exactly as in [`ShardedIvaDb::execute`].
    /// Every entry's result is bit-identical to executing it alone.
    ///
    /// Entries are grouped by resolved metric as in
    /// [`crate::IvaDb::execute_batch`]; weights and `k` are honored per
    /// entry.
    pub fn execute_batch(
        &self,
        batch: &[(Query, SearchRequest)],
    ) -> Result<Vec<ShardedSearchOutcome>> {
        let mut out: Vec<Option<ShardedSearchOutcome>> = Vec::new();
        out.resize_with(batch.len(), || None);
        // As in [`crate::IvaDb::execute_batch`], each group keeps the entry
        // reference next to its slot index so the batch is never re-indexed.
        type Entry<'b> = (usize, &'b (Query, SearchRequest));
        let mut groups: Vec<(MetricKind, Vec<Entry<'_>>)> = Vec::new();
        for (i, entry) in batch.iter().enumerate() {
            let m = entry.1.metric_override().unwrap_or(self.opts.metric);
            match groups.iter_mut().find(|(g, _)| *g == m) {
                Some((_, idxs)) => idxs.push((i, entry)),
                None => groups.push((m, vec![(i, entry)])),
            }
        }
        for (metric, idxs) in groups {
            let items: Vec<BatchItem<'_>> = idxs
                .iter()
                .map(|(_, (q, r))| BatchItem {
                    query: q,
                    k: r.k(),
                    weights: r.weights_override().unwrap_or(self.opts.weights),
                })
                .collect();
            let budget = idxs
                .iter()
                .find_map(|(_, (_, r))| r.threads_override())
                .unwrap_or_else(|| self.opts.config.resolved_search_threads());
            let qopts = QueryOptions {
                threads: Some((budget / self.shards.len()).max(1)),
                measured: idxs.iter().any(|(_, (_, r))| r.is_measured()),
                refine_batch: idxs
                    .iter()
                    .find_map(|(_, (_, r))| r.refine_batch_override()),
            };

            let per_shard: Vec<Result<Vec<QueryOutcome>>> = if let [only] = self.shards.as_slice() {
                vec![only
                    .index()
                    .query_batch(only.table(), &items, &metric, &qopts)]
            } else {
                let mut slots: Vec<Option<Result<Vec<QueryOutcome>>>> = Vec::new();
                slots.resize_with(self.shards.len(), || None);
                crossbeam::thread::scope(|scope| {
                    for (shard, slot) in self.shards.iter().zip(slots.iter_mut()) {
                        let items = &items;
                        let qopts = &qopts;
                        scope.spawn(move |_| {
                            *slot = Some(shard.index().query_batch(
                                shard.table(),
                                items,
                                &metric,
                                qopts,
                            ));
                        });
                    }
                })
                .map_err(|_| IvaError::Corrupt("shard batch thread panicked".into()))?;
                slots
                    .into_iter()
                    .map(|s| {
                        s.unwrap_or_else(|| {
                            Err(IvaError::Corrupt("shard batch slot unfilled".into()))
                        })
                    })
                    .collect()
            };
            let per_shard = per_shard.into_iter().collect::<Result<Vec<_>>>()?;
            for (j, &(i, (_, r))) in idxs.iter().enumerate() {
                let locals: Vec<QueryOutcome> = per_shard
                    .iter()
                    .map(|shard_outs| {
                        shard_outs
                            .get(j)
                            .cloned()
                            .ok_or_else(|| IvaError::Corrupt("shard batch came up short".into()))
                    })
                    .collect::<Result<Vec<_>>>()?;
                if let Some(slot) = out.get_mut(i) {
                    *slot = Some(self.merge_locals(r.k(), locals)?);
                }
            }
        }
        out.into_iter()
            .map(|o| o.ok_or_else(|| IvaError::Corrupt("batch entry left unanswered".into())))
            .collect()
    }

    /// Run the β-cleanup check on every shard.
    pub fn maybe_clean(&mut self) -> Result<()> {
        for s in &mut self.shards {
            s.maybe_clean()?;
        }
        Ok(())
    }

    /// Persist every shard durably (table first, then index, per shard —
    /// see [`IvaDb::flush`]).
    pub fn flush(&mut self) -> Result<()> {
        for s in &mut self.shards {
            s.flush()?;
        }
        Ok(())
    }

    /// The default metric configured for this database.
    pub fn default_metric(&self) -> MetricKind {
        self.opts.metric
    }

    /// Access a shard (diagnostics, tests).
    pub fn shard(&self, i: usize) -> Option<&IvaDb> {
        self.shards.get(i)
    }
}
