//! Tuple values.
//!
//! A cell `v(T, A)` is either *ndf* (undefined — simply absent from the
//! tuple), a numerical number, or a non-empty set of finite-length strings
//! (Sec. III-A; Fig. 1's `Industry = {"Computer", "Software"}` is a
//! multi-string text value).

use crate::error::{Result, SwtError};
use crate::schema::AttrId;

/// A defined cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Numerical value.
    Num(f64),
    /// Non-empty set of strings.
    Text(Vec<String>),
}

impl Value {
    /// Single-string text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(vec![s.into()])
    }

    /// Multi-string text value.
    pub fn texts<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Value::Text(strings.into_iter().map(Into::into).collect())
    }

    /// Numerical value.
    pub fn num(v: f64) -> Self {
        Value::Num(v)
    }

    /// Validate invariants (non-empty text set, bounded string length,
    /// finite numbers).
    pub fn validate(&self) -> Result<()> {
        match self {
            Value::Num(v) => {
                if !v.is_finite() {
                    return Err(SwtError::InvalidArgument(
                        "non-finite numerical value".into(),
                    ));
                }
            }
            Value::Text(strings) => {
                if strings.is_empty() {
                    return Err(SwtError::InvalidArgument("empty text value".into()));
                }
                if strings.len() > u8::MAX as usize {
                    return Err(SwtError::InvalidArgument(
                        "more than 255 strings in one text value".into(),
                    ));
                }
                for s in strings {
                    if s.is_empty() {
                        return Err(SwtError::InvalidArgument(
                            "empty string in text value".into(),
                        ));
                    }
                    if s.len() > u16::MAX as usize {
                        return Err(SwtError::InvalidArgument(
                            "string longer than 65535 bytes".into(),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A tuple: the defined `(attribute, value)` pairs, sorted by attribute id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tuple {
    fields: Vec<(AttrId, Value)>,
}

impl Tuple {
    /// Empty tuple (no defined attributes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or replace) the value of an attribute. Keeps fields sorted.
    pub fn set(&mut self, attr: AttrId, value: Value) -> &mut Self {
        match self.fields.binary_search_by_key(&attr, |(a, _)| *a) {
            Ok(i) => {
                if let Some(f) = self.fields.get_mut(i) {
                    f.1 = value;
                }
            }
            Err(i) => self.fields.insert(i, (attr, value)),
        }
        self
    }

    /// Builder-style [`Tuple::set`].
    pub fn with(mut self, attr: AttrId, value: Value) -> Self {
        self.set(attr, value);
        self
    }

    /// Value of an attribute, or `None` if *ndf*.
    pub fn get(&self, attr: AttrId) -> Option<&Value> {
        self.fields
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .and_then(|i| self.fields.get(i))
            .map(|(_, v)| v)
    }

    /// Number of defined attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// True if no attributes are defined.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate `(attr, value)` in attribute-id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Value)> {
        self.fields.iter().map(|(a, v)| (*a, v))
    }

    /// Validate every value.
    pub fn validate(&self) -> Result<()> {
        for (_, v) in self.iter() {
            v.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_sorted() {
        let mut t = Tuple::new();
        t.set(AttrId(5), Value::num(1.0));
        t.set(AttrId(1), Value::text("x"));
        t.set(AttrId(3), Value::texts(["a", "b"]));
        let attrs: Vec<u32> = t.iter().map(|(a, _)| a.0).collect();
        assert_eq!(attrs, vec![1, 3, 5]);
        assert_eq!(t.get(AttrId(5)), Some(&Value::Num(1.0)));
        assert_eq!(t.get(AttrId(2)), None); // ndf
        assert_eq!(t.arity(), 3);
    }

    #[test]
    fn set_replaces() {
        let mut t = Tuple::new();
        t.set(AttrId(0), Value::num(1.0));
        t.set(AttrId(0), Value::num(2.0));
        assert_eq!(t.arity(), 1);
        assert_eq!(t.get(AttrId(0)), Some(&Value::Num(2.0)));
    }

    #[test]
    fn validation() {
        assert!(Value::num(f64::NAN).validate().is_err());
        assert!(Value::num(f64::INFINITY).validate().is_err());
        assert!(Value::Text(vec![]).validate().is_err());
        assert!(Value::text("").validate().is_err());
        assert!(Value::text("ok").validate().is_ok());
        assert!(Value::num(3.5).validate().is_ok());
        let long = "x".repeat(70000);
        assert!(Value::text(long).validate().is_err());
    }

    #[test]
    fn tuple_validate_propagates() {
        let t = Tuple::new().with(AttrId(0), Value::Text(vec![]));
        assert!(t.validate().is_err());
    }
}
