//! Errors of the sparse-wide-table layer.

use std::fmt;

use iva_storage::StorageError;

/// Errors produced by SWT operations.
#[derive(Debug)]
pub enum SwtError {
    /// Propagated storage failure.
    Storage(StorageError),
    /// Attribute name/id not present in the catalog.
    UnknownAttribute(String),
    /// An attribute was used with the wrong type (text vs numerical).
    TypeMismatch {
        /// Attribute name.
        attr: String,
        /// What the catalog says.
        expected: &'static str,
    },
    /// Serialized tuple/record data failed validation.
    Corrupt(String),
    /// Invalid user input (empty text value, oversized field, ...).
    InvalidArgument(String),
}

impl fmt::Display for SwtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwtError::Storage(e) => write!(f, "storage: {e}"),
            SwtError::UnknownAttribute(a) => write!(f, "unknown attribute: {a}"),
            SwtError::TypeMismatch { attr, expected } => {
                write!(f, "attribute {attr} is not {expected}")
            }
            SwtError::Corrupt(m) => write!(f, "corrupt table data: {m}"),
            SwtError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for SwtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwtError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for SwtError {
    fn from(e: StorageError) -> Self {
        SwtError::Storage(e)
    }
}

impl From<std::io::Error> for SwtError {
    fn from(e: std::io::Error) -> Self {
        SwtError::Storage(StorageError::Io(e))
    }
}

/// Result alias for SWT operations.
pub type Result<T> = std::result::Result<T, SwtError>;
