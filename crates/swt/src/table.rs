//! lint:scope(no-panic-decode)
//! The table file: row-wise interpreted records in an append-only log.
//!
//! Matches Sec. IV-B of the paper: "the new tuple is appended to the end of
//! the table file for an insertion"; deletions are tombstoned and physically
//! reclaimed only by a periodic rebuild. Each stored record carries its
//! tuple id and a flags byte so the file is self-contained for full scans
//! (the DST baseline) and for rebuilds.
//!
//! Stored record layout: `[rec_len: u32][tid: u64][flags: u8][record bytes]`.

use std::path::Path;
use std::sync::Arc;

use iva_storage::codec::{le_u32, le_u64};
use iva_storage::vfs::Vfs;
use iva_storage::{ByteLog, IoStats, PagerOptions, USER_HEADER_LEN};

use crate::error::{Result, SwtError};
use crate::record::{decode_record, encode_record};
use crate::value::Tuple;

/// Tuple identifier. Monotonically increasing; never reused (updates are
/// delete + insert with a fresh id, per Sec. IV-B).
pub type Tid = u64;

/// Byte address of a stored record in the table file (the tuple list's
/// `ptr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordPtr(pub u64);

const FLAG_DELETED: u8 = 1;
const RECORD_HEADER: usize = 4 + 8 + 1;

/// A record fetched from the table file.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    /// Tuple id.
    pub tid: Tid,
    /// Tombstone flag.
    pub deleted: bool,
    /// The tuple payload.
    pub tuple: Tuple,
}

/// Append-only table file of interpreted records.
pub struct TableFile {
    log: ByteLog,
    next_tid: Tid,
    total_records: u64,
    deleted_records: u64,
}

impl TableFile {
    /// Create a fresh disk-backed table file.
    pub fn create(path: &Path, opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        Ok(Self::from_log(ByteLog::create(path, opts, stats)?))
    }

    /// Create a fresh memory-backed table file.
    pub fn create_mem(opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        Ok(Self::from_log(ByteLog::create_mem(opts, stats)?))
    }

    /// Create a fresh table file on an explicit [`Vfs`] (fault injection,
    /// in-memory crash replay).
    pub fn create_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        opts: &PagerOptions,
        stats: IoStats,
    ) -> Result<Self> {
        Ok(Self::from_log(ByteLog::create_with_vfs(
            vfs, path, opts, stats,
        )?))
    }

    /// Open an existing table file on an explicit [`Vfs`], running the
    /// byte log's crash recovery (uncommitted tail pages are discarded).
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        opts: &PagerOptions,
        stats: IoStats,
    ) -> Result<Self> {
        Self::from_opened(ByteLog::open_with_vfs(vfs, path, opts, stats)?)
    }

    /// The [`Vfs`] the backing log lives on. [`SwtTable`](crate::SwtTable)
    /// writes its catalog sidecar through this same handle so the whole
    /// table — data and meta — shares one filesystem (and one fault
    /// injector, under `IVA_VFS=fault`).
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        self.log.vfs()
    }

    fn from_log(log: ByteLog) -> Self {
        Self {
            log,
            next_tid: 0,
            total_records: 0,
            deleted_records: 0,
        }
    }

    /// Open an existing table file.
    pub fn open(path: &Path, opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        Self::from_opened(ByteLog::open(path, opts, stats)?)
    }

    fn from_opened(log: ByteLog) -> Result<Self> {
        let h = log.user_header();
        let header = |o| le_u64(h, o).ok_or_else(|| SwtError::Corrupt("short user header".into()));
        let next_tid = header(0)?;
        let total_records = header(8)?;
        let deleted_records = header(16)?;
        if deleted_records > total_records || total_records > log.len() {
            return Err(SwtError::Corrupt(format!(
                "table header counters inconsistent: {total_records} records \
                 ({deleted_records} deleted) in a {}-byte file",
                log.len()
            )));
        }
        Ok(Self {
            log,
            next_tid,
            total_records,
            deleted_records,
        })
    }

    /// Append a tuple, returning its assigned tuple id and record pointer.
    pub fn append(&mut self, tuple: &Tuple) -> Result<(Tid, RecordPtr)> {
        let tid = self.next_tid;
        let ptr = self.append_with_tid(tid, tuple)?;
        Ok((tid, ptr))
    }

    /// Append a tuple under a caller-chosen tuple id (used by rebuilds to
    /// preserve ids). Advances `next_tid` past `tid` if needed.
    pub fn append_with_tid(&mut self, tid: Tid, tuple: &Tuple) -> Result<RecordPtr> {
        let mut payload = Vec::new();
        encode_record(tuple, &mut payload)?;
        self.next_tid = self.next_tid.max(tid + 1);
        self.total_records += 1;

        let mut rec = Vec::with_capacity(RECORD_HEADER + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&tid.to_le_bytes());
        rec.push(0); // flags
        rec.extend_from_slice(&payload);
        let pos = self.log.append(&rec)?;
        Ok(RecordPtr(pos))
    }

    /// Random-access fetch of the record at `ptr`.
    pub fn get(&self, ptr: RecordPtr) -> Result<StoredRecord> {
        let mut header = [0u8; RECORD_HEADER];
        self.log.read_at(ptr.0, &mut header)?;
        let (rec_len, tid, flags) = parse_record_header(ptr.0, &header)?;
        let mut payload = vec![0u8; rec_len];
        self.log
            .read_at(ptr.0 + RECORD_HEADER as u64, &mut payload)?;
        let (tuple, used) = decode_record(&payload)?;
        if used != rec_len {
            return Err(SwtError::Corrupt(format!(
                "record at {} decoded {used} of {rec_len} bytes",
                ptr.0
            )));
        }
        Ok(StoredRecord {
            tid,
            deleted: flags & FLAG_DELETED != 0,
            tuple,
        })
    }

    /// Batched random-access fetch: results come back in input order, but
    /// the disk I/O happens in **page order** — the pointers' pages are
    /// sorted, deduplicated and coalesced into sequential runs, so several
    /// records on one page cost a single read and adjacent pages cost one
    /// seek (see [`Pager::read_batch`](iva_storage::Pager::read_batch)).
    ///
    /// Two passes: pin the record headers first (their lengths are not
    /// known up front), then pin every page the full records span and
    /// decode. Duplicate pointers are fine and decode independently.
    pub fn get_batch(&self, ptrs: &[RecordPtr]) -> Result<Vec<StoredRecord>> {
        if ptrs.len() <= 1 {
            return ptrs.iter().map(|&p| self.get(p)).collect();
        }
        // Pass 1: headers, page-coalesced.
        let mut ids = Vec::new();
        for &p in ptrs {
            self.log.pages_spanning(p.0, RECORD_HEADER, &mut ids);
        }
        let header_pins = self.log.pin_pages(&ids)?;
        let mut metas: Vec<(usize, Tid, u8)> = Vec::with_capacity(ptrs.len());
        ids.clear();
        for &p in ptrs {
            let mut header = [0u8; RECORD_HEADER];
            self.log.read_at_pinned(p.0, &mut header, &header_pins)?;
            let (rec_len, tid, flags) = parse_record_header(p.0, &header)?;
            metas.push((rec_len, tid, flags));
            self.log
                .pages_spanning(p.0 + RECORD_HEADER as u64, rec_len, &mut ids);
        }
        // Pass 2: payloads. Header pages were published to the buffer pool
        // by pass 1, so re-pinning shared pages here is a cache hit.
        let pins = self.log.pin_pages(&ids)?;
        let mut out = Vec::with_capacity(ptrs.len());
        for (&p, &(rec_len, tid, flags)) in ptrs.iter().zip(&metas) {
            let mut payload = vec![0u8; rec_len];
            self.log
                .read_at_pinned(p.0 + RECORD_HEADER as u64, &mut payload, &pins)?;
            let (tuple, used) = decode_record(&payload)?;
            if used != rec_len {
                return Err(SwtError::Corrupt(format!(
                    "record at {} decoded {used} of {rec_len} bytes",
                    p.0
                )));
            }
            out.push(StoredRecord {
                tid,
                deleted: flags & FLAG_DELETED != 0,
                tuple,
            });
        }
        Ok(out)
    }

    /// Tombstone the record at `ptr` (idempotent).
    pub fn mark_deleted(&mut self, ptr: RecordPtr) -> Result<()> {
        let mut header = [0u8; RECORD_HEADER];
        self.log.read_at(ptr.0, &mut header)?;
        let flags = header.last().copied().unwrap_or(0);
        if flags & FLAG_DELETED == 0 {
            self.log.write_at(ptr.0 + 12, &[flags | FLAG_DELETED])?;
            self.deleted_records += 1;
        }
        Ok(())
    }

    /// Sequential scan over all records (including tombstones).
    pub fn scan(&self) -> TableScan<'_> {
        TableScan {
            table: self,
            pos: 0,
        }
    }

    /// Next tuple id to be assigned.
    pub fn next_tid(&self) -> Tid {
        self.next_tid
    }

    /// Raise the tid floor (used by compaction so ids of tuples deleted
    /// before the rebuild are never reassigned).
    pub fn reserve_tids_below(&mut self, tid: Tid) {
        self.next_tid = self.next_tid.max(tid);
    }

    /// Total records ever appended (including tombstones).
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Records currently tombstoned.
    pub fn deleted_records(&self) -> u64 {
        self.deleted_records
    }

    /// Live (non-tombstoned) records.
    pub fn live_records(&self) -> u64 {
        self.total_records - self.deleted_records
    }

    /// Logical data bytes in the file.
    pub fn data_len(&self) -> u64 {
        self.log.len()
    }

    /// Physical file size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.log.size_bytes()
    }

    /// I/O counters of the backing pager.
    pub fn io_stats(&self) -> &IoStats {
        self.log.pager().stats()
    }

    /// Drop all cached pages (cold-start experiments).
    pub fn clear_cache(&self) {
        self.log.pager().clear_cache();
    }

    /// Resize the buffer pool (experiments keep cache-to-data ratios
    /// constant across scales).
    pub fn resize_cache(&self, cache_bytes: usize) {
        self.log.pager().resize_cache(cache_bytes);
    }

    /// Toggle per-page checksum verification on reads (benchmarking hook;
    /// on by default).
    pub fn set_verify_checksums(&self, verify: bool) {
        self.log.pager().set_verify_checksums(verify);
    }

    /// Persist header and tail page.
    pub fn flush(&mut self) -> Result<()> {
        let mut h = [0u8; USER_HEADER_LEN];
        let words = [self.next_tid, self.total_records, self.deleted_records];
        for (dst, src) in h.chunks_exact_mut(8).zip(words) {
            dst.copy_from_slice(&src.to_le_bytes());
        }
        self.log.set_user_header(h);
        self.log.flush()?;
        Ok(())
    }
}

/// Parse a stored-record header `[rec_len: u32][tid: u64][flags: u8]`.
fn parse_record_header(at: u64, header: &[u8; RECORD_HEADER]) -> Result<(usize, Tid, u8)> {
    let corrupt = || SwtError::Corrupt(format!("record header at {at} unreadable"));
    let rec_len = le_u32(header, 0).ok_or_else(corrupt)? as usize;
    let tid = le_u64(header, 4).ok_or_else(corrupt)?;
    let flags = *header.get(12).ok_or_else(corrupt)?;
    Ok((rec_len, tid, flags))
}

/// Iterator over `(ptr, record)` pairs in file order.
pub struct TableScan<'a> {
    table: &'a TableFile,
    pos: u64,
}

impl Iterator for TableScan<'_> {
    type Item = Result<(RecordPtr, StoredRecord)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.table.log.len() {
            return None;
        }
        let ptr = RecordPtr(self.pos);
        match self.table.get(ptr) {
            Ok(rec) => {
                // Advance past header + payload.
                let mut len_buf = [0u8; 4];
                if let Err(e) = self.table.log.read_at(self.pos, &mut len_buf) {
                    return Some(Err(e.into()));
                }
                let rec_len = u32::from_le_bytes(len_buf) as u64;
                self.pos += RECORD_HEADER as u64 + rec_len;
                Some(Ok((ptr, rec)))
            }
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use crate::value::Value;
    use iva_storage::{RealVfs, Vfs};

    fn opts() -> PagerOptions {
        PagerOptions {
            page_size: 256,
            cache_bytes: 256 * 8,
        }
    }

    fn tuple(i: u64) -> Tuple {
        Tuple::new()
            .with(AttrId(0), Value::text(format!("item number {i}")))
            .with(AttrId(1), Value::num(i as f64 * 1.5))
    }

    #[test]
    fn append_get_roundtrip() {
        let mut t = TableFile::create_mem(&opts(), IoStats::new()).unwrap();
        let (tid0, p0) = t.append(&tuple(0)).unwrap();
        let (tid1, p1) = t.append(&tuple(1)).unwrap();
        assert_eq!((tid0, tid1), (0, 1));
        assert_ne!(p0, p1);

        let r = t.get(p1).unwrap();
        assert_eq!(r.tid, 1);
        assert!(!r.deleted);
        assert_eq!(r.tuple, tuple(1));
    }

    #[test]
    fn tombstone_is_idempotent() {
        let mut t = TableFile::create_mem(&opts(), IoStats::new()).unwrap();
        let (_, p) = t.append(&tuple(7)).unwrap();
        t.mark_deleted(p).unwrap();
        t.mark_deleted(p).unwrap();
        assert!(t.get(p).unwrap().deleted);
        assert_eq!(t.deleted_records(), 1);
        assert_eq!(t.live_records(), 0);
    }

    #[test]
    fn scan_returns_all_in_order() {
        let mut t = TableFile::create_mem(&opts(), IoStats::new()).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..50 {
            ptrs.push(t.append(&tuple(i)).unwrap().1);
        }
        t.mark_deleted(ptrs[10]).unwrap();
        let scanned: Vec<_> = t.scan().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(scanned.len(), 50);
        for (i, (ptr, rec)) in scanned.iter().enumerate() {
            assert_eq!(*ptr, ptrs[i]);
            assert_eq!(rec.tid, i as u64);
            assert_eq!(rec.deleted, i == 10);
            assert_eq!(rec.tuple, tuple(i as u64));
        }
    }

    #[test]
    fn persistence() {
        let dir = std::env::temp_dir().join(format!("iva-tbl-{}", std::process::id()));
        RealVfs.create_dir_all(&dir).unwrap();
        let path = dir.join("t.tbl");
        let p;
        {
            let mut t = TableFile::create(&path, &opts(), IoStats::new()).unwrap();
            p = t.append(&tuple(0)).unwrap().1;
            t.append(&tuple(1)).unwrap();
            t.mark_deleted(p).unwrap();
            t.flush().unwrap();
        }
        let t = TableFile::open(&path, &opts(), IoStats::new()).unwrap();
        assert_eq!(t.next_tid(), 2);
        assert_eq!(t.total_records(), 2);
        assert_eq!(t.deleted_records(), 1);
        assert!(t.get(p).unwrap().deleted);
        RealVfs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn get_batch_matches_serial_gets() {
        let mut t = TableFile::create_mem(&opts(), IoStats::new()).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..60 {
            ptrs.push(t.append(&tuple(i)).unwrap().1);
        }
        t.mark_deleted(ptrs[5]).unwrap();
        // Scattered, unsorted, with a duplicate; includes a record in the
        // unflushed tail page.
        let req = [
            ptrs[41], ptrs[3], ptrs[59], ptrs[5], ptrs[3], ptrs[20], ptrs[33],
        ];
        let batch = t.get_batch(&req).unwrap();
        assert_eq!(batch.len(), req.len());
        for (p, rec) in req.iter().zip(&batch) {
            assert_eq!(rec, &t.get(*p).unwrap());
        }
        assert!(batch[3].deleted);
        assert!(t.get_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn get_batch_reads_each_page_once() {
        // Cache big enough to keep pass-1 header pins resident for pass 2.
        let opts = PagerOptions {
            page_size: 256,
            cache_bytes: 256 * 64,
        };
        let mut t = TableFile::create_mem(&opts, IoStats::new()).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..60 {
            ptrs.push(t.append(&tuple(i)).unwrap().1);
        }
        t.flush().unwrap();
        t.clear_cache();
        let before = t.io_stats().snapshot();
        let batch = t.get_batch(&ptrs).unwrap();
        let d = t.io_stats().snapshot().since(&before);
        assert_eq!(batch.len(), 60);
        // Fetching every record must read each data page at most once;
        // pages form one adjacent run, so (almost) all of it sequential.
        let pages = t.size_bytes() / 256;
        assert!(
            d.disk_page_reads <= pages,
            "{} reads for a {}-page file",
            d.disk_page_reads,
            pages
        );
        assert!(d.random_seeks <= 2, "run not coalesced: {d:?}");
    }

    #[test]
    fn get_at_bad_ptr_fails() {
        let mut t = TableFile::create_mem(&opts(), IoStats::new()).unwrap();
        t.append(&tuple(0)).unwrap();
        assert!(t.get(RecordPtr(1_000_000)).is_err());
    }

    #[test]
    fn empty_tuple_storable() {
        let mut t = TableFile::create_mem(&opts(), IoStats::new()).unwrap();
        let (_, p) = t.append(&Tuple::new()).unwrap();
        assert!(t.get(p).unwrap().tuple.is_empty());
    }
}
