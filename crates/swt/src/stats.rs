//! lint:scope(no-panic-decode)
//! Per-attribute table statistics.
//!
//! The iVA-file's attribute list carries `df` (tuples defining the
//! attribute) and `str` (total strings on the attribute) to drive the
//! vector-list type selection (Sec. III-D), and the relative-domain numeric
//! encoding needs each numerical attribute's `[min, max]` (Sec. III-C).
//! These are maintained incrementally on insert and recomputed on rebuild
//! (deletions intentionally do not decrement — the paper leaves vector
//! lists untouched until the periodic cleanup).

use crate::schema::AttrId;
use crate::value::{Tuple, Value};
use iva_storage::codec::{le_f64, le_u32, le_u64};

/// Statistics for one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrStats {
    /// Number of tuples with a defined value (the paper's `df`).
    pub df: u64,
    /// Total number of strings over all defined values (the paper's `str`;
    /// 0 for numerical attributes).
    pub str_count: u64,
    /// Minimum numerical value seen (`+inf` when none).
    pub min: f64,
    /// Maximum numerical value seen (`-inf` when none).
    pub max: f64,
}

impl Default for AttrStats {
    fn default() -> Self {
        Self {
            df: 0,
            str_count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl AttrStats {
    /// True if at least one numerical value has been observed.
    pub fn has_domain(&self) -> bool {
        self.min <= self.max
    }
}

/// Statistics for the whole table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    per_attr: Vec<AttrStats>,
    /// Total tuples inserted (including later-deleted ones, until rebuild).
    pub tuple_count: u64,
}

impl TableStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make sure the per-attribute vector covers `n` attributes.
    pub fn ensure_attrs(&mut self, n: usize) {
        if self.per_attr.len() < n {
            self.per_attr.resize_with(n, AttrStats::default);
        }
    }

    /// Account for an inserted tuple.
    pub fn observe_insert(&mut self, tuple: &Tuple) {
        self.tuple_count += 1;
        for (attr, value) in tuple.iter() {
            self.ensure_attrs(attr.index() + 1);
            let Some(s) = self.per_attr.get_mut(attr.index()) else {
                continue;
            };
            s.df += 1;
            match value {
                Value::Num(v) => {
                    s.min = s.min.min(*v);
                    s.max = s.max.max(*v);
                }
                Value::Text(strings) => {
                    s.str_count += strings.len() as u64;
                }
            }
        }
    }

    /// Statistics of one attribute (default if never observed).
    pub fn attr(&self, attr: AttrId) -> AttrStats {
        self.per_attr.get(attr.index()).cloned().unwrap_or_default()
    }

    /// Number of attributes covered.
    pub fn attr_count(&self) -> usize {
        self.per_attr.len()
    }

    /// Serialize (manual codec).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.per_attr.len() * 32);
        out.extend_from_slice(&self.tuple_count.to_le_bytes());
        out.extend_from_slice(&(self.per_attr.len() as u32).to_le_bytes());
        for s in &self.per_attr {
            out.extend_from_slice(&s.df.to_le_bytes());
            out.extend_from_slice(&s.str_count.to_le_bytes());
            out.extend_from_slice(&s.min.to_bits().to_le_bytes());
            out.extend_from_slice(&s.max.to_bits().to_le_bytes());
        }
        out
    }

    /// Deserialize bytes from [`TableStats::encode`].
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let tuple_count = le_u64(buf, 0)?;
        let n = le_u32(buf, 8)? as usize;
        if buf.len() != 12 + n.checked_mul(32)? {
            return None;
        }
        let mut per_attr = Vec::with_capacity(n);
        for i in 0..n {
            let base = 12 + i * 32;
            per_attr.push(AttrStats {
                df: le_u64(buf, base)?,
                str_count: le_u64(buf, base + 8)?,
                min: le_f64(buf, base + 16)?,
                max: le_f64(buf, base + 24)?,
            });
        }
        Some(Self {
            per_attr,
            tuple_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_updates_counts_and_domain() {
        let mut st = TableStats::new();
        st.observe_insert(
            &Tuple::new()
                .with(AttrId(0), Value::texts(["a", "b"]))
                .with(AttrId(2), Value::num(5.0)),
        );
        st.observe_insert(
            &Tuple::new()
                .with(AttrId(0), Value::text("c"))
                .with(AttrId(2), Value::num(-3.0)),
        );
        assert_eq!(st.tuple_count, 2);
        assert_eq!(st.attr(AttrId(0)).df, 2);
        assert_eq!(st.attr(AttrId(0)).str_count, 3);
        let a2 = st.attr(AttrId(2));
        assert_eq!((a2.min, a2.max), (-3.0, 5.0));
        assert!(a2.has_domain());
        // Never-seen attribute.
        let a1 = st.attr(AttrId(1));
        assert_eq!(a1.df, 0);
        assert!(!a1.has_domain());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut st = TableStats::new();
        st.observe_insert(
            &Tuple::new()
                .with(AttrId(1), Value::num(1.25))
                .with(AttrId(3), Value::text("x")),
        );
        let bytes = st.encode();
        let back = TableStats::decode(&bytes).unwrap();
        assert_eq!(back, st);
        assert!(TableStats::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(TableStats::decode(&[]).is_none());
    }

    #[test]
    fn empty_domain_survives_roundtrip() {
        let mut st = TableStats::new();
        st.ensure_attrs(2);
        let back = TableStats::decode(&st.encode()).unwrap();
        assert!(!back.attr(AttrId(0)).has_domain());
    }
}
