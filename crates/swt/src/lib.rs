//! # iva-swt
//!
//! The sparse wide table (SWT) substrate of the iVA-file reproduction: a
//! single physically-stored table with thousands of attributes, most of
//! them undefined (*ndf*) in any given tuple (Sec. I-A and III-A of the
//! paper). Tuples are stored row-wise in the *interpreted format* of
//! Beckmann et al. — each record lists only its defined `(attribute,
//! value)` pairs — in an append-only, page-cached table file supporting
//! fast sequential scans, random fetch by record pointer, tombstone
//! deletes and compaction.

#![warn(missing_docs)]

mod error;
mod record;
mod schema;
mod stats;
mod swt;
mod table;
mod value;

pub use error::{Result, SwtError};
pub use record::{decode_record, encode_record, record_len};
pub use schema::{AttrDef, AttrId, AttrType, Catalog};
pub use stats::{AttrStats, TableStats};
pub use swt::SwtTable;
pub use table::{RecordPtr, StoredRecord, TableFile, TableScan, Tid};
pub use value::{Tuple, Value};
