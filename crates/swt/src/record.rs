//! lint:scope(no-panic-decode)
//! The interpreted record format.
//!
//! Beckmann et al. concluded "the best option is to store the data
//! horizontally in an interpreted format" (Sec. II-A), and the paper's
//! table file "adopts the row-wise storage structure, such as the
//! interpreted schema" (Sec. III-D). A record is a self-describing sequence
//! of `(attribute id, type, payload)` fields — undefined attributes simply
//! do not appear, which is what makes the format efficient for sparse data.
//!
//! Layout (little-endian):
//!
//! ```text
//! [n_fields: u16]
//!   per field: [attr_id: u32][tag: u8]
//!     tag 0 (numeric): [f64: 8B]
//!     tag 1 (text):    [n_strings: u8] per string: [len: u16][bytes]
//! ```

use crate::error::{Result, SwtError};
use crate::schema::AttrId;
use crate::value::{Tuple, Value};
use iva_storage::codec::{le_u16, le_u32, le_u64};

const TAG_NUM: u8 = 0;
const TAG_TEXT: u8 = 1;

/// Encode a tuple into the interpreted format, appending to `out`.
pub fn encode_record(tuple: &Tuple, out: &mut Vec<u8>) -> Result<()> {
    tuple.validate()?;
    if tuple.arity() > u16::MAX as usize {
        return Err(SwtError::InvalidArgument(
            "tuple with more than 65535 fields".into(),
        ));
    }
    out.extend_from_slice(&(tuple.arity() as u16).to_le_bytes());
    for (attr, value) in tuple.iter() {
        out.extend_from_slice(&attr.0.to_le_bytes());
        match value {
            Value::Num(v) => {
                out.push(TAG_NUM);
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            Value::Text(strings) => {
                out.push(TAG_TEXT);
                out.push(strings.len() as u8);
                for s in strings {
                    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
    }
    Ok(())
}

/// Encoded size of a tuple in the interpreted format.
pub fn record_len(tuple: &Tuple) -> usize {
    let mut len = 2;
    for (_, value) in tuple.iter() {
        len += 4 + 1;
        match value {
            Value::Num(_) => len += 8,
            Value::Text(strings) => {
                len += 1;
                for s in strings {
                    len += 2 + s.len();
                }
            }
        }
    }
    len
}

/// Decode a record produced by [`encode_record`]. Returns the tuple and the
/// number of bytes consumed.
pub fn decode_record(buf: &[u8]) -> Result<(Tuple, usize)> {
    let corrupt = |m: &str| SwtError::Corrupt(format!("record: {m}"));
    let n_fields = le_u16(buf, 0).ok_or_else(|| corrupt("truncated field count"))? as usize;
    let mut pos = 2;
    let mut tuple = Tuple::new();
    for _ in 0..n_fields {
        let attr = AttrId(le_u32(buf, pos).ok_or_else(|| corrupt("truncated field header"))?);
        let tag = *buf
            .get(pos + 4)
            .ok_or_else(|| corrupt("truncated field header"))?;
        pos += 5;
        match tag {
            TAG_NUM => {
                let bits = le_u64(buf, pos).ok_or_else(|| corrupt("truncated numeric payload"))?;
                pos += 8;
                tuple.set(attr, Value::Num(f64::from_bits(bits)));
            }
            TAG_TEXT => {
                let n_strings = *buf
                    .get(pos)
                    .ok_or_else(|| corrupt("truncated string count"))?
                    as usize;
                pos += 1;
                if n_strings == 0 {
                    return Err(corrupt("empty text value"));
                }
                let mut strings = Vec::with_capacity(n_strings);
                for _ in 0..n_strings {
                    let slen = le_u16(buf, pos).ok_or_else(|| corrupt("truncated string length"))?
                        as usize;
                    pos += 2;
                    let bytes = buf
                        .get(pos..pos + slen)
                        .ok_or_else(|| corrupt("truncated string bytes"))?;
                    let s = std::str::from_utf8(bytes).map_err(|_| corrupt("non-utf8 string"))?;
                    strings.push(s.to_string());
                    pos += slen;
                }
                tuple.set(attr, Value::Text(strings));
            }
            x => return Err(corrupt(&format!("unknown field tag {x}"))),
        }
    }
    Ok((tuple, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tuple() -> Tuple {
        Tuple::new()
            .with(AttrId(0), Value::text("Digital Camera"))
            .with(AttrId(3), Value::num(230.0))
            .with(AttrId(4), Value::text("Canon"))
            .with(AttrId(6), Value::num(10_000_000.0))
            .with(AttrId(9), Value::texts(["Computer", "Software"]))
    }

    #[test]
    fn roundtrip() {
        let t = sample_tuple();
        let mut buf = Vec::new();
        encode_record(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), record_len(&t));
        let (back, used) = decode_record(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, t);
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t = Tuple::new();
        let mut buf = Vec::new();
        encode_record(&t, &mut buf).unwrap();
        let (back, used) = decode_record(&buf).unwrap();
        assert_eq!(used, 2);
        assert!(back.is_empty());
    }

    #[test]
    fn trailing_bytes_ignored() {
        let t = sample_tuple();
        let mut buf = Vec::new();
        encode_record(&t, &mut buf).unwrap();
        let n = buf.len();
        buf.extend_from_slice(b"garbage-after-record");
        let (back, used) = decode_record(&buf).unwrap();
        assert_eq!(used, n);
        assert_eq!(back, t);
    }

    #[test]
    fn special_floats_roundtrip() {
        // Negative zero and subnormals must survive bit-exactly.
        let t = Tuple::new()
            .with(AttrId(0), Value::num(-0.0))
            .with(AttrId(1), Value::num(f64::MIN_POSITIVE / 2.0));
        let mut buf = Vec::new();
        encode_record(&t, &mut buf).unwrap();
        let (back, _) = decode_record(&buf).unwrap();
        match back.get(AttrId(0)) {
            Some(Value::Num(v)) => assert!(v.is_sign_negative() && *v == 0.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn utf8_multibyte_strings() {
        let t = Tuple::new().with(AttrId(0), Value::texts(["数码相机", "カメラ"]));
        let mut buf = Vec::new();
        encode_record(&t, &mut buf).unwrap();
        let (back, _) = decode_record(&buf).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[1, 0]).is_err()); // one field promised, none present
                                                  // Valid header, bad tag.
        let buf = [1u8, 0, 0, 0, 0, 0, 99];
        assert!(decode_record(&buf).is_err());
        // Non-utf8 string bytes.
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.push(TAG_TEXT);
        buf.push(1);
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(decode_record(&buf).is_err());
    }

    #[test]
    fn rejects_invalid_values_at_encode() {
        let t = Tuple::new().with(AttrId(0), Value::num(f64::NAN));
        let mut buf = Vec::new();
        assert!(encode_record(&t, &mut buf).is_err());
    }
}
