//! lint:scope(no-panic-decode)
//! Attribute catalog.
//!
//! A sparse wide table has a single, ever-growing set of attributes `A`
//! (thousands in real CWMS datasets — Sec. I-A reports 1,147 for the Google
//! Base subset). Each attribute is either *text* (a value is a non-empty set
//! of finite-length strings) or *numerical* (Sec. III-A). Attributes are
//! "rarely deleted" (Sec. III-D), so ids are dense and positional.

use std::collections::HashMap;

use crate::error::{Result, SwtError};
use iva_storage::codec::{le_u16, le_u32};

/// Dense positional attribute identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl AttrId {
    /// Index into catalog-aligned arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AttrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Attribute domain type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// A non-empty set of strings per defined cell.
    Text,
    /// A single f64 per defined cell.
    Numeric,
}

/// One attribute definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Human-readable attribute name (unique).
    pub name: String,
    /// Domain type.
    pub ty: AttrType,
}

/// The table's attribute catalog: name ↔ id ↔ type.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    attrs: Vec<AttrDef>,
    by_name: HashMap<String, AttrId>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define an attribute, or return the existing id if an attribute of
    /// the same name and type already exists. Redefining with a different
    /// type is an error.
    pub fn define(&mut self, name: &str, ty: AttrType) -> Result<AttrId> {
        if let Some(&id) = self.by_name.get(name) {
            let existing = self
                .attrs
                .get(id.index())
                .ok_or_else(|| SwtError::Corrupt("catalog name map out of sync".into()))?;
            if existing.ty != ty {
                return Err(SwtError::TypeMismatch {
                    attr: name.to_string(),
                    expected: match existing.ty {
                        AttrType::Text => "text",
                        AttrType::Numeric => "numerical",
                    },
                });
            }
            return Ok(id);
        }
        let id = AttrId(self.attrs.len() as u32);
        self.attrs.push(AttrDef {
            name: name.to_string(),
            ty,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look up an attribute id by name.
    pub fn id_of(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Attribute definition by id.
    pub fn def(&self, id: AttrId) -> Option<&AttrDef> {
        self.attrs.get(id.index())
    }

    /// Attribute type by id (None if out of range).
    pub fn attr_type(&self, id: AttrId) -> Option<AttrType> {
        self.def(id).map(|d| d.ty)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if no attributes are defined.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterate `(id, def)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttrDef)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, d)| (AttrId(i as u32), d))
    }

    /// Serialize to bytes (manual codec: no external format dependency).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.attrs.len() as u32).to_le_bytes());
        for d in &self.attrs {
            out.push(match d.ty {
                AttrType::Text => 0,
                AttrType::Numeric => 1,
            });
            let name = d.name.as_bytes();
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
        }
        out
    }

    /// Deserialize from bytes produced by [`Catalog::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let corrupt = |m: &str| SwtError::Corrupt(format!("catalog: {m}"));
        let count = le_u32(buf, 0).ok_or_else(|| corrupt("truncated header"))? as usize;
        let mut pos = 4;
        let mut cat = Catalog::new();
        for _ in 0..count {
            let ty = match buf.get(pos) {
                Some(0) => AttrType::Text,
                Some(1) => AttrType::Numeric,
                Some(x) => return Err(corrupt(&format!("bad type tag {x}"))),
                None => return Err(corrupt("truncated entry")),
            };
            let nlen = le_u16(buf, pos + 1).ok_or_else(|| corrupt("truncated entry"))? as usize;
            pos += 3;
            let bytes = buf
                .get(pos..pos + nlen)
                .ok_or_else(|| corrupt("truncated name"))?;
            let name = std::str::from_utf8(bytes).map_err(|_| corrupt("non-utf8 name"))?;
            pos += nlen;
            cat.define(name, ty)?;
        }
        Ok(cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut c = Catalog::new();
        let price = c.define("Price", AttrType::Numeric).unwrap();
        let company = c.define("Company", AttrType::Text).unwrap();
        assert_eq!(price, AttrId(0));
        assert_eq!(company, AttrId(1));
        assert_eq!(c.id_of("Price"), Some(price));
        assert_eq!(c.attr_type(company), Some(AttrType::Text));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn redefine_same_type_is_idempotent() {
        let mut c = Catalog::new();
        let a = c.define("Year", AttrType::Numeric).unwrap();
        let b = c.define("Year", AttrType::Numeric).unwrap();
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn redefine_with_other_type_fails() {
        let mut c = Catalog::new();
        c.define("Year", AttrType::Numeric).unwrap();
        assert!(matches!(
            c.define("Year", AttrType::Text),
            Err(SwtError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut c = Catalog::new();
        c.define("Type", AttrType::Text).unwrap();
        c.define("Price", AttrType::Numeric).unwrap();
        c.define("Company", AttrType::Text).unwrap();
        c.define("附加", AttrType::Text).unwrap(); // non-ASCII name
        let bytes = c.encode();
        let back = Catalog::decode(&bytes).unwrap();
        assert_eq!(back.len(), 4);
        for (id, d) in c.iter() {
            assert_eq!(back.def(id).unwrap(), d);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Catalog::decode(&[1, 2]).is_err());
        assert!(Catalog::decode(&[9, 0, 0, 0, 7]).is_err());
    }

    #[test]
    fn unknown_lookups() {
        let c = Catalog::new();
        assert_eq!(c.id_of("nope"), None);
        assert_eq!(c.def(AttrId(0)), None);
        assert!(c.is_empty());
    }
}
