//! lint:scope(no-panic-decode)
//! The sparse wide table: catalog + statistics + table file, with typed
//! inserts and compaction.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use iva_storage::codec::le_u32;
use iva_storage::vfs::{RealVfs, Vfs};
use iva_storage::{commit, IoStats, PagerOptions};

use crate::error::{Result, SwtError};
use crate::schema::{AttrId, AttrType, Catalog};
use crate::stats::TableStats;
use crate::table::{RecordPtr, StoredRecord, TableFile, TableScan, Tid};
use crate::value::{Tuple, Value};

const META_MAGIC: u32 = 0x4956_4D54; // "IVMT"

/// A sparse wide table: the data side of the system (the index lives in
/// `iva-core`).
pub struct SwtTable {
    catalog: Catalog,
    stats: TableStats,
    file: TableFile,
    vfs: Arc<dyn Vfs>,
    meta_path: Option<PathBuf>,
}

impl SwtTable {
    /// Create a fresh disk-backed table. `base` is a path prefix: the table
    /// file lands at `<base>.tbl` and catalog/statistics at `<base>.meta`.
    pub fn create(base: &Path, opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        Self::create_with_vfs(Arc::new(RealVfs), base, opts, stats)
    }

    /// Create a fresh table on an explicit [`Vfs`].
    pub fn create_with_vfs(
        vfs: Arc<dyn Vfs>,
        base: &Path,
        opts: &PagerOptions,
        stats: IoStats,
    ) -> Result<Self> {
        let file =
            TableFile::create_with_vfs(Arc::clone(&vfs), &base.with_extension("tbl"), opts, stats)?;
        Ok(Self {
            catalog: Catalog::new(),
            stats: TableStats::new(),
            file,
            vfs,
            meta_path: Some(base.with_extension("meta")),
        })
    }

    /// Create a fresh memory-backed table (tests, property checks). The
    /// table adopts its file's [`Vfs`] — under `IVA_VFS=fault` that is the
    /// pass-through fault injector, and everything the table ever writes
    /// (including meta sidecars of compaction targets) stays on it.
    pub fn create_mem(opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        let file = TableFile::create_mem(opts, stats)?;
        let vfs = file.vfs();
        Ok(Self {
            catalog: Catalog::new(),
            stats: TableStats::new(),
            file,
            vfs,
            meta_path: None,
        })
    }

    /// Open an existing disk-backed table created with [`SwtTable::create`].
    pub fn open(base: &Path, opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        Self::open_with_vfs(Arc::new(RealVfs), base, opts, stats)
    }

    /// Open an existing table on an explicit [`Vfs`]. The catalog sidecar
    /// is a checksummed commit record; the data file runs crash recovery.
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        base: &Path,
        opts: &PagerOptions,
        stats: IoStats,
    ) -> Result<Self> {
        let file =
            TableFile::open_with_vfs(Arc::clone(&vfs), &base.with_extension("tbl"), opts, stats)?;
        let meta_path = base.with_extension("meta");
        let bytes = commit::read_commit_record(vfs.as_ref(), &meta_path)?;
        let (catalog, table_stats) = decode_meta(&bytes)?;
        Ok(Self {
            catalog,
            stats: table_stats,
            file,
            vfs,
            meta_path: Some(meta_path),
        })
    }

    /// Define (or look up) a text attribute.
    pub fn define_text(&mut self, name: &str) -> Result<AttrId> {
        self.catalog.define(name, AttrType::Text)
    }

    /// Define (or look up) a numerical attribute.
    pub fn define_numeric(&mut self, name: &str) -> Result<AttrId> {
        self.catalog.define(name, AttrType::Numeric)
    }

    /// The attribute catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Table statistics (df / str / numeric domains).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The underlying table file.
    pub fn file(&self) -> &TableFile {
        &self.file
    }

    fn check_types(&self, tuple: &Tuple) -> Result<()> {
        for (attr, value) in tuple.iter() {
            match (self.catalog.attr_type(attr), value) {
                (None, _) => {
                    return Err(SwtError::UnknownAttribute(format!("{attr}")));
                }
                (Some(AttrType::Text), Value::Num(_)) => {
                    return Err(SwtError::TypeMismatch {
                        attr: self
                            .catalog
                            .def(attr)
                            .map_or_else(|| format!("{attr}"), |d| d.name.clone()),
                        expected: "text",
                    });
                }
                (Some(AttrType::Numeric), Value::Text(_)) => {
                    return Err(SwtError::TypeMismatch {
                        attr: self
                            .catalog
                            .def(attr)
                            .map_or_else(|| format!("{attr}"), |d| d.name.clone()),
                        expected: "numerical",
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Insert a tuple (validated against the catalog).
    pub fn insert(&mut self, tuple: &Tuple) -> Result<(Tid, RecordPtr)> {
        tuple.validate()?;
        self.check_types(tuple)?;
        let out = self.file.append(tuple)?;
        self.stats.ensure_attrs(self.catalog.len());
        self.stats.observe_insert(tuple);
        Ok(out)
    }

    /// Insert a tuple under a caller-chosen tid (validated against the
    /// catalog). Used by the segmented write path when sealing a memtable
    /// or merging segments: the copy must preserve the tids the original
    /// records were acknowledged under.
    pub fn insert_with_tid(&mut self, tid: Tid, tuple: &Tuple) -> Result<RecordPtr> {
        tuple.validate()?;
        self.check_types(tuple)?;
        let ptr = self.file.append_with_tid(tid, tuple)?;
        self.stats.ensure_attrs(self.catalog.len());
        self.stats.observe_insert(tuple);
        Ok(ptr)
    }

    /// Never assign a tid below `tid`, even though no record carries it.
    /// A sealed segment reserves the global watermark so later inserts
    /// into a fresh memtable continue the same tid sequence.
    pub fn reserve_tids_below(&mut self, tid: Tid) {
        self.file.reserve_tids_below(tid);
    }

    /// Replace the catalog wholesale. The segmented write path keeps one
    /// global catalog (attributes are defined once, for every tier) and
    /// stamps it onto fresh memtables and merged segment tables.
    pub fn adopt_catalog(&mut self, catalog: Catalog) {
        self.catalog = catalog;
        self.stats.ensure_attrs(self.catalog.len());
    }

    /// Tombstone the record at `ptr`.
    pub fn delete(&mut self, ptr: RecordPtr) -> Result<()> {
        self.file.mark_deleted(ptr)
    }

    /// Fetch the record at `ptr`.
    pub fn get(&self, ptr: RecordPtr) -> Result<StoredRecord> {
        self.file.get(ptr)
    }

    /// Batched fetch: results in input order, disk I/O page-ordered and
    /// coalesced (see [`TableFile::get_batch`]).
    pub fn get_batch(&self, ptrs: &[RecordPtr]) -> Result<Vec<StoredRecord>> {
        self.file.get_batch(ptrs)
    }

    /// Sequential scan of all records.
    pub fn scan(&self) -> TableScan<'_> {
        self.file.scan()
    }

    /// Copy all live records into a fresh table (same catalog), preserving
    /// tuple ids, recomputing statistics, and reclaiming tombstoned space —
    /// the table-file half of the paper's periodic cleanup (Sec. IV-B).
    /// Returns the new table and the `(tid, new ptr)` pairs in tid order.
    pub fn compact_into(
        &self,
        base: Option<&Path>,
        opts: &PagerOptions,
        io: IoStats,
    ) -> Result<(SwtTable, Vec<(Tid, RecordPtr)>)> {
        let mut fresh = match base {
            Some(b) => SwtTable::create_with_vfs(Arc::clone(&self.vfs), b, opts, io)?,
            None => SwtTable::create_mem(opts, io)?,
        };
        fresh.catalog = self.catalog.clone();
        // Never reassign a tid that existed before the rebuild, even if its
        // tuple was deleted.
        fresh.file.reserve_tids_below(self.file.next_tid());
        let mut mapping = Vec::new();
        for item in self.scan() {
            let (_, rec) = item?;
            if rec.deleted {
                continue;
            }
            let ptr = fresh.file.append_with_tid(rec.tid, &rec.tuple)?;
            fresh.stats.ensure_attrs(fresh.catalog.len());
            fresh.stats.observe_insert(&rec.tuple);
            mapping.push((rec.tid, ptr));
        }
        fresh.flush()?;
        Ok((fresh, mapping))
    }

    /// Persist data file and catalog/statistics sidecar. The sidecar is
    /// replaced atomically (write-new → fsync → rename), so a crash during
    /// flush leaves either the old or the new catalog, never a torn one.
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush()?;
        if let Some(path) = &self.meta_path {
            commit::write_commit_record(
                self.vfs.as_ref(),
                path,
                &encode_meta(&self.catalog, &self.stats),
            )?;
        }
        Ok(())
    }
}

fn encode_meta(catalog: &Catalog, stats: &TableStats) -> Vec<u8> {
    let cat = catalog.encode();
    let st = stats.encode();
    let mut out = Vec::with_capacity(12 + cat.len() + st.len());
    out.extend_from_slice(&META_MAGIC.to_le_bytes());
    out.extend_from_slice(&(cat.len() as u32).to_le_bytes());
    out.extend_from_slice(&cat);
    out.extend_from_slice(&(st.len() as u32).to_le_bytes());
    out.extend_from_slice(&st);
    out
}

fn decode_meta(buf: &[u8]) -> Result<(Catalog, TableStats)> {
    let corrupt = |m: &str| SwtError::Corrupt(format!("meta: {m}"));
    if le_u32(buf, 0) != Some(META_MAGIC) {
        return Err(corrupt("bad magic"));
    }
    let cat_len = le_u32(buf, 4).ok_or_else(|| corrupt("truncated header"))? as usize;
    let cat_bytes = buf
        .get(8..8 + cat_len)
        .ok_or_else(|| corrupt("truncated catalog"))?;
    let catalog = Catalog::decode(cat_bytes)?;
    let st_off = 8 + cat_len;
    let st_len = le_u32(buf, st_off).ok_or_else(|| corrupt("truncated stats header"))? as usize;
    let st_bytes = buf
        .get(st_off + 4..st_off + 4 + st_len)
        .ok_or_else(|| corrupt("truncated stats"))?;
    let stats = TableStats::decode(st_bytes).ok_or_else(|| corrupt("bad stats"))?;
    Ok((catalog, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iva_storage::{RealVfs, Vfs};

    fn opts() -> PagerOptions {
        PagerOptions {
            page_size: 256,
            cache_bytes: 4096,
        }
    }

    fn camera_table() -> (SwtTable, AttrId, AttrId, AttrId) {
        let mut t = SwtTable::create_mem(&opts(), IoStats::new()).unwrap();
        let ty = t.define_text("Type").unwrap();
        let price = t.define_numeric("Price").unwrap();
        let company = t.define_text("Company").unwrap();
        (t, ty, price, company)
    }

    #[test]
    fn typed_insert_and_get() {
        let (mut t, ty, price, company) = camera_table();
        let tuple = Tuple::new()
            .with(ty, Value::text("Digital Camera"))
            .with(price, Value::num(230.0))
            .with(company, Value::text("Canon"));
        let (tid, ptr) = t.insert(&tuple).unwrap();
        assert_eq!(tid, 0);
        assert_eq!(t.get(ptr).unwrap().tuple, tuple);
        assert_eq!(t.stats().tuple_count, 1);
        assert_eq!(t.stats().attr(price).min, 230.0);
    }

    #[test]
    fn insert_rejects_type_mismatch_and_unknown_attr() {
        let (mut t, ty, price, _) = camera_table();
        let bad_type = Tuple::new().with(ty, Value::num(1.0));
        assert!(matches!(
            t.insert(&bad_type),
            Err(SwtError::TypeMismatch { .. })
        ));
        let bad_type2 = Tuple::new().with(price, Value::text("x"));
        assert!(matches!(
            t.insert(&bad_type2),
            Err(SwtError::TypeMismatch { .. })
        ));
        let unknown = Tuple::new().with(AttrId(99), Value::num(1.0));
        assert!(matches!(
            t.insert(&unknown),
            Err(SwtError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn compact_drops_tombstones_and_keeps_tids() {
        let (mut t, ty, price, _) = camera_table();
        let mut ptrs = Vec::new();
        for i in 0..10 {
            let tuple = Tuple::new()
                .with(ty, Value::text(format!("item {i}")))
                .with(price, Value::num(i as f64));
            ptrs.push(t.insert(&tuple).unwrap().1);
        }
        t.delete(ptrs[3]).unwrap();
        t.delete(ptrs[7]).unwrap();

        let (fresh, mapping) = t.compact_into(None, &opts(), IoStats::new()).unwrap();
        assert_eq!(mapping.len(), 8);
        assert!(mapping.iter().all(|(tid, _)| *tid != 3 && *tid != 7));
        assert_eq!(fresh.file().total_records(), 8);
        assert_eq!(fresh.file().deleted_records(), 0);
        assert_eq!(fresh.stats().tuple_count, 8);
        // Tid preserved; content matches.
        for (tid, ptr) in &mapping {
            let rec = fresh.get(*ptr).unwrap();
            assert_eq!(rec.tid, *tid);
        }
        // next_tid not reset below old ids.
        assert!(fresh.file().next_tid() >= 10);
    }

    #[test]
    fn disk_persistence_with_meta() {
        let dir = std::env::temp_dir().join(format!("iva-swt-{}", std::process::id()));
        RealVfs.create_dir_all(&dir).unwrap();
        let base = dir.join("data");
        {
            let mut t = SwtTable::create(&base, &opts(), IoStats::new()).unwrap();
            let a = t.define_text("Name").unwrap();
            let b = t.define_numeric("Year").unwrap();
            t.insert(
                &Tuple::new()
                    .with(a, Value::text("Thriller"))
                    .with(b, Value::num(1982.0)),
            )
            .unwrap();
            t.flush().unwrap();
        }
        let t = SwtTable::open(&base, &opts(), IoStats::new()).unwrap();
        assert_eq!(t.catalog().len(), 2);
        assert_eq!(t.catalog().id_of("Year"), Some(AttrId(1)));
        assert_eq!(t.stats().tuple_count, 1);
        assert_eq!(t.stats().attr(AttrId(1)).max, 1982.0);
        let recs: Vec<_> = t.scan().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(recs.len(), 1);
        RealVfs.remove_dir_all(&dir).unwrap();
    }
}
