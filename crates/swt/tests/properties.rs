//! Property tests for the sparse wide table: the interpreted record codec
//! and the table file must round-trip arbitrary tuples, and compaction
//! must preserve exactly the live records.

use proptest::prelude::*;

use iva_storage::{IoStats, PagerOptions};
use iva_swt::{decode_record, encode_record, record_len, AttrId, TableFile, Tuple, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1e12f64..1e12).prop_map(Value::num),
        proptest::collection::vec("[ -~]{1,40}", 1..4).prop_map(Value::texts),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec((0u32..500, arb_value()), 0..10).prop_map(|fields| {
        let mut t = Tuple::new();
        for (a, v) in fields {
            t.set(AttrId(a), v);
        }
        t
    })
}

fn opts() -> PagerOptions {
    PagerOptions {
        page_size: 256,
        cache_bytes: 4096,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn record_roundtrip(t in arb_tuple()) {
        let mut buf = Vec::new();
        encode_record(&t, &mut buf).unwrap();
        prop_assert_eq!(buf.len(), record_len(&t));
        let (back, used) = decode_record(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back, t);
    }

    #[test]
    fn record_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        // Arbitrary bytes must decode cleanly or error — never panic.
        let _ = decode_record(&bytes);
    }

    #[test]
    fn table_file_is_a_faithful_log(
        tuples in proptest::collection::vec(arb_tuple(), 1..25),
        delete_mask in proptest::collection::vec(any::<bool>(), 25),
    ) {
        let mut table = TableFile::create_mem(&opts(), IoStats::new()).unwrap();
        let mut ptrs = Vec::new();
        for t in &tuples {
            ptrs.push(table.append(t).unwrap());
        }
        // Random deletions.
        let mut deleted = vec![false; tuples.len()];
        for (i, &(tid, ptr)) in ptrs.iter().enumerate() {
            if delete_mask[i % delete_mask.len()] && tid % 2 == 0 {
                table.mark_deleted(ptr).unwrap();
                deleted[i] = true;
            }
        }
        // Random access agrees.
        for (i, &(tid, ptr)) in ptrs.iter().enumerate() {
            let rec = table.get(ptr).unwrap();
            prop_assert_eq!(rec.tid, tid);
            prop_assert_eq!(rec.deleted, deleted[i]);
            prop_assert_eq!(&rec.tuple, &tuples[i]);
        }
        // Scan agrees, in order.
        let scanned: Vec<_> = table.scan().collect::<Result<Vec<_>, _>>().unwrap();
        prop_assert_eq!(scanned.len(), tuples.len());
        for (i, (ptr, rec)) in scanned.iter().enumerate() {
            prop_assert_eq!(*ptr, ptrs[i].1);
            prop_assert_eq!(&rec.tuple, &tuples[i]);
        }
        prop_assert_eq!(table.live_records() as usize,
            deleted.iter().filter(|d| !**d).count());
    }
}
