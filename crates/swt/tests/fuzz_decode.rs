//! Fuzz-style decoder hardening: every deserializer of the table layer
//! must reject arbitrary and mutated bytes with a typed error — never a
//! panic, never an out-of-bounds slice.

use proptest::prelude::*;

use iva_swt::{decode_record, encode_record, AttrId, AttrType, Catalog, TableStats, Tuple, Value};

fn sample_tuple() -> Tuple {
    Tuple::new()
        .with(AttrId(0), Value::text("Digital Camera"))
        .with(AttrId(3), Value::num(230.0))
        .with(AttrId(9), Value::texts(["Computer", "Software"]))
}

fn sample_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.define("name", AttrType::Text).unwrap();
    c.define("price", AttrType::Numeric).unwrap();
    c.define("company", AttrType::Text).unwrap();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes through every decoder: a `Result`/`Option`, never
    /// a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_record(&bytes);
        let _ = Catalog::decode(&bytes);
        let _ = TableStats::decode(&bytes);
    }

    /// A valid record with one mutated byte either still decodes to *a*
    /// tuple or errors — it must never panic. Mutations penetrate much
    /// deeper into the field loop than random bytes do.
    #[test]
    fn mutated_record_never_panics(
        at in any::<prop::sample::Index>(),
        xor in 1u8..255,
        cut in any::<prop::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        encode_record(&sample_tuple(), &mut buf).unwrap();
        let mut mutated = buf.clone();
        let at = at.index(mutated.len());
        mutated[at] ^= xor;
        let _ = decode_record(&mutated);
        // And every truncation of the valid encoding.
        let cut = cut.index(buf.len());
        let _ = decode_record(&buf[..cut]);
    }

    /// Same for the catalog sidecar payload.
    #[test]
    fn mutated_catalog_never_panics(
        at in any::<prop::sample::Index>(),
        xor in 1u8..255,
        cut in any::<prop::sample::Index>(),
    ) {
        let buf = sample_catalog().encode();
        let mut mutated = buf.clone();
        let at = at.index(mutated.len());
        mutated[at] ^= xor;
        let _ = Catalog::decode(&mutated);
        let cut = cut.index(buf.len());
        let _ = Catalog::decode(&buf[..cut]);
    }

    /// Same for the table statistics payload.
    #[test]
    fn mutated_stats_never_panic(
        at in any::<prop::sample::Index>(),
        xor in 1u8..255,
        cut in any::<prop::sample::Index>(),
    ) {
        let mut stats = TableStats::new();
        stats.ensure_attrs(3);
        stats.observe_insert(&sample_tuple());
        let buf = stats.encode();
        let mut mutated = buf.clone();
        let at = at.index(mutated.len());
        mutated[at] ^= xor;
        let _ = TableStats::decode(&mutated);
        let cut = cut.index(buf.len());
        let _ = TableStats::decode(&buf[..cut]);
    }
}
