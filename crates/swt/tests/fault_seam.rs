//! Regression tests for the VFS seam: a table created under `MemVfs` and
//! reopened through a fault injector must actually *see* injected faults
//! on every filesystem operation of the open/read path. Before the seam
//! fix, `SwtTable` could hold a stray `RealVfs` next to a mem-backed table
//! file, so parts of the table's I/O silently skipped the injector.

use std::path::Path;
use std::sync::Arc;

use iva_storage::vfs::{MemVfs, Vfs};
use iva_storage::{FaultKind, FaultVfs, IoStats, PagerOptions, PlannedFault};
use iva_swt::{SwtTable, Tuple, Value};

fn opts() -> PagerOptions {
    PagerOptions {
        page_size: 256,
        cache_bytes: 4096,
    }
}

/// Build a small table on `vfs` at `base` and flush it.
fn build_table(vfs: Arc<dyn Vfs>, base: &Path) {
    let mut t = SwtTable::create_with_vfs(vfs, base, &opts(), IoStats::new()).unwrap();
    let name = t.define_text("Name").unwrap();
    let year = t.define_numeric("Year").unwrap();
    for i in 0..20 {
        t.insert(
            &Tuple::new()
                .with(name, Value::text(format!("album number {i}")))
                .with(year, Value::num(1980.0 + i as f64)),
        )
        .unwrap();
    }
    t.flush().unwrap();
}

/// Open the table through `vfs` and scan every record.
fn open_and_scan(vfs: Arc<dyn Vfs>, base: &Path) -> iva_swt::Result<usize> {
    let t = SwtTable::open_with_vfs(vfs, base, &opts(), IoStats::new())?;
    let mut n = 0;
    for item in t.scan() {
        let _ = item?;
        n += 1;
    }
    Ok(n)
}

#[test]
fn faultvfs_adopts_memvfs_table_and_open_goes_through_it() {
    let mem = MemVfs::new();
    let base = Path::new("t");
    build_table(Arc::new(mem.clone()), base);

    // A passthrough injector seeded from the MemVfs image must open the
    // table cleanly — and its op counter must have moved, proving every
    // byte of the open/scan path flowed through the injector.
    let fault = FaultVfs::adopt(&mem, 7, Vec::new());
    let ops_before = fault.op_count();
    let n = open_and_scan(Arc::new(fault.clone()), base).unwrap();
    assert_eq!(n, 20);
    assert!(
        fault.op_count() > ops_before + 10,
        "open+scan performed only {} vfs ops — table I/O is bypassing the seam",
        fault.op_count() - ops_before
    );
}

#[test]
fn injected_faults_reach_every_open_scan_operation() {
    let mem = MemVfs::new();
    let base = Path::new("t");
    build_table(Arc::new(mem.clone()), base);

    // Dry run: count the ops an open+scan performs.
    let dry = FaultVfs::adopt(&mem, 7, Vec::new());
    open_and_scan(Arc::new(dry.clone()), base).unwrap();
    let total_ops = dry.op_count();

    // Injecting EIO at *any* single operation index must surface as an
    // error (never a panic, never silently-wrong data). If some index
    // succeeded, that operation would be running outside the injector.
    let mut fired = 0u64;
    for at in 0..total_ops {
        let vfs = FaultVfs::adopt(
            &mem,
            7,
            vec![PlannedFault {
                at,
                kind: FaultKind::Eio,
            }],
        );
        if open_and_scan(Arc::new(vfs), base).is_err() {
            fired += 1;
        }
    }
    assert_eq!(
        fired,
        total_ops,
        "EIO was swallowed at {} of {} op indices — some table I/O skips the fault injector",
        total_ops - fired,
        total_ops
    );
}
