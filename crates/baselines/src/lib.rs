//! # iva-baselines
//!
//! The comparison systems from the iVA-file evaluation (Sec. V of the
//! paper), implemented from scratch over the same storage substrate so
//! that every comparison isolates the indexing idea, not incidental
//! engineering differences:
//!
//! - [`SiiIndex`] — the sparse inverted index of Yu et al. \[7\]: per
//!   attribute, a list of tids that define it; content-free filtering.
//! - [`DirectScan`] — DST: no index, full sequential scan with exact
//!   distances.
//! - [`VaFile`] — the classic full-dimensional VA-file \[23\] with the ndf
//!   extension \[24\], included to demonstrate why the paper excludes it
//!   (its size exceeds the table file on sparse wide data).
//! - [`GramIndex`] — the n-gram inverted index of Li et al. \[11\] from the
//!   related work: fast single-attribute threshold string search, but no
//!   multi-attribute ranking — the gap the iVA-file fills.

#![warn(missing_docs)]

mod ciff;
mod dst;
mod gram_index;
mod sii;
mod vafile;

pub use ciff::{export_iva, export_sii, import_iva, import_sii};
pub use dst::{DirectScan, DstOutcome};
pub use gram_index::{GramIndex, GramMatch};
pub use sii::{SiiIndex, SiiOutcome};
pub use vafile::{VaFile, VaOutcome};
