//! The n-gram inverted index for approximate string search — the related-
//! work baseline of Li, Lu & Lu \[11\] (Sec. II-C of the paper).
//!
//! "The inverted index on n-grams is designed for searching strings on a
//! single attribute that is within an edit distance threshold to a query
//! string." This module implements that design faithfully — a per-
//! attribute map from gram to the sorted list of `(tid, string-index)`
//! postings, the classic count filter (`T = |common grams| ≥
//! max(|sq|,|sd|) + n − 1 − n·τ` matching grams needed for edit distance
//! ≤ τ), and verification by banded edit distance — so the contrast the
//! paper draws is concrete:
//!
//! - it answers *threshold* queries on *one* text attribute very fast;
//! - it cannot rank across attributes, mix in numeric predicates, or
//!   bound a metric-combined distance — which is the iVA-file's job.

use std::collections::HashMap;

use iva_core::{IvaError, Result};
use iva_swt::{AttrId, RecordPtr, SwtTable, Tid, Value};
use iva_text::{edit_distance_within, gram_count, grams_of};

/// One verified match of a threshold string search.
#[derive(Debug, Clone, PartialEq)]
pub struct GramMatch {
    /// Tuple id.
    pub tid: Tid,
    /// Location in the table file.
    pub ptr: RecordPtr,
    /// The matching string (one of the value's strings).
    pub string: String,
    /// Its edit distance to the query (≤ the threshold).
    pub edits: usize,
}

/// Inverted lists from gram → postings for one text attribute.
pub struct GramIndex {
    attr: AttrId,
    n: usize,
    /// gram → sorted (tid, ptr, string) posting keys; postings store an
    /// index into `strings`.
    postings: HashMap<Vec<u8>, Vec<u32>>,
    /// All indexed strings with their origin.
    strings: Vec<(Tid, RecordPtr, String)>,
}

impl GramIndex {
    /// Build over all live tuples' strings on `attr` (must be a text
    /// attribute).
    pub fn build(table: &SwtTable, attr: AttrId, n: usize) -> Result<Self> {
        if n < 2 {
            return Err(IvaError::InvalidArgument("gram length must be >= 2".into()));
        }
        match table.catalog().attr_type(attr) {
            Some(iva_swt::AttrType::Text) => {}
            _ => {
                return Err(IvaError::InvalidArgument(format!(
                    "attribute {attr} is not a text attribute"
                )))
            }
        }
        let mut postings: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
        let mut strings = Vec::new();
        for item in table.scan() {
            let (ptr, rec) = item?;
            if rec.deleted {
                continue;
            }
            if let Some(Value::Text(ss)) = rec.tuple.get(attr) {
                for s in ss {
                    let sid = strings.len() as u32;
                    strings.push((rec.tid, ptr, s.clone()));
                    // Duplicates kept: merge-counting then yields
                    // sum(q_count x s_count) >= |multiset intersection|,
                    // an overcount, so the count filter stays sound (no
                    // false negatives; extras are killed at verification).
                    for g in grams_of(s.as_bytes(), n) {
                        postings.entry(g).or_default().push(sid);
                    }
                }
            }
        }
        Ok(Self {
            attr,
            n,
            postings,
            strings,
        })
    }

    /// The indexed attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Number of indexed strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if no strings are indexed.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Number of distinct grams.
    pub fn distinct_grams(&self) -> usize {
        self.postings.len()
    }

    fn merge_count(&self, query: &str) -> HashMap<u32, u32> {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for g in grams_of(query.as_bytes(), self.n) {
            if let Some(list) = self.postings.get(&g) {
                for &sid in list {
                    *counts.entry(sid).or_default() += 1;
                }
            }
        }
        counts
    }

    /// All strings within edit distance `max_edits` of `query`, verified.
    ///
    /// Uses the count filter: a string within `τ` edits of the query must
    /// share at least `max(|sq|,|sd|) + n − 1 − n·τ` grams with it; merge-
    /// counting the query grams' postings finds every string that can
    /// possibly qualify, and banded edit distance verifies the survivors.
    pub fn search(&self, query: &str, max_edits: usize) -> Vec<GramMatch> {
        let qlen = query.len();
        let counts = self.merge_count(query);
        let mut out = Vec::new();
        let mut verified = std::collections::HashSet::new();
        let mut verify = |sid: u32, out: &mut Vec<GramMatch>| {
            if !verified.insert(sid) {
                return;
            }
            let (tid, ptr, s) = &self.strings[sid as usize];
            if let Some(edits) = edit_distance_within(query.as_bytes(), s.as_bytes(), max_edits) {
                out.push(GramMatch {
                    tid: *tid,
                    ptr: *ptr,
                    string: s.clone(),
                    edits,
                });
            }
        };
        for (&sid, &shared) in &counts {
            let s = &self.strings[sid as usize].2;
            // Count-filter threshold for this candidate's length.
            let m = gram_count(qlen.max(s.len()), self.n) as i64;
            let needed = m - (self.n as i64) * max_edits as i64;
            if needed > 0 && i64::from(shared) < needed {
                continue;
            }
            verify(sid, &mut out);
        }
        // When the threshold degenerates (needed <= 0 is possible), tiny
        // strings sharing zero grams with the query can still match; they
        // never appear in `counts`, so verify them directly.
        if gram_count(qlen, self.n) <= self.n * max_edits {
            let tiny_cap = (self.n * max_edits + 1).saturating_sub(self.n);
            for sid in 0..self.strings.len() as u32 {
                if self.strings[sid as usize].2.len() <= tiny_cap {
                    verify(sid, &mut out);
                }
            }
        }
        out.sort_by(|a, b| a.edits.cmp(&b.edits).then(a.tid.cmp(&b.tid)));
        out
    }

    /// Candidates that survive the count filter, before verification —
    /// exposed so tests and benches can measure the filter's power.
    pub fn count_filter_candidates(&self, query: &str, max_edits: usize) -> usize {
        let qlen = query.len();
        self.merge_count(query)
            .into_iter()
            .filter(|&(sid, shared)| {
                let (_, _, s) = &self.strings[sid as usize];
                let m = gram_count(qlen.max(s.len()), self.n) as i64;
                let needed = m - (self.n as i64) * max_edits as i64;
                needed <= 0 || i64::from(shared) >= needed
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iva_storage::{IoStats, PagerOptions};
    use iva_swt::Tuple;
    use iva_text::edit_distance;

    fn opts() -> PagerOptions {
        PagerOptions {
            page_size: 512,
            cache_bytes: 16 * 1024,
        }
    }

    fn table() -> (SwtTable, AttrId) {
        let mut t = SwtTable::create_mem(&opts(), IoStats::new()).unwrap();
        let brand = t.define_text("brand").unwrap();
        let price = t.define_numeric("price").unwrap();
        let data = [
            "canon",
            "cannon",
            "canyon",
            "sony",
            "nikon",
            "nikkon",
            "olympus",
            "panasonic",
            "kodak",
            "casio",
            "canonical",
        ];
        for (i, b) in data.iter().enumerate() {
            t.insert(
                &Tuple::new()
                    .with(brand, Value::text(*b))
                    .with(price, Value::num(i as f64)),
            )
            .unwrap();
        }
        (t, brand)
    }

    #[test]
    fn finds_all_within_threshold() {
        let (t, brand) = table();
        let idx = GramIndex::build(&t, brand, 2).unwrap();
        assert_eq!(idx.len(), 11);

        let hits = idx.search("canon", 1);
        let strings: Vec<&str> = hits.iter().map(|m| m.string.as_str()).collect();
        assert_eq!(strings, vec!["canon", "cannon", "canyon"]);
        assert_eq!(hits[0].edits, 0);
        assert_eq!(hits[1].edits, 1);

        // Larger threshold pulls in more.
        let hits2 = idx.search("canon", 4);
        assert!(hits2.iter().any(|m| m.string == "canonical"));
    }

    #[test]
    fn exhaustive_no_false_negatives() {
        // Every string within the threshold must be found — compare with
        // brute force over all indexed strings.
        let (t, brand) = table();
        let idx = GramIndex::build(&t, brand, 2).unwrap();
        for q in ["canon", "sonny", "kodiak", "olympus", "x"] {
            for tau in 0..4usize {
                let got: Vec<String> = idx.search(q, tau).into_iter().map(|m| m.string).collect();
                let mut expect: Vec<String> = [
                    "canon",
                    "cannon",
                    "canyon",
                    "sony",
                    "nikon",
                    "nikkon",
                    "olympus",
                    "panasonic",
                    "kodak",
                    "casio",
                    "canonical",
                ]
                .iter()
                .filter(|s| edit_distance(q, s) <= tau)
                .map(|s| s.to_string())
                .collect();
                let mut got_sorted = got.clone();
                got_sorted.sort();
                expect.sort();
                assert_eq!(got_sorted, expect, "q={q} tau={tau}");
            }
        }
    }

    #[test]
    fn count_filter_prunes() {
        let (t, brand) = table();
        let idx = GramIndex::build(&t, brand, 2).unwrap();
        // At a tight threshold the filter should examine far fewer than
        // all strings.
        let candidates = idx.count_filter_candidates("canon", 1);
        assert!(candidates < idx.len(), "{candidates} of {}", idx.len());
        // The filter is sound: every true match is among the candidates.
        assert!(candidates >= idx.search("canon", 1).len());
    }

    #[test]
    fn multi_string_values_and_deletes() {
        let mut t = SwtTable::create_mem(&opts(), IoStats::new()).unwrap();
        let a = t.define_text("a").unwrap();
        let (_, p1) = t
            .insert(&Tuple::new().with(a, Value::texts(["wide-angle", "telephoto"])))
            .unwrap();
        t.insert(&Tuple::new().with(a, Value::text("wide angle")))
            .unwrap();
        // Tombstoned tuples are not indexed.
        t.delete(p1).unwrap();
        let idx = GramIndex::build(&t, a, 2).unwrap();
        let hits = idx.search("wide-angle", 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].string, "wide angle");
    }

    #[test]
    fn tiny_strings_with_zero_shared_grams_still_found() {
        // needed <= 0 degenerate case: "x" vs "y" share no grams but are
        // within edit distance 1 < 2.
        let opts = PagerOptions {
            page_size: 512,
            cache_bytes: 16 * 1024,
        };
        let mut t = SwtTable::create_mem(&opts, IoStats::new()).unwrap();
        let a = t.define_text("a").unwrap();
        for s in ["y", "z", "ab", "longer string"] {
            t.insert(&Tuple::new().with(a, Value::text(s))).unwrap();
        }
        let idx = GramIndex::build(&t, a, 2).unwrap();
        let hits = idx.search("x", 2);
        let strings: Vec<&str> = hits.iter().map(|m| m.string.as_str()).collect();
        assert!(strings.contains(&"y"), "{strings:?}");
        assert!(strings.contains(&"z"));
        assert!(strings.contains(&"ab")); // ed("x","ab") = 2
        assert!(!strings.contains(&"longer string"));
    }

    #[test]
    fn rejects_numeric_attribute_and_bad_n() {
        let (t, _) = table();
        assert!(GramIndex::build(&t, AttrId(1), 2).is_err()); // price
        assert!(GramIndex::build(&t, AttrId(0), 1).is_err());
        assert!(GramIndex::build(&t, AttrId(99), 2).is_err());
    }
}
