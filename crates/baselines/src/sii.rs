//! SII: the sparse inverted index of Yu et al. \[7\] — the baseline the
//! paper compares against (Sec. V).
//!
//! "For each attribute, a list of identifiers of the tuples that have
//! definition on this attribute is maintained, and only several related
//! lists are scanned for a query. ... However, this technique captures no
//! information with regard to the values" (Sec. I-C). Concretely: the
//! per-attribute difference can only be lower-bounded by 0 when the
//! attribute is defined and by the ndf penalty when it is not, so far more
//! candidates survive filtering than with the iVA-file's
//! content-conscious vectors.
//!
//! The on-disk machinery (tuple list, per-attribute lists, pool-based
//! filter-and-refine) deliberately mirrors the iVA-file so the comparison
//! isolates exactly the content-consciousness difference.

use std::sync::Arc;
use std::time::Instant;

use iva_core::{
    exact_distance, IvaError, Metric, PoolEntry, Query, QueryStats, Result, ResultPool,
    WeightScheme, TOMBSTONE_PTR, TUPLE_ENTRY_LEN,
};
use iva_storage::{
    overwrite_in_list, write_contiguous_list, IoStats, ListHandle, ListReader, ListWriter, Pager,
    PagerOptions,
};
use iva_swt::{AttrId, Catalog, RecordPtr, SwtTable, Tid, Tuple};

/// Per-attribute inverted list metadata.
#[derive(Debug, Clone)]
struct SiiEntry {
    list: ListHandle,
    df: u64,
}

/// Result of one SII top-k query.
#[derive(Debug, Clone)]
pub struct SiiOutcome {
    /// Top-k answers, ascending distance.
    pub results: Vec<PoolEntry>,
    /// Measurement counters.
    pub stats: QueryStats,
}

/// What [`SiiIndex::export_parts`] yields: the ndf penalty, the tuple
/// list, and one tid list per attribute.
pub(crate) type SiiExportParts = (f64, Vec<(u32, u64)>, Vec<Vec<u32>>);

/// The sparse inverted index.
pub struct SiiIndex {
    pager: Arc<Pager>,
    entries: Vec<SiiEntry>,
    tuple_list: ListHandle,
    n_tuples: u64,
    n_deleted: u64,
    ndf_penalty: f64,
}

/// Cursor over one inverted list with the freeze semantics.
struct TidCursor {
    reader: ListReader,
    peek: Option<u32>,
}

impl TidCursor {
    fn contains(&mut self, tid: u32) -> Result<bool> {
        loop {
            if self.peek.is_none() {
                if self.reader.at_end() {
                    return Ok(false);
                }
                self.peek = Some(self.reader.read_u32()?);
            }
            let t = self.peek.unwrap();
            if t < tid {
                self.peek = None;
            } else {
                return Ok(t == tid);
            }
        }
    }
}

impl SiiIndex {
    /// Build over all live tuples of `table` (in memory or on disk pager).
    pub fn build(
        table: &SwtTable,
        opts: &PagerOptions,
        io: IoStats,
        ndf_penalty: f64,
    ) -> Result<Self> {
        let n_attrs = table.catalog().len();
        let mut per_attr: Vec<Vec<u32>> = vec![Vec::new(); n_attrs];
        let mut tuple_bytes: Vec<u8> = Vec::new();
        let mut n_tuples = 0u64;
        for item in table.scan() {
            let (ptr, rec) = item?;
            if rec.deleted {
                continue;
            }
            if rec.tid >= u64::from(u32::MAX) {
                return Err(IvaError::TidOverflow(rec.tid));
            }
            let tid = rec.tid as u32;
            tuple_bytes.extend_from_slice(&tid.to_le_bytes());
            tuple_bytes.extend_from_slice(&ptr.0.to_le_bytes());
            n_tuples += 1;
            for (attr, _) in rec.tuple.iter() {
                per_attr[attr.index()].push(tid);
            }
        }
        let pager = Pager::create_mem(opts, io);
        let mut entries = Vec::with_capacity(n_attrs);
        for tids in &per_attr {
            let mut bytes = Vec::with_capacity(tids.len() * 4);
            for t in tids {
                bytes.extend_from_slice(&t.to_le_bytes());
            }
            let list = write_contiguous_list(&pager, &bytes)?;
            entries.push(SiiEntry {
                list,
                df: tids.len() as u64,
            });
        }
        let tuple_list = write_contiguous_list(&pager, &tuple_bytes)?;
        Ok(Self {
            pager,
            entries,
            tuple_list,
            n_tuples,
            n_deleted: 0,
            ndf_penalty,
        })
    }

    /// Number of tuple-list elements (live + tombstoned).
    pub fn n_tuples(&self) -> u64 {
        self.n_tuples
    }

    /// Physical index size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.pager.size_bytes()
    }

    /// I/O counters of the index file.
    pub fn io_stats(&self) -> &IoStats {
        self.pager.stats()
    }

    /// Drop cached pages.
    pub fn clear_cache(&self) {
        self.pager.clear_cache()
    }

    /// Resize the buffer pool (experiments keep cache-to-data ratios
    /// constant across scales).
    pub fn resize_cache(&self, cache_bytes: usize) {
        self.pager.resize_cache(cache_bytes)
    }

    /// Fraction of tombstoned elements.
    pub fn deleted_fraction(&self) -> f64 {
        if self.n_tuples == 0 {
            0.0
        } else {
            self.n_deleted as f64 / self.n_tuples as f64
        }
    }

    /// Resolve attribute weights exactly as the iVA-file does.
    pub fn resolve_weights(&self, query: &Query, scheme: WeightScheme) -> Vec<f64> {
        let total = self.n_tuples - self.n_deleted;
        query
            .iter()
            .map(|(attr, _)| {
                let df = self.entries.get(attr.index()).map_or(0, |e| e.df);
                scheme.weight(total, df)
            })
            .collect()
    }

    /// Top-k query with the inverted-index plan of \[7\]: scan the tuple
    /// list plus the related inverted lists; every live tuple appearing in
    /// **any** related list is a candidate and is fetched from the table
    /// file (the index "captures no information with regard to the values"
    /// — Sec. I-C — so candidates cannot be ranked or pruned without their
    /// content). Tuples in no list are known to be *ndf* on every query
    /// attribute; their constant distance is computed without a fetch.
    ///
    /// This matches the measured behaviour in the paper's Fig. 8, where
    /// SII's table accesses approach the full union of the related lists
    /// (~400k of 779k tuples at 9 values/query).
    pub fn query<M: Metric>(
        &self,
        table: &SwtTable,
        query: &Query,
        k: usize,
        metric: &M,
        weights: WeightScheme,
    ) -> Result<SiiOutcome> {
        let lambda = self.resolve_weights(query, weights);
        let mut cursors = Vec::with_capacity(query.len());
        for (attr, _) in query.iter() {
            // Attributes added after the build have no inverted list: every
            // tuple reads as ndf on them (empty-list cursor).
            let cursor = match self.entries.get(attr.index()) {
                Some(entry) => Some(TidCursor {
                    reader: ListReader::open(Arc::clone(&self.pager), entry.list)?,
                    peek: None,
                }),
                None => None,
            };
            cursors.push(cursor);
        }
        let mut treader = ListReader::open(Arc::clone(&self.pager), self.tuple_list)?;
        let mut pool = ResultPool::new(k);
        let mut stats = QueryStats::default();

        // The distance of a tuple undefined on every query attribute.
        let all_ndf: Vec<f64> = lambda.iter().map(|l| l * self.ndf_penalty).collect();
        let all_ndf_dist = metric.combine(&all_ndf);

        let start = Instant::now();
        let mut refine_nanos = 0u64;
        for _ in 0..self.n_tuples {
            let tid = treader.read_u32()?;
            let ptr = treader.read_u64()?;
            stats.tuples_scanned += 1;
            if ptr == TOMBSTONE_PTR {
                for c in cursors.iter_mut().flatten() {
                    c.contains(tid)?; // keep list pointers synchronized
                }
                continue;
            }
            let mut defined_any = false;
            for c in cursors.iter_mut() {
                let defined = match c {
                    Some(c) => c.contains(tid)?,
                    None => false,
                };
                defined_any |= defined;
            }
            if defined_any {
                let refine_start = Instant::now();
                let rec = table.get(RecordPtr(ptr))?;
                stats.table_accesses += 1;
                let actual = exact_distance(&rec.tuple, query, &lambda, metric, self.ndf_penalty);
                pool.insert_at(rec.tid, actual, RecordPtr(ptr));
                refine_nanos += refine_start.elapsed().as_nanos() as u64;
            } else {
                pool.insert_at(u64::from(tid), all_ndf_dist, RecordPtr(ptr));
            }
        }
        let total = start.elapsed().as_nanos() as u64;
        stats.refine_nanos = refine_nanos;
        stats.filter_nanos = total.saturating_sub(refine_nanos);
        Ok(SiiOutcome {
            results: pool.into_sorted(),
            stats,
        })
    }

    /// Index a freshly inserted tuple: append its tid to the inverted
    /// lists of defined attributes and to the tuple list.
    pub fn insert(
        &mut self,
        tid: Tid,
        ptr: RecordPtr,
        tuple: &Tuple,
        catalog: &Catalog,
    ) -> Result<()> {
        if tid >= u64::from(u32::MAX) {
            return Err(IvaError::TidOverflow(tid));
        }
        let tid32 = tid as u32;
        while self.entries.len() < catalog.len() {
            let list = ListWriter::create(Arc::clone(&self.pager))?.finish()?;
            self.entries.push(SiiEntry { list, df: 0 });
        }
        for (attr, _) in tuple.iter() {
            let i = attr.index();
            if i >= self.entries.len() {
                return Err(IvaError::InvalidArgument(format!(
                    "attribute {attr} not in catalog"
                )));
            }
            let mut w = ListWriter::append_to(Arc::clone(&self.pager), self.entries[i].list)?;
            w.append_u32(tid32)?;
            self.entries[i].list = w.finish()?;
            self.entries[i].df += 1;
        }
        let mut tw = ListWriter::append_to(Arc::clone(&self.pager), self.tuple_list)?;
        tw.append_u32(tid32)?;
        tw.append_u64(ptr.0)?;
        self.tuple_list = tw.finish()?;
        self.n_tuples += 1;
        Ok(())
    }

    /// Tombstone a tuple in the tuple list (inverted lists untouched, as
    /// with the iVA-file).
    pub fn delete(&mut self, tid: Tid) -> Result<bool> {
        if tid >= u64::from(u32::MAX) {
            return Err(IvaError::TidOverflow(tid));
        }
        let tid32 = tid as u32;
        let mut reader = ListReader::open(Arc::clone(&self.pager), self.tuple_list)?;
        for i in 0..self.n_tuples {
            let t = reader.read_u32()?;
            let ptr = reader.read_u64()?;
            if t == tid32 {
                if ptr == TOMBSTONE_PTR {
                    return Ok(false);
                }
                overwrite_in_list(
                    &self.pager,
                    self.tuple_list,
                    i * TUPLE_ENTRY_LEN as u64 + 4,
                    &TOMBSTONE_PTR.to_le_bytes(),
                )?;
                self.n_deleted += 1;
                return Ok(true);
            }
            if t > tid32 {
                break;
            }
        }
        Ok(false)
    }

    /// Record pointer of a live tuple, by tuple-list scan.
    pub fn lookup_ptr(&self, tid: Tid) -> Result<Option<RecordPtr>> {
        let tid32 = tid as u32;
        let mut reader = ListReader::open(Arc::clone(&self.pager), self.tuple_list)?;
        for _ in 0..self.n_tuples {
            let t = reader.read_u32()?;
            let ptr = reader.read_u64()?;
            if t == tid32 {
                return Ok((ptr != TOMBSTONE_PTR).then_some(RecordPtr(ptr)));
            }
            if t > tid32 {
                break;
            }
        }
        Ok(None)
    }

    /// True if the attribute has an inverted list.
    pub fn has_attr(&self, attr: AttrId) -> bool {
        attr.index() < self.entries.len()
    }

    /// Logical content for the CIFF-style interchange
    /// ([`crate::ciff`]): the ndf penalty, the tuple list (tombstones
    /// included), and one tid list per attribute.
    pub(crate) fn export_parts(&self) -> Result<SiiExportParts> {
        let mut treader = ListReader::open(Arc::clone(&self.pager), self.tuple_list)?;
        let mut tuple_entries = Vec::with_capacity(self.n_tuples as usize);
        for _ in 0..self.n_tuples {
            let tid = treader.read_u32()?;
            let ptr = treader.read_u64()?;
            tuple_entries.push((tid, ptr));
        }
        let mut lists = Vec::with_capacity(self.entries.len());
        for entry in &self.entries {
            let mut reader = ListReader::open(Arc::clone(&self.pager), entry.list)?;
            let mut tids = Vec::with_capacity(entry.df as usize);
            for _ in 0..entry.df {
                tids.push(reader.read_u32()?);
            }
            lists.push(tids);
        }
        Ok((self.ndf_penalty, tuple_entries, lists))
    }

    /// Rebuild an index from interchange content (the inverse of
    /// [`SiiIndex::export_parts`]), on a fresh in-memory pager.
    pub(crate) fn from_parts(
        opts: &PagerOptions,
        io: IoStats,
        ndf_penalty: f64,
        tuple_entries: &[(u32, u64)],
        lists: &[Vec<u32>],
    ) -> Result<Self> {
        let pager = Pager::create_mem(opts, io);
        let mut entries = Vec::with_capacity(lists.len());
        for tids in lists {
            let mut bytes = Vec::with_capacity(tids.len() * 4);
            for t in tids {
                bytes.extend_from_slice(&t.to_le_bytes());
            }
            let list = write_contiguous_list(&pager, &bytes)?;
            entries.push(SiiEntry {
                list,
                df: tids.len() as u64,
            });
        }
        let mut tuple_bytes = Vec::with_capacity(tuple_entries.len() * TUPLE_ENTRY_LEN);
        let mut n_deleted = 0u64;
        for (tid, ptr) in tuple_entries {
            tuple_bytes.extend_from_slice(&tid.to_le_bytes());
            tuple_bytes.extend_from_slice(&ptr.to_le_bytes());
            if *ptr == TOMBSTONE_PTR {
                n_deleted += 1;
            }
        }
        let tuple_list = write_contiguous_list(&pager, &tuple_bytes)?;
        Ok(Self {
            pager,
            entries,
            tuple_list,
            n_tuples: tuple_entries.len() as u64,
            n_deleted,
            ndf_penalty,
        })
    }
}
