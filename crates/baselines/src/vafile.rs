//! The classic VA-file of Weber et al. \[23\], built full-dimensionally over
//! the sparse wide table — included to substantiate the paper's decision to
//! exclude it: "The VA-file is excluded from our evaluations as its size
//! far exceeds that of the table file" (Sec. V), because it stores one
//! approximation cell for **every** attribute of **every** tuple, defined
//! or not, and has no representation for unbounded strings at all.
//!
//! We encode numerical attributes with absolute-domain slices (the original
//! scheme) plus the ndf extension of Canahuate et al. \[24\]; text attributes
//! get only a defined/ndf bit (the best a VA-file can do for strings),
//! making it content-blind on text.

use std::sync::Arc;
use std::time::Instant;

use iva_core::{
    exact_distance, IvaError, Metric, NumericCodec, PoolEntry, Query, QueryStats, QueryValue,
    Result, ResultPool, WeightScheme,
};
use iva_storage::{write_contiguous_list, IoStats, ListHandle, ListReader, Pager, PagerOptions};
use iva_swt::{AttrType, RecordPtr, SwtTable, Value};

/// One row's approximation: a cell per attribute.
///
/// Cell layout per attribute: numerical attributes use `code_bytes` bytes
/// (all-ones = ndf); text attributes use 1 byte (0 = ndf, 1 = defined).
pub struct VaFile {
    pager: Arc<Pager>,
    rows: ListHandle,
    /// `(is_text, codec)` per attribute; codec meaningful for numeric only.
    attrs: Vec<(bool, NumericCodec)>,
    tids_ptrs: Vec<(u64, u64)>,
    row_bytes: usize,
    ndf_penalty: f64,
}

impl VaFile {
    /// Build over all live tuples. `code_bytes` is the per-dimension
    /// approximation width (the classic VA-file's `b/8`).
    pub fn build(
        table: &SwtTable,
        opts: &PagerOptions,
        io: IoStats,
        code_bytes: usize,
        ndf_penalty: f64,
    ) -> Result<Self> {
        let catalog = table.catalog();
        let mut attrs = Vec::with_capacity(catalog.len());
        for (attr, def) in catalog.iter() {
            let is_text = def.ty == AttrType::Text;
            let st = table.stats().attr(attr);
            attrs.push((is_text, NumericCodec::new(st.min, st.max, code_bytes)));
        }
        let row_bytes: usize = attrs
            .iter()
            .map(|(t, c)| if *t { 1 } else { c.code_bytes() })
            .sum();

        let mut bytes = Vec::new();
        let mut tids_ptrs = Vec::new();
        for item in table.scan() {
            let (ptr, rec) = item?;
            if rec.deleted {
                continue;
            }
            tids_ptrs.push((rec.tid, ptr.0));
            for (i, (is_text, codec)) in attrs.iter().enumerate() {
                let v = rec.tuple.get(iva_swt::AttrId(i as u32));
                if *is_text {
                    bytes.push(u8::from(v.is_some()));
                } else {
                    let code = match v {
                        Some(Value::Num(x)) => codec.encode(*x),
                        _ => codec.ndf_code(),
                    };
                    codec.write_code(code, &mut bytes);
                }
            }
        }
        let pager = Pager::create_mem(opts, io);
        let rows = write_contiguous_list(&pager, &bytes)?;
        Ok(Self {
            pager,
            rows,
            attrs,
            tids_ptrs,
            row_bytes,
            ndf_penalty,
        })
    }

    /// Physical size in bytes — the headline number for the exclusion
    /// argument.
    pub fn size_bytes(&self) -> u64 {
        self.pager.size_bytes()
    }

    /// Bytes per approximated row.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Top-k query via the classic sequential VA-file plan: scan every
    /// row's full-width approximation, lower-bound, refine candidates.
    /// Text attributes contribute only the defined/ndf distinction.
    pub fn query<M: Metric>(
        &self,
        table: &SwtTable,
        query: &Query,
        k: usize,
        metric: &M,
        weights: WeightScheme,
    ) -> Result<VaOutcome> {
        let total = self.tids_ptrs.len() as u64;
        let lambda: Vec<f64> = query
            .iter()
            .map(|(attr, _)| weights.weight(total, table.stats().attr(attr).df))
            .collect();
        // Precompute each queried attribute's byte offset within a row.
        let mut offsets = Vec::with_capacity(query.len());
        for (attr, _) in query.iter() {
            if attr.index() >= self.attrs.len() {
                return Err(IvaError::InvalidArgument(format!(
                    "attribute {attr} not indexed"
                )));
            }
            let off: usize = self.attrs[..attr.index()]
                .iter()
                .map(|(t, c)| if *t { 1 } else { c.code_bytes() })
                .sum();
            offsets.push(off);
        }

        let mut reader = ListReader::open(Arc::clone(&self.pager), self.rows)?;
        let mut row = vec![0u8; self.row_bytes];
        let mut pool = ResultPool::new(k);
        let mut stats = QueryStats::default();
        let mut diffs = vec![0.0f64; query.len()];
        let start = Instant::now();
        let mut refine_nanos = 0u64;
        for &(tid, ptr) in &self.tids_ptrs {
            reader.read_exact(&mut row)?;
            stats.tuples_scanned += 1;
            for (i, ((attr, qv), &off)) in query.iter().zip(&offsets).enumerate() {
                let (is_text, codec) = &self.attrs[attr.index()];
                let lb = if *is_text {
                    if row[off] == 0 {
                        self.ndf_penalty
                    } else {
                        0.0 // content-blind on text
                    }
                } else {
                    let code = codec.read_code(&row[off..off + codec.code_bytes()])?;
                    if code == codec.ndf_code() {
                        self.ndf_penalty
                    } else if let QueryValue::Num(q) = qv {
                        codec.lower_bound_dist(code, *q)
                    } else {
                        0.0
                    }
                };
                diffs[i] = lambda[i] * lb;
            }
            let est = metric.combine(&diffs);
            if pool.admits(est) {
                let refine_start = Instant::now();
                let rec = table.get(RecordPtr(ptr))?;
                stats.table_accesses += 1;
                let actual = exact_distance(&rec.tuple, query, &lambda, metric, self.ndf_penalty);
                pool.insert_at(tid, actual, RecordPtr(ptr));
                refine_nanos += refine_start.elapsed().as_nanos() as u64;
            }
        }
        let totaln = start.elapsed().as_nanos() as u64;
        stats.refine_nanos = refine_nanos;
        stats.filter_nanos = totaln.saturating_sub(refine_nanos);
        Ok(VaOutcome {
            results: pool.into_sorted(),
            stats,
        })
    }
}

/// Result of one VA-file top-k query.
#[derive(Debug, Clone)]
pub struct VaOutcome {
    /// Top-k answers, ascending distance.
    pub results: Vec<PoolEntry>,
    /// Measurement counters.
    pub stats: QueryStats,
}
