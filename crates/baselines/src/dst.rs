//! DST: direct scan of the table file — the index-less baseline of Sec. V.
//!
//! Every query reads the whole table file sequentially and computes exact
//! distances; "the query processing time of DST is very stable under
//! different parameter settings, always around 30 seconds per query"
//! (Sec. V-B) — slow but parameter-insensitive, which our reproduction
//! also exhibits (scaled to the dataset size).

use std::time::Instant;

use iva_core::{
    exact_distance, Metric, PoolEntry, Query, QueryStats, Result, ResultPool, WeightScheme,
};
use iva_swt::SwtTable;

/// Result of one DST top-k query.
#[derive(Debug, Clone)]
pub struct DstOutcome {
    /// Top-k answers, ascending distance.
    pub results: Vec<PoolEntry>,
    /// Measurement counters (all time is "refine": there is no filter
    /// structure).
    pub stats: QueryStats,
}

/// The direct-scan baseline. Stateless apart from the ndf penalty.
#[derive(Debug, Clone, Copy)]
pub struct DirectScan {
    /// Difference constant for undefined cells.
    pub ndf_penalty: f64,
}

impl Default for DirectScan {
    fn default() -> Self {
        Self { ndf_penalty: 20.0 }
    }
}

impl DirectScan {
    /// Construct with the given ndf penalty.
    pub fn new(ndf_penalty: f64) -> Self {
        Self { ndf_penalty }
    }

    /// Resolve attribute weights from table statistics.
    pub fn resolve_weights(
        &self,
        table: &SwtTable,
        query: &Query,
        scheme: WeightScheme,
    ) -> Vec<f64> {
        let total = table.file().live_records();
        query
            .iter()
            .map(|(attr, _)| scheme.weight(total, table.stats().attr(attr).df))
            .collect()
    }

    /// Top-k by full sequential scan with exact distances.
    pub fn query<M: Metric>(
        &self,
        table: &SwtTable,
        query: &Query,
        k: usize,
        metric: &M,
        weights: WeightScheme,
    ) -> Result<DstOutcome> {
        let lambda = self.resolve_weights(table, query, weights);
        let mut pool = ResultPool::new(k);
        let mut stats = QueryStats::default();
        let start = Instant::now();
        for item in table.scan() {
            let (ptr, rec) = item?;
            stats.tuples_scanned += 1;
            if rec.deleted {
                continue;
            }
            stats.table_accesses += 1;
            let d = exact_distance(&rec.tuple, query, &lambda, metric, self.ndf_penalty);
            pool.insert_at(rec.tid, d, ptr);
        }
        stats.refine_nanos = start.elapsed().as_nanos() as u64;
        Ok(DstOutcome {
            results: pool.into_sorted(),
            stats,
        })
    }
}
