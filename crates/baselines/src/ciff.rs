//! lint:scope(no-panic-decode)
//!
//! CIFF-style interchange format for the iVA-file and the SII baseline.
//!
//! Modeled on the *Common Index File Format* (PAPERS.md): a header, a
//! doc-record section, and per-term postings lists with delta-encoded,
//! varint-compressed document ids. The mapping here is: one "term" per
//! *attribute*, one "doc" per tuple-list element, and — for the iVA
//! flavor — each posting carries the attribute's approximation payload
//! (nG-signature blobs for text, quantized codes for numbers) where
//! CIFF would carry a term frequency. That payload is exactly what the
//! index filters with, so export → import reproduces bit-identical
//! top-k answers without touching the table file.
//!
//! ## Layout (all integers LEB128 varints unless noted)
//!
//! ```text
//! container := magic "IVCIFF01" (8 bytes) · flavor u8 · body
//! flavor    := 0 (SII, postings only) | 1 (iVA, postings + payloads)
//!
//! body(SII) := ndf_penalty f64LE
//!              · ndoc · doc*            doc  := tid_gap · ptr
//!              · nattr · sii_list*      sii_list := df · tid_gap*
//!
//! body(iVA) := alpha f64LE · n · ndf_penalty f64LE · numeric_width
//!              · compress u8 · table_watermark
//!              · ndoc · doc*
//!              · nattr · iva_list*
//! iva_list  := flags u8 (bit0 = is_text) · list_type u8 (1..=4)
//!              · min f64LE · max f64LE
//!              · npost · posting*
//! posting   := tid_gap · payload
//! payload   := nsig · (sig_len · sig_bytes)*     (text)
//!            | code                              (numeric)
//! ```
//!
//! `tid_gap` is the distance to the previous tid in the same sequence
//! (the first posting stores the tid itself) — CIFF's d-gap scheme.
//! Tombstoned tuples keep their doc record with `ptr = u64::MAX`.
//!
//! Every byte of a CIFF container crossed a trust boundary: malformed
//! input (truncation, bad magic, overflowing varints or gaps, payloads
//! that disagree with the codec) must surface [`IvaError::Corrupt`],
//! never a panic. Structural validation of the *content* (alignment,
//! code domains, signature geometry) happens in
//! [`iva_core::import_index`].

use iva_core::{
    import_index, ExportedAttr, ExportedIndex, IndexTarget, IvaConfig, IvaError, IvaIndex,
    ListType, Result,
};
use iva_storage::{IoStats, PagerOptions};

use crate::sii::SiiIndex;

const MAGIC: &[u8; 8] = b"IVCIFF01";
const FLAVOR_SII: u8 = 0;
const FLAVOR_IVA: u8 = 1;

/// Pre-allocation cap for length-prefixed collections: trust the count
/// only up to this many elements, then grow organically.
const PREALLOC_CAP: usize = 1 << 16;

fn corrupt(what: &str) -> IvaError {
    IvaError::Corrupt(format!("ciff: {what}"))
}

// ---------------------------------------------------------------- encode

fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_f64(v: f64, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Delta-encode a strictly increasing tid sequence (first tid verbatim,
/// then gaps).
struct GapWriter {
    prev: Option<u32>,
}

impl GapWriter {
    fn new() -> Self {
        Self { prev: None }
    }

    fn put(&mut self, tid: u32, out: &mut Vec<u8>) -> Result<()> {
        let gap = match self.prev {
            None => u64::from(tid),
            Some(p) if tid > p => u64::from(tid - p),
            Some(_) => return Err(corrupt("tid sequence not strictly increasing")),
        };
        self.prev = Some(tid);
        put_varint(gap, out);
        Ok(())
    }
}

fn put_docs(docs: &[(u32, u64)], out: &mut Vec<u8>) -> Result<()> {
    put_varint(docs.len() as u64, out);
    let mut gaps = GapWriter::new();
    for (tid, ptr) in docs {
        gaps.put(*tid, out)?;
        put_varint(*ptr, out);
    }
    Ok(())
}

// ---------------------------------------------------------------- decode

fn take<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(corrupt(what));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn take_u8(buf: &mut &[u8], what: &str) -> Result<u8> {
    take(buf, 1, what)?
        .first()
        .copied()
        .ok_or_else(|| corrupt(what))
}

fn take_varint(buf: &mut &[u8], what: &str) -> Result<u64> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = take_u8(buf, what)?;
        let bits = u64::from(byte & 0x7f);
        if shift == 63 && bits > 1 {
            return Err(corrupt("varint overflows u64"));
        }
        v |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(corrupt("varint longer than 10 bytes"))
}

fn take_f64(buf: &mut &[u8], what: &str) -> Result<f64> {
    let b = take(buf, 8, what)?;
    let arr: [u8; 8] = b.try_into().map_err(|_| corrupt(what))?;
    Ok(f64::from_bits(u64::from_le_bytes(arr)))
}

fn take_len(buf: &mut &[u8], what: &str) -> Result<usize> {
    let v = take_varint(buf, what)?;
    usize::try_from(v).map_err(|_| corrupt("length overflows usize"))
}

/// Delta-decode the tid sequence written by [`GapWriter`].
struct GapReader {
    prev: Option<u32>,
}

impl GapReader {
    fn new() -> Self {
        Self { prev: None }
    }

    fn take(&mut self, buf: &mut &[u8], what: &str) -> Result<u32> {
        let gap = take_varint(buf, what)?;
        let tid = match self.prev {
            None => gap,
            Some(_) if gap == 0 => {
                return Err(corrupt("zero tid gap (sequence not strictly increasing)"));
            }
            Some(p) => u64::from(p).checked_add(gap).ok_or_else(|| corrupt(what))?,
        };
        let tid = u32::try_from(tid).map_err(|_| corrupt("tid gap overflows u32"))?;
        self.prev = Some(tid);
        Ok(tid)
    }
}

fn take_docs(buf: &mut &[u8]) -> Result<Vec<(u32, u64)>> {
    let ndoc = take_len(buf, "truncated doc count")?;
    let mut docs = Vec::with_capacity(ndoc.min(PREALLOC_CAP));
    let mut gaps = GapReader::new();
    for _ in 0..ndoc {
        let tid = gaps.take(buf, "truncated doc record")?;
        let ptr = take_varint(buf, "truncated doc pointer")?;
        docs.push((tid, ptr));
    }
    Ok(docs)
}

fn list_type_code(ty: ListType) -> u8 {
    match ty {
        ListType::I => 1,
        ListType::II => 2,
        ListType::III => 3,
        ListType::IV => 4,
    }
}

fn list_type_from_code(code: u8) -> Result<ListType> {
    match code {
        1 => Ok(ListType::I),
        2 => Ok(ListType::II),
        3 => Ok(ListType::III),
        4 => Ok(ListType::IV),
        other => Err(corrupt(&format!("bad list type code {other}"))),
    }
}

// ------------------------------------------------------------ iVA flavor

/// Serialize an iVA-file into a CIFF-style container.
pub fn export_iva(index: &IvaIndex) -> Result<Vec<u8>> {
    let parts = iva_core::export_index(index)?;
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(FLAVOR_IVA);
    put_f64(parts.config.alpha, &mut out);
    put_varint(parts.config.n as u64, &mut out);
    put_f64(parts.config.ndf_penalty, &mut out);
    put_varint(parts.config.numeric_width as u64, &mut out);
    out.push(u8::from(parts.config.compress_lists));
    put_varint(parts.table_watermark, &mut out);
    put_docs(&parts.tuple_entries, &mut out)?;
    put_varint(parts.attrs.len() as u64, &mut out);
    for attr in &parts.attrs {
        out.push(u8::from(attr.is_text));
        out.push(list_type_code(attr.list_type));
        put_f64(attr.min, &mut out);
        put_f64(attr.max, &mut out);
        if attr.is_text {
            put_varint(attr.text_postings.len() as u64, &mut out);
            let mut gaps = GapWriter::new();
            for (tid, sigs) in &attr.text_postings {
                gaps.put(*tid, &mut out)?;
                put_varint(sigs.len() as u64, &mut out);
                for sig in sigs {
                    put_varint(sig.len() as u64, &mut out);
                    out.extend_from_slice(sig);
                }
            }
        } else {
            put_varint(attr.num_postings.len() as u64, &mut out);
            let mut gaps = GapWriter::new();
            for (tid, code) in &attr.num_postings {
                gaps.put(*tid, &mut out)?;
                put_varint(*code, &mut out);
            }
        }
    }
    Ok(out)
}

/// Deserialize a CIFF-style container back into an iVA-file at
/// `target`. The imported index is a canonical rebuild — lists are
/// re-encoded (and re-packed when the exported config asked for
/// compression) — and answers queries bit-identically to the exported
/// one.
pub fn import_iva(
    bytes: &[u8],
    target: IndexTarget<'_>,
    opts: &PagerOptions,
    io: IoStats,
) -> Result<IvaIndex> {
    let mut buf = bytes;
    if take(&mut buf, MAGIC.len(), "truncated magic")? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    if take_u8(&mut buf, "truncated flavor")? != FLAVOR_IVA {
        return Err(corrupt("container is not the iVA flavor"));
    }
    let alpha = take_f64(&mut buf, "truncated alpha")?;
    let n = take_len(&mut buf, "truncated gram length")?;
    let ndf_penalty = take_f64(&mut buf, "truncated ndf penalty")?;
    let numeric_width = take_len(&mut buf, "truncated numeric width")?;
    let compress_lists = match take_u8(&mut buf, "truncated compress flag")? {
        0 => false,
        1 => true,
        other => return Err(corrupt(&format!("bad compress flag {other}"))),
    };
    let table_watermark = take_varint(&mut buf, "truncated watermark")?;
    let config = IvaConfig {
        alpha,
        n,
        ndf_penalty,
        numeric_width,
        compress_lists,
        ..IvaConfig::default()
    };
    config.validate().map_err(|e| corrupt(&e))?;

    let tuple_entries = take_docs(&mut buf)?;
    let nattr = take_len(&mut buf, "truncated attribute count")?;
    let mut attrs = Vec::with_capacity(nattr.min(PREALLOC_CAP));
    for _ in 0..nattr {
        let is_text = match take_u8(&mut buf, "truncated attr flags")? {
            0 => false,
            1 => true,
            other => return Err(corrupt(&format!("bad attr flags {other}"))),
        };
        let list_type = list_type_from_code(take_u8(&mut buf, "truncated list type")?)?;
        let min = take_f64(&mut buf, "truncated domain min")?;
        let max = take_f64(&mut buf, "truncated domain max")?;
        let npost = take_len(&mut buf, "truncated posting count")?;
        let mut attr = ExportedAttr {
            is_text,
            list_type,
            min,
            max,
            text_postings: Vec::new(),
            num_postings: Vec::new(),
        };
        let mut gaps = GapReader::new();
        if is_text {
            attr.text_postings.reserve(npost.min(PREALLOC_CAP));
            for _ in 0..npost {
                let tid = gaps.take(&mut buf, "truncated posting tid")?;
                let nsig = take_len(&mut buf, "truncated signature count")?;
                let mut sigs = Vec::with_capacity(nsig.min(PREALLOC_CAP));
                for _ in 0..nsig {
                    let len = take_len(&mut buf, "truncated signature length")?;
                    sigs.push(take(&mut buf, len, "truncated signature bytes")?.to_vec());
                }
                attr.text_postings.push((tid, sigs));
            }
        } else {
            attr.num_postings.reserve(npost.min(PREALLOC_CAP));
            for _ in 0..npost {
                let tid = gaps.take(&mut buf, "truncated posting tid")?;
                let code = take_varint(&mut buf, "truncated numeric code")?;
                attr.num_postings.push((tid, code));
            }
        }
        attrs.push(attr);
    }
    if !buf.is_empty() {
        return Err(corrupt("trailing bytes after the last postings list"));
    }
    let parts = ExportedIndex {
        config,
        tuple_entries,
        table_watermark,
        attrs,
    };
    import_index(target, opts, io, &parts)
}

// ------------------------------------------------------------ SII flavor

/// Serialize an SII baseline index into a CIFF-style container. SII is
/// content-free, so its postings carry no payloads — this flavor is the
/// closest to CIFF proper.
pub fn export_sii(index: &SiiIndex) -> Result<Vec<u8>> {
    let (ndf_penalty, tuple_entries, lists) = index.export_parts()?;
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(FLAVOR_SII);
    put_f64(ndf_penalty, &mut out);
    put_docs(&tuple_entries, &mut out)?;
    put_varint(lists.len() as u64, &mut out);
    for tids in &lists {
        put_varint(tids.len() as u64, &mut out);
        let mut gaps = GapWriter::new();
        for tid in tids {
            gaps.put(*tid, &mut out)?;
        }
    }
    Ok(out)
}

/// Deserialize a CIFF-style container back into an SII index on a fresh
/// in-memory pager.
pub fn import_sii(bytes: &[u8], opts: &PagerOptions, io: IoStats) -> Result<SiiIndex> {
    let mut buf = bytes;
    if take(&mut buf, MAGIC.len(), "truncated magic")? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    if take_u8(&mut buf, "truncated flavor")? != FLAVOR_SII {
        return Err(corrupt("container is not the SII flavor"));
    }
    let ndf_penalty = take_f64(&mut buf, "truncated ndf penalty")?;
    if !ndf_penalty.is_finite() || ndf_penalty < 0.0 {
        return Err(corrupt("ndf penalty must be finite and >= 0"));
    }
    let tuple_entries = take_docs(&mut buf)?;
    let nattr = take_len(&mut buf, "truncated attribute count")?;
    let mut lists = Vec::with_capacity(nattr.min(PREALLOC_CAP));
    for _ in 0..nattr {
        let df = take_len(&mut buf, "truncated df")?;
        let mut tids = Vec::with_capacity(df.min(PREALLOC_CAP));
        let mut gaps = GapReader::new();
        for _ in 0..df {
            tids.push(gaps.take(&mut buf, "truncated postings tid")?);
        }
        lists.push(tids);
    }
    if !buf.is_empty() {
        return Err(corrupt("trailing bytes after the last postings list"));
    }
    SiiIndex::from_parts(opts, io, ndf_penalty, &tuple_entries, &lists)
}
