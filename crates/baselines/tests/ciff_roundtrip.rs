//! CIFF-style interchange round-trips: export → import must reproduce
//! bit-identical top-k answers for both the iVA-file and the SII
//! baseline, the serialization must be canonical (re-exporting an
//! imported index yields the same bytes), and malformed containers must
//! error — never panic.

use iva_baselines::{export_iva, export_sii, import_iva, import_sii, SiiIndex};
use iva_core::{build_index, IndexTarget, IvaConfig, MetricKind, Query, WeightScheme};
use iva_storage::{IoStats, PagerOptions};
use iva_swt::{AttrId, SwtTable, Tuple, Value};

fn opts() -> PagerOptions {
    PagerOptions {
        page_size: 512,
        cache_bytes: 64 * 1024,
    }
}

/// Deterministic pseudo-random sparse table: mixed densities force all
/// four list organizations, multi-string values exercise grouped
/// signatures.
fn make_table(n: u32) -> SwtTable {
    let mut t = SwtTable::create_mem(&opts(), IoStats::new()).unwrap();
    let dense_txt = t.define_text("dense_txt").unwrap();
    let sparse_txt = t.define_text("sparse_txt").unwrap();
    let dense_num = t.define_numeric("dense_num").unwrap();
    let sparse_num = t.define_numeric("sparse_num").unwrap();
    for i in 0..n {
        let mut tup = Tuple::new();
        if i % 7 != 0 {
            tup.set(dense_txt, Value::text(format!("product listing {i:04}")));
        }
        if i % 11 == 0 {
            tup.set(
                sparse_txt,
                Value::texts([format!("note {i}"), "extra".to_string()]),
            );
        }
        if i % 10 != 9 {
            tup.set(dense_num, Value::num(f64::from(i % 89)));
        }
        if i % 13 == 0 {
            tup.set(sparse_num, Value::num(f64::from(i)));
        }
        t.insert(&tup).unwrap();
    }
    t
}

fn queries() -> Vec<Query> {
    vec![
        Query::new().text(AttrId(0), "product listing 0042"),
        Query::new().text(AttrId(1), "note 33").num(AttrId(2), 42.0),
        Query::new().num(AttrId(2), 7.0).num(AttrId(3), 26.0),
    ]
}

/// Build the fixture pair: a table and an updated (insert + delete)
/// compressed iVA index over it — mixed raw/packed segments, tombstones.
fn iva_fixture() -> (SwtTable, iva_core::IvaIndex) {
    let mut table = make_table(300);
    let mut index = build_index(
        &table,
        IndexTarget::Mem,
        &opts(),
        IoStats::new(),
        IvaConfig::default(),
    )
    .unwrap();
    for i in 0..10u32 {
        let mut tup = Tuple::new();
        tup.set(AttrId(0), Value::text(format!("appended listing {i}")));
        if i % 2 == 0 {
            tup.set(AttrId(2), Value::num(f64::from(40 + i)));
        }
        let (tid, ptr) = table.insert(&tup).unwrap();
        index.insert(tid, ptr, &tup, table.catalog()).unwrap();
    }
    for tid in [3u64, 77, 150] {
        let ptr = index.lookup_ptr(tid).unwrap().unwrap();
        table.delete(ptr).unwrap();
        index.delete(tid).unwrap();
    }
    (table, index)
}

#[test]
fn iva_roundtrip_reproduces_topk() {
    let (table, index) = iva_fixture();
    let bytes = export_iva(&index).unwrap();
    let imported = import_iva(&bytes, IndexTarget::Mem, &opts(), IoStats::new()).unwrap();

    assert_eq!(imported.n_tuples(), index.n_tuples());
    assert_eq!(imported.n_deleted(), index.n_deleted());
    assert_eq!(imported.table_watermark(), index.table_watermark());
    for q in &queries() {
        for k in [1usize, 5, 20] {
            let a = index
                .query(&table, q, k, &MetricKind::L2, WeightScheme::Itf)
                .unwrap();
            let b = imported
                .query(&table, q, k, &MetricKind::L2, WeightScheme::Itf)
                .unwrap();
            assert_eq!(a.results.len(), b.results.len());
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.tid, y.tid);
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
            }
            assert_eq!(a.stats.table_accesses, b.stats.table_accesses);
            assert_eq!(a.stats.tuples_scanned, b.stats.tuples_scanned);
        }
    }
}

#[test]
fn iva_serialization_is_canonical() {
    let (_table, index) = iva_fixture();
    let bytes = export_iva(&index).unwrap();
    let imported = import_iva(&bytes, IndexTarget::Mem, &opts(), IoStats::new()).unwrap();
    // The interchange erases physical organization (lazy tails, raw
    // insert frames); an imported index is a canonical rebuild, so
    // re-exporting it must reproduce the container byte-for-byte.
    assert_eq!(export_iva(&imported).unwrap(), bytes);
}

#[test]
fn iva_import_preserves_compression() {
    let (_table, index) = iva_fixture();
    let bytes = export_iva(&index).unwrap();
    let imported = import_iva(&bytes, IndexTarget::Mem, &opts(), IoStats::new()).unwrap();
    // The fixture's dense attributes compress; the canonical rebuild
    // must re-pack them rather than silently fall back to raw.
    let packed = (0..4u32)
        .filter(|a| {
            imported.attr_entry(AttrId(*a)).unwrap().encoding == iva_core::ListEncoding::Packed
        })
        .count();
    assert!(packed >= 1, "import dropped the packed encodings");
}

#[test]
fn sii_roundtrip_reproduces_topk() {
    let mut table = make_table(300);
    let mut sii = SiiIndex::build(&table, &opts(), IoStats::new(), 20.0).unwrap();
    for i in 0..8u32 {
        let mut tup = Tuple::new();
        tup.set(AttrId(1), Value::text(format!("late note {i}")));
        let (tid, ptr) = table.insert(&tup).unwrap();
        sii.insert(tid, ptr, &tup, table.catalog()).unwrap();
    }
    for tid in [5u64, 121] {
        let ptr = sii.lookup_ptr(tid).unwrap().unwrap();
        table.delete(ptr).unwrap();
        assert!(sii.delete(tid).unwrap());
    }

    let bytes = export_sii(&sii).unwrap();
    let imported = import_sii(&bytes, &opts(), IoStats::new()).unwrap();
    assert_eq!(imported.n_tuples(), sii.n_tuples());
    assert_eq!(imported.deleted_fraction(), sii.deleted_fraction());
    for q in &queries() {
        let a = sii
            .query(&table, q, 10, &MetricKind::L2, WeightScheme::Itf)
            .unwrap();
        let b = imported
            .query(&table, q, 10, &MetricKind::L2, WeightScheme::Itf)
            .unwrap();
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.tid, y.tid);
            assert_eq!(x.dist.to_bits(), y.dist.to_bits());
        }
        assert_eq!(a.stats.table_accesses, b.stats.table_accesses);
    }
    // Canonical here too.
    assert_eq!(export_sii(&imported).unwrap(), bytes);
}

#[test]
fn flavors_do_not_cross() {
    let (_table, index) = iva_fixture();
    let iva_bytes = export_iva(&index).unwrap();
    assert!(import_sii(&iva_bytes, &opts(), IoStats::new()).is_err());

    let table = make_table(50);
    let sii = SiiIndex::build(&table, &opts(), IoStats::new(), 20.0).unwrap();
    let sii_bytes = export_sii(&sii).unwrap();
    assert!(import_iva(&sii_bytes, IndexTarget::Mem, &opts(), IoStats::new()).is_err());
}

/// Decoding a hostile container must never panic: every truncation
/// errors, and every single-byte corruption either errors or imports a
/// structurally valid index.
#[test]
fn corrupted_containers_never_panic() {
    let (_table, index) = iva_fixture();
    let bytes = export_iva(&index).unwrap();
    for end in 0..bytes.len() {
        assert!(
            import_iva(&bytes[..end], IndexTarget::Mem, &opts(), IoStats::new()).is_err(),
            "truncation at {end} did not error"
        );
    }
    let step = (bytes.len() / 251).max(1);
    for pos in (0..bytes.len()).step_by(step) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x2d;
        let _ = import_iva(&bad, IndexTarget::Mem, &opts(), IoStats::new());
    }

    let table = make_table(60);
    let sii = SiiIndex::build(&table, &opts(), IoStats::new(), 20.0).unwrap();
    let sii_bytes = export_sii(&sii).unwrap();
    for end in 0..sii_bytes.len() {
        assert!(
            import_sii(&sii_bytes[..end], &opts(), IoStats::new()).is_err(),
            "SII truncation at {end} did not error"
        );
    }
    for pos in 0..sii_bytes.len() {
        let mut bad = sii_bytes.clone();
        bad[pos] ^= 0x2d;
        let _ = import_sii(&bad, &opts(), IoStats::new());
    }
}
