//! Cross-system equivalence: iVA-file, SII, DST and the VA-file must all
//! return identical top-k distances (they are all exact filter-and-refine
//! methods) — and the VA-file must be the size outlier the paper says it
//! is.

use iva_baselines::{DirectScan, SiiIndex, VaFile};
use iva_core::{build_index, IndexTarget, IvaConfig, MetricKind, Query, WeightScheme};
use iva_storage::{IoStats, PagerOptions};
use iva_swt::{AttrId, SwtTable, Tuple, Value};

fn opts() -> PagerOptions {
    PagerOptions {
        page_size: 512,
        cache_bytes: 64 * 1024,
    }
}

/// Deterministic pseudo-random sparse table: `n` tuples over 12 attributes
/// (8 text / 4 numeric), ~4 defined per tuple, with value sharing.
fn make_table(n: u32, seed: u64) -> SwtTable {
    let mut t = SwtTable::create_mem(&opts(), IoStats::new()).unwrap();
    let mut text_attrs = Vec::new();
    let mut num_attrs = Vec::new();
    for i in 0..8 {
        text_attrs.push(t.define_text(&format!("T{i}")).unwrap());
    }
    for i in 0..4 {
        num_attrs.push(t.define_numeric(&format!("N{i}")).unwrap());
    }
    let words = [
        "canon",
        "cannon",
        "sony",
        "nikon",
        "camera",
        "album",
        "google",
        "red",
        "wide-angle",
    ];
    let mut state = seed;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..n {
        let mut tuple = Tuple::new();
        let fields = 1 + rnd() % 5;
        for _ in 0..fields {
            if rnd() % 3 == 0 {
                let a = num_attrs[(rnd() % 4) as usize];
                tuple.set(a, Value::num((rnd() % 1000) as f64 / 3.0));
            } else {
                let a = text_attrs[(rnd() % 8) as usize];
                let w = words[(rnd() % words.len() as u64) as usize];
                if rnd() % 5 == 0 {
                    let w2 = words[(rnd() % words.len() as u64) as usize];
                    tuple.set(a, Value::texts([w, w2]));
                } else {
                    tuple.set(a, Value::text(w));
                }
            }
        }
        t.insert(&tuple).unwrap();
    }
    t
}

fn queries() -> Vec<Query> {
    vec![
        Query::new().text(AttrId(0), "canon"),
        Query::new().text(AttrId(1), "camera").num(AttrId(9), 100.0),
        Query::new().num(AttrId(8), 50.0).num(AttrId(10), 200.0),
        Query::new()
            .text(AttrId(2), "wide-angle")
            .text(AttrId(3), "sony")
            .num(AttrId(11), 10.0),
    ]
}

#[test]
fn all_four_methods_agree() {
    let table = make_table(400, 7);
    let iva = build_index(
        &table,
        IndexTarget::Mem,
        &opts(),
        IoStats::new(),
        IvaConfig::default(),
    )
    .unwrap();
    let sii = SiiIndex::build(&table, &opts(), IoStats::new(), 20.0).unwrap();
    let dst = DirectScan::new(20.0);
    let va = VaFile::build(&table, &opts(), IoStats::new(), 2, 20.0).unwrap();

    for q in queries() {
        for metric in [MetricKind::L1, MetricKind::L2, MetricKind::LInf] {
            for w in [WeightScheme::Equal, WeightScheme::Itf] {
                let k = 10;
                let a = iva.query(&table, &q, k, &metric, w).unwrap();
                let b = sii.query(&table, &q, k, &metric, w).unwrap();
                let c = dst.query(&table, &q, k, &metric, w).unwrap();
                let d = va.query(&table, &q, k, &metric, w).unwrap();
                let da: Vec<f64> = a.results.iter().map(|e| e.dist).collect();
                let db: Vec<f64> = b.results.iter().map(|e| e.dist).collect();
                let dc: Vec<f64> = c.results.iter().map(|e| e.dist).collect();
                let dd: Vec<f64> = d.results.iter().map(|e| e.dist).collect();
                for (x, y) in da.iter().zip(&db) {
                    assert!((x - y).abs() < 1e-9, "iva vs sii: {da:?} {db:?}");
                }
                for (x, y) in da.iter().zip(&dc) {
                    assert!((x - y).abs() < 1e-9, "iva vs dst: {da:?} {dc:?}");
                }
                for (x, y) in da.iter().zip(&dd) {
                    assert!((x - y).abs() < 1e-9, "iva vs va: {da:?} {dd:?}");
                }
            }
        }
    }
}

#[test]
fn iva_filters_better_than_sii() {
    // The headline claim (Fig. 8): content-conscious filtering admits far
    // fewer candidates than defined/ndf-only filtering.
    let table = make_table(2000, 11);
    let iva = build_index(
        &table,
        IndexTarget::Mem,
        &opts(),
        IoStats::new(),
        IvaConfig::default(),
    )
    .unwrap();
    let sii = SiiIndex::build(&table, &opts(), IoStats::new(), 20.0).unwrap();

    let mut iva_total = 0u64;
    let mut sii_total = 0u64;
    for q in queries() {
        let a = iva
            .query(&table, &q, 10, &MetricKind::L2, WeightScheme::Equal)
            .unwrap();
        let b = sii
            .query(&table, &q, 10, &MetricKind::L2, WeightScheme::Equal)
            .unwrap();
        iva_total += a.stats.table_accesses;
        sii_total += b.stats.table_accesses;
    }
    assert!(
        iva_total * 2 < sii_total,
        "iVA accesses ({iva_total}) not clearly below SII ({sii_total})"
    );
}

#[test]
fn sii_update_paths_stay_exact() {
    let mut table = make_table(100, 3);
    let mut sii = SiiIndex::build(&table, &opts(), IoStats::new(), 20.0).unwrap();
    let dst = DirectScan::new(20.0);

    // Inserts (including on a brand-new attribute).
    let color = table.define_text("Color").unwrap();
    for i in 0..20u32 {
        let tuple = Tuple::new()
            .with(AttrId(0), Value::text(format!("new item {i}")))
            .with(color, Value::text(if i % 2 == 0 { "red" } else { "blue" }));
        let (tid, ptr) = table.insert(&tuple).unwrap();
        sii.insert(tid, ptr, &tuple, table.catalog()).unwrap();
    }
    // Deletes.
    for tid in [5u64, 50, 105] {
        if let Some(ptr) = sii.lookup_ptr(tid).unwrap() {
            table.delete(ptr).unwrap();
            assert!(sii.delete(tid).unwrap());
        }
    }
    assert!(sii.deleted_fraction() > 0.0);

    for q in [
        Query::new().text(color, "red"),
        Query::new().text(AttrId(0), "new item 7"),
    ] {
        let a = sii
            .query(&table, &q, 8, &MetricKind::L2, WeightScheme::Equal)
            .unwrap();
        let b = dst
            .query(&table, &q, 8, &MetricKind::L2, WeightScheme::Equal)
            .unwrap();
        let da: Vec<f64> = a.results.iter().map(|e| e.dist).collect();
        let db: Vec<f64> = b.results.iter().map(|e| e.dist).collect();
        for (x, y) in da.iter().zip(&db) {
            assert!((x - y).abs() < 1e-9, "{da:?} vs {db:?}");
        }
    }
}

#[test]
fn vafile_size_exceeds_table_on_sparse_data() {
    // Sec. V: "The VA-file is excluded from our evaluations as its size far
    // exceeds that of the table file." Reproduce on a sparse, wide table.
    let mut t = SwtTable::create_mem(&opts(), IoStats::new()).unwrap();
    for i in 0..200 {
        t.define_numeric(&format!("N{i}")).unwrap();
    }
    // 300 tuples, each defining only 5 of the 200 attributes.
    let mut state = 99u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        state >> 33
    };
    for _ in 0..300 {
        let mut tuple = Tuple::new();
        for _ in 0..5 {
            tuple.set(
                AttrId((rnd() % 200) as u32),
                Value::num((rnd() % 1000) as f64),
            );
        }
        t.insert(&tuple).unwrap();
    }
    let va = VaFile::build(&t, &opts(), IoStats::new(), 2, 20.0).unwrap();
    let iva = build_index(
        &t,
        IndexTarget::Mem,
        &opts(),
        IoStats::new(),
        IvaConfig::default(),
    )
    .unwrap();
    let table_size = t.file().size_bytes();
    assert!(
        va.size_bytes() > table_size,
        "VA-file {} should exceed table {}",
        va.size_bytes(),
        table_size
    );
    assert!(
        iva.size_bytes() < va.size_bytes(),
        "iVA {} should be far below VA {}",
        iva.size_bytes(),
        va.size_bytes()
    );
}

#[test]
fn dst_is_parameter_insensitive() {
    let table = make_table(500, 23);
    let dst = DirectScan::new(20.0);
    let q1 = Query::new().text(AttrId(0), "canon");
    let q3 = queries()[3].clone();
    let a = dst
        .query(&table, &q1, 5, &MetricKind::L2, WeightScheme::Equal)
        .unwrap();
    let b = dst
        .query(&table, &q3, 25, &MetricKind::L1, WeightScheme::Itf)
        .unwrap();
    // Same number of tuples touched regardless of query shape or k.
    assert_eq!(a.stats.tuples_scanned, b.stats.tuples_scanned);
    assert_eq!(a.stats.table_accesses, b.stats.table_accesses);
}
