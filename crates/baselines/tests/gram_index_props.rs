//! Property test: the n-gram inverted index finds exactly the strings a
//! brute-force edit-distance scan finds, for arbitrary data and queries —
//! including degenerate tiny strings where the count filter cannot prune.

use proptest::prelude::*;

use iva_baselines::GramIndex;
use iva_core::Result;
use iva_storage::{IoStats, PagerOptions};
use iva_swt::{SwtTable, Tuple, Value};
use iva_text::edit_distance;

fn build_table(strings: &[String]) -> Result<(SwtTable, iva_swt::AttrId)> {
    let opts = PagerOptions {
        page_size: 512,
        cache_bytes: 16 * 1024,
    };
    let mut t = SwtTable::create_mem(&opts, IoStats::new())?;
    let a = t.define_text("a")?;
    for s in strings {
        t.insert(&Tuple::new().with(a, Value::text(s.clone())))?;
    }
    Ok((t, a))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn search_equals_brute_force(
        strings in proptest::collection::vec("[a-d]{1,8}", 1..25),
        query in "[a-d]{1,8}",
        tau in 0usize..5,
        n in 2usize..4,
    ) {
        let (table, attr) = build_table(&strings).unwrap();
        let idx = GramIndex::build(&table, attr, n).unwrap();
        let mut got: Vec<String> =
            idx.search(&query, tau).into_iter().map(|m| m.string).collect();
        got.sort();
        let mut expect: Vec<String> = strings
            .iter()
            .filter(|s| edit_distance(&query, s) <= tau)
            .cloned()
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect, "query={} tau={} n={}", query, tau, n);
    }

    #[test]
    fn reported_edits_are_true_distances(
        strings in proptest::collection::vec("[a-e]{2,10}", 1..15),
        query in "[a-e]{2,10}",
    ) {
        let (table, attr) = build_table(&strings).unwrap();
        let idx = GramIndex::build(&table, attr, 2).unwrap();
        for m in idx.search(&query, 3) {
            prop_assert_eq!(m.edits, edit_distance(&query, &m.string));
            prop_assert!(m.edits <= 3);
        }
    }
}
