//! Fuzz-style hardening of the signature estimators: arbitrary signature
//! bytes (as a damaged vector list would produce) must yield a typed
//! `SigError` or a finite estimate — never a panic or an out-of-bounds
//! slice.

use proptest::prelude::*;

use iva_text::{QueryStringMatcher, SigCodec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes through both the scalar and the prepared
    /// estimator, across randomized signature geometries.
    #[test]
    fn arbitrary_signature_bytes_never_panic(
        alpha in 0.1f64..0.5,
        n in 2usize..5,
        query in "[a-z]{1,24}",
        sig in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        let codec = SigCodec::new(alpha, n);
        let matcher = QueryStringMatcher::new(&codec, query.as_bytes());
        if let Ok(est) = matcher.estimate_scalar(&codec, &sig) {
            prop_assert!(est.is_finite() && est >= 0.0);
        }
        let prepared = matcher.prepare(&codec);
        if let Ok(est) = prepared.estimate(&sig) {
            prop_assert!(est.is_finite() && est >= 0.0);
        }
    }

    /// A valid signature with one flipped byte (silent single-byte
    /// corruption) must still produce an error or a finite estimate.
    #[test]
    fn mutated_signature_never_panics(
        alpha in 0.1f64..0.5,
        n in 2usize..5,
        query in "[a-z]{1,24}",
        value in "[a-z ]{1,40}",
        at in any::<prop::sample::Index>(),
        xor in 1u8..255,
    ) {
        let codec = SigCodec::new(alpha, n);
        let mut sig = codec.encode_to_vec(value.as_bytes());
        let at = at.index(sig.len());
        sig[at] ^= xor;
        let matcher = QueryStringMatcher::new(&codec, query.as_bytes());
        let prepared = matcher.prepare(&codec);
        if let Ok(est) = prepared.estimate(&sig) {
            prop_assert!(est.is_finite() && est >= 0.0);
        }
        if let Ok(est) = matcher.estimate_scalar(&codec, &sig) {
            prop_assert!(est.is_finite() && est >= 0.0);
        }
    }
}
