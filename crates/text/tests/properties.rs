//! Property tests for the nG-signature machinery.
//!
//! The headline invariant is Proposition 3.3: the signature estimator never
//! exceeds the true edit distance, for any strings and any (α, n)
//! configuration — this is what makes iVA-file filtering exact.

use proptest::prelude::*;

use iva_text::{
    edit_distance_bytes, edit_distance_within, est_prime, GramMultiset, PreparedMatcher,
    QueryStringMatcher, SigCodec,
};

fn short_string() -> impl Strategy<Value = Vec<u8>> {
    // Printable-ish bytes incl. spaces; community strings are short.
    proptest::collection::vec(0x20u8..0x7f, 0..40)
}

fn long_string() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0x20u8..0x7f, 200..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn edit_distance_symmetric(a in short_string(), b in short_string()) {
        prop_assert_eq!(edit_distance_bytes(&a, &b), edit_distance_bytes(&b, &a));
    }

    #[test]
    fn edit_distance_triangle(a in short_string(), b in short_string(), c in short_string()) {
        let ab = edit_distance_bytes(&a, &b);
        let bc = edit_distance_bytes(&b, &c);
        let ac = edit_distance_bytes(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn edit_distance_identity(a in short_string()) {
        prop_assert_eq!(edit_distance_bytes(&a, &a), 0);
    }

    #[test]
    fn edit_distance_length_bound(a in short_string(), b in short_string()) {
        let d = edit_distance_bytes(&a, &b);
        prop_assert!(d >= a.len().abs_diff(b.len()));
        prop_assert!(d <= a.len().max(b.len()));
    }

    #[test]
    fn banded_matches_full(a in short_string(), b in short_string(), bound in 0usize..12) {
        let full = edit_distance_bytes(&a, &b);
        let banded = edit_distance_within(&a, &b, bound);
        if full <= bound {
            prop_assert_eq!(banded, Some(full));
        } else {
            prop_assert_eq!(banded, None);
        }
    }

    #[test]
    fn est_prime_is_lower_bound(a in short_string(), b in short_string(), n in 2usize..5) {
        let est = est_prime(&a, &b, n);
        let ed = edit_distance_bytes(&a, &b) as f64;
        prop_assert!(est <= ed + 1e-9, "est'={est} ed={ed}");
    }

    #[test]
    fn signature_estimate_is_lower_bound(
        a in short_string(),
        b in short_string(),
        alpha in 0.05f64..0.9,
        n in 2usize..5,
    ) {
        let codec = SigCodec::new(alpha, n);
        let sig = codec.encode_to_vec(&b);
        let m = PreparedMatcher::new(&codec, &a);
        let est = m.estimate(&sig).unwrap();
        let ed = edit_distance_bytes(&a, &b) as f64;
        prop_assert!(est <= ed + 1e-9, "est={est} ed={ed} alpha={alpha} n={n}");
    }

    #[test]
    fn signature_estimate_lower_bound_long_strings(
        a in long_string(),
        b in long_string(),
    ) {
        // Length clamping at 255 must preserve the bound.
        let codec = SigCodec::new(0.2, 2);
        let sig = codec.encode_to_vec(&b);
        let m = PreparedMatcher::new(&codec, &a);
        let est = m.estimate(&sig).unwrap();
        let ed = edit_distance_bytes(&a, &b) as f64;
        prop_assert!(est <= ed + 1e-9, "est={est} ed={ed}");
    }

    #[test]
    fn signature_self_estimate_zero(a in short_string(), alpha in 0.05f64..0.9, n in 2usize..5) {
        let codec = SigCodec::new(alpha, n);
        let sig = codec.encode_to_vec(&a);
        let m = PreparedMatcher::new(&codec, &a);
        prop_assert_eq!(m.estimate(&sig).unwrap(), 0.0);
    }

    #[test]
    fn estimate_at_most_est_prime(a in short_string(), b in short_string()) {
        // |hg| >= |cg| implies est <= est'.
        let codec = SigCodec::new(0.2, 2);
        let sig = codec.encode_to_vec(&b);
        let m = PreparedMatcher::new(&codec, &a);
        let est = m.estimate(&sig).unwrap();
        let estp = est_prime(&a, &b, 2);
        prop_assert!(est <= estp + 1e-9);
    }

    #[test]
    fn kernel_bit_identical_to_scalar_reference(
        q in short_string(),
        data in proptest::collection::vec(
            proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..300),
            1..24,
        ),
        alpha in 0.05f64..1.0,
        n in 2usize..6,
    ) {
        // The packed-mask word kernel must reproduce the retained scalar
        // reference bit for bit: arbitrary bytes (not just printable),
        // lengths through the 255 clamp, randomized (α, n) geometry.
        let codec = SigCodec::new(alpha, n);
        let builder = QueryStringMatcher::new(&codec, &q);
        let prepared = builder.prepare(&codec);
        for d in &data {
            let sig = codec.encode_to_vec(d);
            let kernel = prepared.estimate(&sig).unwrap();
            let scalar = builder.estimate_scalar(&codec, &sig).unwrap();
            prop_assert_eq!(
                kernel.to_bits(), scalar.to_bits(),
                "kernel={} scalar={} |d|={} alpha={} n={}",
                kernel, scalar, d.len(), alpha, n
            );
        }
    }

    #[test]
    fn kernel_every_length_byte_matches_scalar(
        q in short_string(),
        alpha in 0.05f64..1.0,
        n in 2usize..5,
        fill in (0u16..256).prop_map(|b| b as u8),
    ) {
        // Sweep every possible length byte 0..=255 so each geometry row of
        // the prepared table is exercised against the reference.
        let codec = SigCodec::new(alpha, n);
        let builder = QueryStringMatcher::new(&codec, &q);
        let prepared = builder.prepare(&codec);
        for len in 0usize..=255 {
            let d = vec![fill; len];
            let sig = codec.encode_to_vec(&d);
            let kernel = prepared.estimate(&sig).unwrap();
            let scalar = builder.estimate_scalar(&codec, &sig).unwrap();
            prop_assert_eq!(kernel.to_bits(), scalar.to_bits(), "len={}", len);
        }
    }

    #[test]
    fn block_estimates_match_single_calls(
        q in short_string(),
        data in proptest::collection::vec(proptest::collection::vec(0x20u8..0x7f, 0..64), 1..40),
        alpha in 0.05f64..0.9,
        n in 2usize..5,
    ) {
        let codec = SigCodec::new(alpha, n);
        let m = PreparedMatcher::new(&codec, &q);
        let stride = codec.max_encoded_len();
        let mut block = vec![0u8; data.len() * stride];
        let mut singles = Vec::with_capacity(data.len());
        for (i, d) in data.iter().enumerate() {
            let sig = codec.encode_to_vec(d);
            block[i * stride..i * stride + sig.len()].copy_from_slice(&sig);
            singles.push(m.estimate(&sig).unwrap());
        }
        let mut out = vec![0.0f64; data.len()];
        m.estimate_block(&block, stride, &mut out).unwrap();
        for (got, want) in out.iter().zip(&singles) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn truncated_signatures_error_not_panic(
        q in short_string(),
        d in short_string(),
        alpha in 0.05f64..0.9,
        n in 2usize..5,
    ) {
        let codec = SigCodec::new(alpha, n);
        let builder = QueryStringMatcher::new(&codec, &q);
        let m = builder.prepare(&codec);
        let sig = codec.encode_to_vec(&d);
        for cut in 0..sig.len() {
            prop_assert!(m.estimate(&sig[..cut]).is_err(), "cut={}", cut);
            prop_assert!(builder.estimate_scalar(&codec, &sig[..cut]).is_err());
        }
        prop_assert!(m.estimate(&sig).is_ok());
    }

    #[test]
    fn gram_multiset_size_formula(a in short_string(), n in 2usize..5) {
        let g = GramMultiset::new(&a, n);
        prop_assert_eq!(g.size(), (a.len() + n - 1) as u64);
    }

    #[test]
    fn common_grams_bounded_by_sizes(a in short_string(), b in short_string()) {
        let ga = GramMultiset::new(&a, 2);
        let gb = GramMultiset::new(&b, 2);
        let c = ga.common_size(&gb);
        prop_assert!(c <= ga.size());
        prop_assert!(c <= gb.size());
        prop_assert_eq!(c, gb.common_size(&ga));
    }

    #[test]
    fn signature_encoding_deterministic(a in short_string()) {
        let codec = SigCodec::new(0.2, 2);
        prop_assert_eq!(codec.encode_to_vec(&a), codec.encode_to_vec(&a));
    }
}
