//! lint:scope(no-panic-decode)
//! nG-signature parameter analysis (Sec. III-B.3 and Appendix A).
//!
//! The probability that a gram which is *not* in the data string is a false
//! hit in an `l`-bit signature built with `t` bits per gram from a string
//! with `g = |sd| + n − 1` grams is (Eq. 6):
//!
//! ```text
//! p = (1 − (1 − t/l)^g)^t
//! ```
//!
//! and the expected relative estimation error is `ē ≈ p` (Eq. 5). The paper
//! picks, for each `l`, the `t` minimizing `ē`; it notes the proper `t` "can
//! be pre-calculated and stored in an in-memory table to save the run-time
//! cpu burden" — [`optimal_t`] with the memoized table in
//! [`SigParams`](crate::signature::SigCodec) does exactly that.

/// False-hit probability `p(l, t, g)` of Eq. 6.
pub fn false_hit_probability(l_bits: u32, t: u32, grams: u32) -> f64 {
    debug_assert!(t >= 1 && t < l_bits);
    let frac = 1.0 - f64::from(t) / f64::from(l_bits);
    (1.0 - frac.powi(grams as i32)).powi(t as i32)
}

/// Expected relative error `ē` of the signature estimator (Eq. 5): equals
/// the false-hit probability.
pub fn expected_relative_error(l_bits: u32, t: u32, grams: u32) -> f64 {
    false_hit_probability(l_bits, t, grams)
}

/// Maximum `t` worth searching; the optimum for realistic `l/g` ratios is
/// tiny (1–4), so 32 is a generous cap.
const T_SEARCH_CAP: u32 = 32;

/// The `t` in `1..l` minimizing the expected error for an `l`-bit signature
/// of a string with `grams` n-grams. Ties break toward smaller `t` (cheaper
/// hashing).
pub fn optimal_t(l_bits: u32, grams: u32) -> u32 {
    debug_assert!(l_bits >= 2);
    let grams = grams.max(1);
    let mut best_t = 1;
    let mut best_p = false_hit_probability(l_bits, 1, grams);
    for t in 2..l_bits.min(T_SEARCH_CAP + 1) {
        let p = false_hit_probability(l_bits, t, grams);
        if p < best_p {
            best_p = p;
            best_t = t;
        }
    }
    best_t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_in_unit_interval() {
        for l in [8u32, 16, 32, 64, 128] {
            for t in 1..l.min(8) {
                for g in [1u32, 3, 10, 50] {
                    let p = false_hit_probability(l, t, g);
                    assert!((0.0..=1.0).contains(&p), "p({l},{t},{g})={p}");
                }
            }
        }
    }

    #[test]
    fn longer_signature_lowers_error() {
        // Eq. 5 discussion: "Larger l will necessarily result in lower ē".
        let g = 18; // ~ mean Google Base string (16.8 B) with n = 2
        let e32 = expected_relative_error(32, optimal_t(32, g), g);
        let e64 = expected_relative_error(64, optimal_t(64, g), g);
        let e128 = expected_relative_error(128, optimal_t(128, g), g);
        assert!(e64 < e32);
        assert!(e128 < e64);
    }

    #[test]
    fn more_grams_raise_error_at_fixed_l() {
        let l = 64;
        let e_small = expected_relative_error(l, optimal_t(l, 5), 5);
        let e_big = expected_relative_error(l, optimal_t(l, 50), 50);
        assert!(e_big > e_small);
    }

    #[test]
    fn optimal_t_is_argmin() {
        for (l, g) in [(16u32, 10u32), (32, 18), (64, 18), (128, 30), (8, 40)] {
            let t_star = optimal_t(l, g);
            let p_star = false_hit_probability(l, t_star, g);
            for t in 1..l.min(T_SEARCH_CAP + 1) {
                assert!(
                    p_star <= false_hit_probability(l, t, g) + 1e-15,
                    "t*={t_star} beaten by t={t} at l={l} g={g}"
                );
            }
        }
    }

    #[test]
    fn optimal_t_small_for_dense_signatures() {
        // l/g ≈ 1.8 bits per gram (the α = 20 % default): t should be 1–2.
        let t = optimal_t(32, 18);
        assert!(t <= 2, "t={t}");
    }

    #[test]
    fn zero_grams_clamped() {
        // Degenerate but must not panic or return t >= l.
        let t = optimal_t(8, 0);
        assert!((1..8).contains(&t));
    }
}
