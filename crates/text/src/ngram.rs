//! lint:scope(no-panic-decode)
//! Padded n-grams and n-gram multisets (Sec. III-B.1/III-B.2 of the paper).
//!
//! To obtain the n-grams of a string `s`, extend it with `n−1` start pads
//! and `n−1` end pads, then take every window of `n` consecutive bytes
//! (Example 3.1). Identical grams at different positions are *not* merged:
//! the gram set is a multiset of `(count, gram)` pairs (Example 3.3).
//!
//! The paper writes the pads as `#` and `$`, "two symbols out of the text
//! alphabet". Because real community data may contain those ASCII symbols,
//! we use the non-printable bytes `0x01`/`0x02` instead, which cannot occur
//! in the UTF-8 strings this system stores.

/// Start-of-string pad byte (the paper's `#`).
pub const PAD_START: u8 = 0x01;
/// End-of-string pad byte (the paper's `$`).
pub const PAD_END: u8 = 0x02;

/// Number of n-grams of a string of `len` bytes: `len + n − 1`.
pub fn gram_count(len: usize, n: usize) -> usize {
    len + n - 1
}

/// Produce the padded byte sequence of `s` for gram extraction.
pub fn padded(s: &[u8], n: usize) -> Vec<u8> {
    let mut p = Vec::with_capacity(s.len() + 2 * (n - 1));
    p.extend(std::iter::repeat_n(PAD_START, n - 1));
    p.extend_from_slice(s);
    p.extend(std::iter::repeat_n(PAD_END, n - 1));
    p
}

/// Iterate over the n-grams of `s` in positional order.
///
/// The returned vector owns the padded buffer; grams are windows into it.
pub fn grams_of(s: &[u8], n: usize) -> Vec<Vec<u8>> {
    assert!(n >= 1, "gram length must be >= 1");
    let p = padded(s, n);
    p.windows(n).map(|w| w.to_vec()).collect()
}

/// A multiset of n-grams: sorted `(gram, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GramMultiset {
    entries: Vec<(Vec<u8>, u32)>,
}

impl GramMultiset {
    /// Build the n-gram multiset `g(s)` of a byte string.
    pub fn new(s: &[u8], n: usize) -> Self {
        let mut grams = grams_of(s, n);
        grams.sort_unstable();
        let mut entries: Vec<(Vec<u8>, u32)> = Vec::new();
        for g in grams {
            match entries.last_mut() {
                Some((last, c)) if *last == g => *c += 1,
                _ => entries.push((g, 1)),
            }
        }
        Self { entries }
    }

    /// The multiset size `|Ω| = Σ aᵢ` (Example 3.3).
    pub fn size(&self) -> u64 {
        self.entries.iter().map(|(_, c)| u64::from(*c)).sum()
    }

    /// Number of distinct grams.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Iterate over `(gram, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], u32)> {
        self.entries.iter().map(|(g, c)| (g.as_slice(), *c))
    }

    /// Size of the common gram multiset `|cg(self, other)| = Σ min(a₁,a₂)`.
    pub fn common_size(&self, other: &GramMultiset) -> u64 {
        let (mut i, mut j) = (0, 0);
        let mut total = 0u64;
        while let (Some(a), Some(b)) = (self.entries.get(i), other.entries.get(j)) {
            match a.0.cmp(&b.0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    total += u64::from(a.1.min(b.1));
                    i += 1;
                    j += 1;
                }
            }
        }
        total
    }
}

/// The reference estimator `est′(sq, sd)` of Eq. 1:
/// `(max(|sq|,|sd|) − |cg(sq,sd)| − 1)/n + 1`, clamped at 0.
///
/// By Gravano et al. (the paper's Eq. 2) this never exceeds the true edit
/// distance.
pub fn est_prime(sq: &[u8], sd: &[u8], n: usize) -> f64 {
    let gq = GramMultiset::new(sq, n);
    let gd = GramMultiset::new(sd, n);
    let cg = gq.common_size(&gd) as f64;
    let m = sq.len().max(sd.len()) as f64;
    ((m - cg - 1.0) / n as f64 + 1.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance::edit_distance_bytes;

    #[test]
    fn example_3_1_three_grams_of_yes() {
        // "##y", "#ye", "yes", "es$", "s$$" with our pad bytes.
        let grams = grams_of(b"yes", 3);
        assert_eq!(grams.len(), 5);
        assert_eq!(grams[0], vec![PAD_START, PAD_START, b'y']);
        assert_eq!(grams[1], vec![PAD_START, b'y', b'e']);
        assert_eq!(grams[2], b"yes".to_vec());
        assert_eq!(grams[3], vec![b'e', b's', PAD_END]);
        assert_eq!(grams[4], vec![b's', PAD_END, PAD_END]);
    }

    #[test]
    fn example_3_3_gram_set_of_www() {
        // 2-gram set of "www" is {(1,"#w"), (2,"ww"), (1,"w$")}, size 4.
        let g = GramMultiset::new(b"www", 2);
        assert_eq!(g.size(), 4);
        assert_eq!(g.distinct(), 3);
        let entries: Vec<_> = g.iter().collect();
        assert!(entries.contains(&(&[b'w', b'w'][..], 2)));
    }

    #[test]
    fn gram_count_formula() {
        for n in 2..=5 {
            for len in 0..20 {
                let s: Vec<u8> = (0..len).map(|i| b'a' + (i % 26) as u8).collect();
                assert_eq!(grams_of(&s, n).len(), gram_count(len as usize, n));
            }
        }
    }

    #[test]
    fn common_size_is_intersection() {
        let a = GramMultiset::new(b"canon", 2);
        let b = GramMultiset::new(b"cannon", 2);
        let c = a.common_size(&b);
        assert_eq!(c, b.common_size(&a));
        assert!(c <= a.size().min(b.size()));
        assert_eq!(a.common_size(&a), a.size());
    }

    #[test]
    fn est_prime_lower_bounds_edit_distance() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"canon", b"cannon"),
            (b"digital camera", b"digtal camera"),
            (b"google", b"yahoo"),
            (b"a", b"abcdefgh"),
            (b"same", b"same"),
            (b"x", b"y"),
        ];
        for n in 2..=4 {
            for &(a, b) in pairs {
                let est = est_prime(a, b, n);
                let ed = edit_distance_bytes(a, b) as f64;
                assert!(est <= ed + 1e-9, "est'({a:?},{b:?},n={n})={est} > ed={ed}");
            }
        }
    }

    #[test]
    fn est_prime_zero_for_identical() {
        assert_eq!(est_prime(b"identical", b"identical", 2), 0.0);
    }
}
