//! lint:scope(no-panic-decode)
//! The nG-signature (Sec. III-B): encoding, hit testing and the lower-bound
//! edit-distance estimator `est(sq, c(sd))` of Eq. 3.
//!
//! A signature `c(s)` has two parts: the lower bits `cL(s)` record the
//! string length (one byte here, clamped to 255 — clamping can only shrink
//! the estimate, preserving the no-false-negative guarantee), and the higher
//! bits `cH[l,t](s)` are the OR of `h[l,t](ωᵢ)` over all n-grams `ωᵢ`
//! (Example 3.2).
//!
//! The signature width follows the iVA-file's *relative vector length* `α`
//! (Sec. III-D): `cH` occupies `⌈α·(|s|+n−1)⌉` bytes, so `l = 8·⌈α·(|s|+n−1)⌉`
//! bits, and `t = argmin ē` per the appendix analysis, both precomputed per
//! possible length byte in [`SigCodec`].
//!
//! Estimation runs through two implementations:
//!
//! * [`PreparedMatcher`] — the production kernel. All query-gram hashes are
//!   packed at build time into `u64`-word bitmasks, one mask per distinct
//!   gram per signature geometry, so the per-signature hit test is
//!   branch-free word arithmetic (`mask & !sig == 0`). The matcher is
//!   immutable after construction and can be shared by reference across
//!   scan worker threads.
//! * [`QueryStringMatcher::estimate_scalar`] — the retained scalar
//!   reference implementation, which recomputes gram bit positions per call
//!   and tests them byte by byte. Property tests pin the kernel to this
//!   reference bit for bit.

use crate::hash::{gram_bit_positions, or_gram_into, positions_hit};
use crate::ngram::{gram_count, grams_of, GramMultiset};
use crate::params::optimal_t;

/// Signature bytes failed validation during estimation.
///
/// The estimator is fed raw bytes scanned from on-disk vector lists, so a
/// truncated or mangled element must surface as a recoverable error, never
/// a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigError {
    /// The signature slice was empty (no length byte).
    Empty,
    /// The signature is shorter than its length byte declares.
    Truncated {
        /// Bytes the declared geometry requires (including the length byte).
        need: usize,
        /// Bytes actually present.
        got: usize,
    },
}

impl std::fmt::Display for SigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SigError::Empty => write!(f, "empty signature"),
            SigError::Truncated { need, got } => {
                write!(f, "truncated signature: need {need} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for SigError {}

/// Precomputed signature geometry for one `(α, n)` configuration.
///
/// ```
/// use iva_text::{edit_distance, PreparedMatcher, SigCodec};
///
/// let codec = SigCodec::new(0.2, 2); // the paper's defaults
/// let sig = codec.encode_to_vec(b"canon");
///
/// // The estimator never exceeds the true edit distance:
/// let matcher = PreparedMatcher::new(&codec, b"cannon");
/// let est = matcher.estimate(&sig).unwrap();
/// assert!(est <= edit_distance("cannon", "canon") as f64);
///
/// // Identical strings always estimate zero:
/// let same = PreparedMatcher::new(&codec, b"canon");
/// assert_eq!(same.estimate(&sig).unwrap(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SigCodec {
    n: usize,
    alpha: f64,
    /// Indexed by the clamped length byte: `(cH bytes, l bits, t)`.
    table: Vec<(u16, u16, u8)>,
}

impl SigCodec {
    /// Build the codec for gram length `n` (≥ 2) and relative vector length
    /// `α ∈ (0, 1]`.
    pub fn new(alpha: f64, n: usize) -> Self {
        assert!(n >= 2, "gram length must be >= 2");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        let table = (0..=255usize)
            .map(|len| {
                let grams = gram_count(len, n) as u32;
                let ch_bytes = ((alpha * grams as f64).ceil() as u16).max(1);
                let l_bits = ch_bytes * 8;
                let t = optimal_t(u32::from(l_bits), grams) as u8;
                (ch_bytes, l_bits, t)
            })
            .collect();
        Self { n, alpha, table }
    }

    /// Gram length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Relative vector length `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The length byte stored for a string of `len` bytes.
    pub fn clamp_len(len: usize) -> u8 {
        len.min(255) as u8
    }

    /// `cH` size in bytes for a given length byte.
    pub fn ch_bytes(&self, len_byte: u8) -> usize {
        self.table
            .get(usize::from(len_byte))
            .map_or(0, |e| usize::from(e.0))
    }

    /// Total encoded signature size (`cL` + `cH`) for a given length byte.
    pub fn encoded_len(&self, len_byte: u8) -> usize {
        1 + self.ch_bytes(len_byte)
    }

    /// The largest encoded signature size any length byte can produce.
    pub fn max_encoded_len(&self) -> usize {
        self.encoded_len(255)
    }

    /// `(l bits, t)` for a given length byte.
    pub fn geometry(&self, len_byte: u8) -> (u32, u32) {
        self.table
            .get(usize::from(len_byte))
            .map_or((0, 0), |&(_, l, t)| (u32::from(l), u32::from(t)))
    }

    /// Encode the nG-signature of `s`, appending `[cL][cH...]` to `out`.
    /// Returns the number of bytes written.
    pub fn encode(&self, s: &[u8], out: &mut Vec<u8>) -> usize {
        let len_byte = Self::clamp_len(s.len());
        let (l, t) = self.geometry(len_byte);
        let ch = self.ch_bytes(len_byte);
        out.push(len_byte);
        let start = out.len();
        out.resize(start + ch, 0);
        let mut scratch = Vec::with_capacity(t as usize);
        for gram in grams_of(s, self.n) {
            let dst = out.get_mut(start..).unwrap_or(&mut []);
            or_gram_into(&gram, l, t, dst, &mut scratch);
        }
        1 + ch
    }

    /// Encode into a fresh vector.
    pub fn encode_to_vec(&self, s: &[u8]) -> Vec<u8> {
        let mut v = Vec::new();
        self.encode(s, &mut v);
        v
    }
}

/// Query-side gram extraction for one query string: the *build step* of
/// estimation. Holds the distinct grams and their multiset counts; call
/// [`QueryStringMatcher::prepare`] to bake them into the immutable
/// word-level kernel used on the scan hot path, or
/// [`QueryStringMatcher::estimate_scalar`] for the slow reference
/// evaluation.
#[derive(Debug, Clone)]
pub struct QueryStringMatcher {
    q_len: usize,
    n: usize,
    /// Distinct query grams.
    grams: Vec<Vec<u8>>,
    /// Multiset count of each distinct gram (parallel to `grams`).
    counts: Vec<u32>,
}

impl QueryStringMatcher {
    /// Extract the gram multiset of query string `sq`.
    pub fn new(codec: &SigCodec, sq: &[u8]) -> Self {
        let ms = GramMultiset::new(sq, codec.n);
        let grams: Vec<Vec<u8>> = ms.iter().map(|(g, _)| g.to_vec()).collect();
        let counts: Vec<u32> = ms.iter().map(|(_, c)| c).collect();
        Self {
            q_len: sq.len(),
            n: codec.n,
            grams,
            counts,
        }
    }

    /// Query string length in bytes.
    pub fn query_len(&self) -> usize {
        self.q_len
    }

    /// Bake the packed-mask tables for every possible length byte and
    /// return the immutable estimation kernel.
    pub fn prepare(&self, codec: &SigCodec) -> PreparedMatcher {
        PreparedMatcher::build(codec, self)
    }

    /// Reference implementation of `est(sq, c(sd))` (Eq. 3): per-call gram
    /// hashing, byte-level hit tests. Bit-identical to
    /// [`PreparedMatcher::estimate`]; kept as the property-test oracle and
    /// for one-off evaluations that do not amortize a `prepare` call.
    pub fn estimate_scalar(&self, codec: &SigCodec, sig: &[u8]) -> Result<f64, SigError> {
        let Some((&len_byte, rest)) = sig.split_first() else {
            return Err(SigError::Empty);
        };
        let ch_bytes = codec.ch_bytes(len_byte);
        let ch = rest.get(..ch_bytes).ok_or(SigError::Truncated {
            need: 1 + ch_bytes,
            got: sig.len(),
        })?;
        let (l, t) = codec.geometry(len_byte);
        let mut pos = Vec::with_capacity(t as usize);
        let mut hg = 0u64;
        for (g, &c) in self.grams.iter().zip(&self.counts) {
            gram_bit_positions(g, l, t, &mut pos);
            if positions_hit(&pos, ch) {
                hg += u64::from(c);
            }
        }
        Ok(finish_estimate(self.q_len, len_byte, hg, self.n))
    }
}

/// The final Eq. 3 arithmetic, shared verbatim by the scalar reference and
/// the word-level kernel so their results are bit-identical.
#[inline]
fn finish_estimate(q_len: usize, len_byte: u8, hg: u64, n: usize) -> f64 {
    let m = q_len.max(usize::from(len_byte)) as f64;
    ((m - hg as f64 - 1.0) / n as f64 + 1.0).max(0.0)
}

/// Signature-word scratch that lives on the stack for every realistic
/// geometry (64 words = 512 `cH` bytes; α ≤ 1 and |s| ≤ 255 keep `cH` under
/// this for all n ≤ 258). Larger geometries fall back to a heap buffer.
const STACK_WORDS: usize = 64;

/// Per-length-byte kernel geometry: where this length's gram masks live.
#[derive(Debug, Clone, Copy)]
struct LenPlan {
    /// `cH` bytes of this geometry.
    ch_bytes: u32,
    /// `⌈ch_bytes/8⌉` — `u64` words per gram mask.
    words: u32,
    /// Offset of this length's first gram mask in [`PreparedMatcher::masks`].
    mask_off: u32,
    /// One-word fast path (`words == 1` only): offset/length of this
    /// geometry's deduped `(mask, count)` pairs in [`PreparedMatcher::packs`].
    pack_off: u32,
    pack_len: u32,
    /// Hit-gram count contributed unconditionally by grams whose mask is
    /// empty under this geometry (they hit every signature).
    pack_base: u64,
}

/// Immutable branch-free estimation kernel for one query string.
///
/// Construction hashes every distinct query gram once per distinct
/// signature geometry `(l, t)` and packs the `t` bit positions into
/// little-endian `u64` words. [`PreparedMatcher::estimate`] then reduces
/// the paper's hit test `h[l,t](ω) AND cH = h[l,t](ω)` to
/// `mask & !sig == 0` over `⌈l/64⌉` words per gram — no per-signature
/// allocation, no data-dependent branches in the gram loop.
///
/// The matcher is `Sync`: one instance is shared by reference across all
/// segmented-scan workers of a query.
#[derive(Debug, Clone)]
pub struct PreparedMatcher {
    q_len: usize,
    n: usize,
    /// Multiset count of each distinct gram.
    counts: Vec<u64>,
    /// One entry per possible length byte.
    plans: Vec<LenPlan>,
    /// Concatenated gram masks; `plans[len].mask_off` indexes the first
    /// word of the first gram's mask for that length's geometry. Lengths
    /// sharing a geometry share one table.
    masks: Vec<u64>,
    /// Deduped `(mask, summed count)` pairs for one-word geometries.
    /// Distinct grams frequently collide into the same single-word mask,
    /// so the block kernel tests each distinct mask once instead of once
    /// per gram.
    packs: Vec<(u64, u64)>,
    /// Largest `words` over all plans (sizes the block-scan scratch).
    max_words: usize,
}

/// Baked per-geometry offsets: `(mask_off, pack_off, pack_len, pack_base)`.
type Baked = (u32, u32, u32, u64);

impl PreparedMatcher {
    /// Build the kernel for query string `sq` — shorthand for
    /// [`QueryStringMatcher::new`] + [`QueryStringMatcher::prepare`].
    pub fn new(codec: &SigCodec, sq: &[u8]) -> Self {
        QueryStringMatcher::new(codec, sq).prepare(codec)
    }

    fn build(codec: &SigCodec, query: &QueryStringMatcher) -> Self {
        let mut plans = Vec::with_capacity(256);
        let mut masks: Vec<u64> = Vec::new();
        let mut packs: Vec<(u64, u64)> = Vec::new();
        // Consecutive length bytes frequently share (l, t); dedupe so each
        // distinct geometry hashes the query grams exactly once.
        let mut seen: Vec<((u32, u32), Baked)> = Vec::new();
        let mut pos = Vec::new();
        let mut max_words = 0usize;
        for len in 0u16..=255 {
            let len_byte = len as u8;
            let (l, t) = codec.geometry(len_byte);
            let ch_bytes = codec.ch_bytes(len_byte);
            let words = ch_bytes.div_ceil(8);
            max_words = max_words.max(words);
            let (mask_off, pack_off, pack_len, pack_base) =
                match seen.iter().find(|(k, _)| *k == (l, t)) {
                    Some(&(_, baked)) => baked,
                    None => {
                        let off = masks.len() as u32;
                        for g in &query.grams {
                            gram_bit_positions(g, l, t, &mut pos);
                            let base = masks.len();
                            masks.resize(base + words, 0);
                            for &p in &pos {
                                if let Some(w) = masks.get_mut(base + (p / 64) as usize) {
                                    *w |= 1u64 << (p % 64);
                                }
                            }
                        }
                        // One-word geometries additionally get a deduped
                        // (mask, count) table: grams that collide into the
                        // same mask are indistinguishable to the hit test,
                        // so their counts merge, and empty masks hit every
                        // signature and fold into a constant.
                        let p_off = packs.len() as u32;
                        let mut p_base = 0u64;
                        if words == 1 {
                            for (i, &c) in query.counts.iter().enumerate() {
                                let m = masks.get(off as usize + i).copied().unwrap_or(0);
                                if m == 0 {
                                    p_base += u64::from(c);
                                } else if let Some(pair) =
                                    packs.iter_mut().skip(p_off as usize).find(|p| p.0 == m)
                                {
                                    pair.1 += u64::from(c);
                                } else {
                                    packs.push((m, u64::from(c)));
                                }
                            }
                        }
                        let baked = (off, p_off, packs.len() as u32 - p_off, p_base);
                        seen.push(((l, t), baked));
                        baked
                    }
                };
            plans.push(LenPlan {
                ch_bytes: ch_bytes as u32,
                words: words as u32,
                mask_off,
                pack_off,
                pack_len,
                pack_base,
            });
        }
        Self {
            q_len: query.q_len,
            n: query.n,
            counts: query.counts.iter().map(|&c| u64::from(c)).collect(),
            plans,
            masks,
            packs,
            max_words,
        }
    }

    /// Query string length in bytes.
    pub fn query_len(&self) -> usize {
        self.q_len
    }

    /// The baked plan for a length byte. `plans` is built for every `u8`
    /// value, so the lookup is total.
    #[inline]
    fn plan_of(&self, len_byte: u8) -> LenPlan {
        self.plans
            .get(usize::from(len_byte))
            .copied()
            .unwrap_or(LenPlan {
                ch_bytes: 0,
                words: 0,
                mask_off: 0,
                pack_off: 0,
                pack_len: 0,
                pack_base: 0,
            })
    }

    /// Evaluate `est(sq, c(sd))` (Eq. 3) against an encoded signature
    /// (`[cL][cH...]`, as produced by [`SigCodec::encode`]). The result is
    /// a lower bound on `ed(sq, sd)` (Proposition 3.3), clamped at 0.
    ///
    /// Trailing bytes beyond the declared geometry are ignored (block scans
    /// hand in stride-sized cells); missing bytes are a corruption error.
    pub fn estimate(&self, sig: &[u8]) -> Result<f64, SigError> {
        let Some((&len_byte, rest)) = sig.split_first() else {
            return Err(SigError::Empty);
        };
        self.estimate_parts(len_byte, rest)
    }

    /// [`PreparedMatcher::estimate`] for callers that already consumed the
    /// length byte from the element stream (the vector-list cursors, which
    /// must read `cL` first to learn how many `cH` bytes to view).
    pub fn estimate_parts(&self, len_byte: u8, ch: &[u8]) -> Result<f64, SigError> {
        let plan = self.plan_of(len_byte);
        let ch_bytes = plan.ch_bytes as usize;
        let ch = ch.get(..ch_bytes).ok_or(SigError::Truncated {
            need: 1 + ch_bytes,
            got: 1 + ch.len(),
        })?;
        let words = plan.words as usize;
        let hg = if words <= STACK_WORDS {
            let mut scratch = [0u64; STACK_WORDS];
            self.hit_grams(plan, ch, scratch.get_mut(..words).unwrap_or(&mut []))
        } else {
            // Geometry too wide for the stack (needs n > 258): cold path.
            let mut scratch = vec![0u64; words];
            self.hit_grams(plan, ch, &mut scratch)
        };
        Ok(finish_estimate(self.q_len, len_byte, hg, self.n))
    }

    /// Estimate a contiguous block of `out.len()` encoded signatures, each
    /// occupying `stride` bytes starting at `sigs[i * stride]` (trailing
    /// padding within a cell is ignored). One scratch buffer serves the
    /// whole block; no per-element allocation.
    pub fn estimate_block(
        &self,
        sigs: &[u8],
        stride: usize,
        out: &mut [f64],
    ) -> Result<(), SigError> {
        if out.is_empty() {
            return Ok(());
        }
        if stride == 0 || sigs.len() < (out.len() - 1) * stride + 1 {
            return Err(SigError::Truncated {
                need: if stride == 0 {
                    1
                } else {
                    (out.len() - 1) * stride + 1
                },
                got: sigs.len(),
            });
        }
        let mut heap;
        let mut stack = [0u64; STACK_WORDS];
        let scratch: &mut [u64] = if self.max_words <= STACK_WORDS {
            &mut stack
        } else {
            heap = vec![0u64; self.max_words];
            &mut heap
        };
        for (i, slot) in out.iter_mut().enumerate() {
            let base = i * stride;
            // One-word fast path: the whole signature word in a single
            // load (padding beyond `ch_bytes` masked off, so garbage
            // trailing bytes stay ignored), then one test per *distinct*
            // mask from the baked pack — no scratch staging, no per-gram
            // slice arithmetic. This is the kernel the hot tier's
            // stride-packed columns are shaped for.
            if let Some(&len_byte) = sigs.get(base) {
                let plan = self.plan_of(len_byte);
                if plan.words == 1 && stride > plan.ch_bytes as usize {
                    if let Some(win) = sigs.get(base + 1..base + 9) {
                        let keep = match plan.ch_bytes {
                            8.. => !0u64,
                            cb => (1u64 << (8 * cb)) - 1,
                        };
                        let s = u64::from_le_bytes(win.try_into().unwrap_or([0u8; 8])) & keep;
                        let mut hg = plan.pack_base;
                        let p0 = plan.pack_off as usize;
                        for &(m, c) in self
                            .packs
                            .get(p0..p0 + plan.pack_len as usize)
                            .unwrap_or(&[])
                        {
                            hg += u64::from(s & m == m) * c;
                        }
                        *slot = finish_estimate(self.q_len, len_byte, hg, self.n);
                        continue;
                    }
                    // A final cell narrower than 9 bytes falls through to
                    // the exact-width path below.
                }
            }
            let cell = sigs.get(base..sigs.len().min(base + stride)).unwrap_or(&[]);
            let Some((&len_byte, rest)) = cell.split_first() else {
                return Err(SigError::Empty);
            };
            let plan = self.plan_of(len_byte);
            let ch_bytes = plan.ch_bytes as usize;
            let ch = rest.get(..ch_bytes).ok_or(SigError::Truncated {
                need: 1 + ch_bytes,
                got: 1 + rest.len(),
            })?;
            let words = plan.words as usize;
            let hg = self.hit_grams(plan, ch, scratch.get_mut(..words).unwrap_or(&mut []));
            *slot = finish_estimate(self.q_len, len_byte, hg, self.n);
        }
        Ok(())
    }

    /// Load `ch` into `scratch` words and count hit grams branch-free.
    /// `scratch.len()` must equal `plan.words`.
    #[inline]
    fn hit_grams(&self, plan: LenPlan, ch: &[u8], scratch: &mut [u64]) -> u64 {
        debug_assert_eq!(ch.len(), plan.ch_bytes as usize);
        debug_assert_eq!(scratch.len(), plan.words as usize);
        let mut chunks = ch.chunks_exact(8);
        let mut slots = scratch.iter_mut();
        for (chunk, slot) in chunks.by_ref().zip(slots.by_ref()) {
            *slot = u64::from_le_bytes(chunk.try_into().unwrap_or([0u8; 8]));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            for (d, &b) in last.iter_mut().zip(rem) {
                *d = b;
            }
            if let Some(slot) = slots.next() {
                *slot = u64::from_le_bytes(last);
            }
        }
        let words = scratch.len();
        let mut hg = 0u64;
        let mut off = plan.mask_off as usize;
        for &c in &self.counts {
            let mask = self.masks.get(off..off + words).unwrap_or(&[]);
            let mut miss = 0u64;
            for (&m, &s) in mask.iter().zip(scratch.iter()) {
                miss |= m & !s;
            }
            hg += u64::from(miss == 0) * c;
            off += words;
        }
        hg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance::edit_distance_bytes;
    use crate::ngram::est_prime;

    fn codec() -> SigCodec {
        SigCodec::new(0.2, 2)
    }

    #[test]
    fn encoded_layout() {
        let c = codec();
        let sig = c.encode_to_vec(b"digital camera");
        let len_byte = sig[0];
        assert_eq!(usize::from(len_byte), 14);
        assert_eq!(sig.len(), c.encoded_len(len_byte));
        // cH bytes = ceil(0.2 * (14 + 1)) = 3.
        assert_eq!(c.ch_bytes(len_byte), 3);
        assert_eq!(c.max_encoded_len(), c.encoded_len(255));
    }

    #[test]
    fn long_strings_clamp_length() {
        let c = codec();
        let s = vec![b'x'; 400];
        let sig = c.encode_to_vec(&s);
        assert_eq!(sig[0], 255);
        assert_eq!(sig.len(), c.encoded_len(255));
    }

    #[test]
    fn identical_strings_estimate_zero() {
        let c = codec();
        for s in [
            &b"ok"[..],
            b"digital camera",
            b"a",
            b"some longer value here",
        ] {
            let sig = c.encode_to_vec(s);
            let m = PreparedMatcher::new(&c, s);
            assert_eq!(m.estimate(&sig).unwrap(), 0.0, "{s:?}");
        }
    }

    #[test]
    fn estimate_never_exceeds_est_prime() {
        // est uses |hg| >= |cg|, hence est <= est'.
        let c = codec();
        let data: &[&[u8]] = &[b"canon", b"sony", b"digital camera", b"google base", b"x"];
        let queries: &[&[u8]] = &[b"cannon", b"sonny", b"digital kamera", b"googel", b"xyz"];
        for &d in data {
            let sig = c.encode_to_vec(d);
            for &q in queries {
                let m = PreparedMatcher::new(&c, q);
                let est = m.estimate(&sig).unwrap();
                let estp = est_prime(q, d, 2);
                assert!(est <= estp + 1e-9, "est({q:?},{d:?})={est} > est'={estp}");
            }
        }
    }

    #[test]
    fn kernel_matches_scalar_reference_bit_for_bit() {
        for (alpha, n) in [(0.1, 2), (0.2, 2), (0.3, 3), (0.7, 4)] {
            let c = SigCodec::new(alpha, n);
            let q = QueryStringMatcher::new(&c, b"digital camera");
            let prepared = q.prepare(&c);
            for len in [0usize, 1, 2, 5, 14, 40, 255, 400] {
                let s: Vec<u8> = (0..len).map(|i| b'a' + (i % 23) as u8).collect();
                let sig = c.encode_to_vec(&s);
                let kernel = prepared.estimate(&sig).unwrap();
                let scalar = q.estimate_scalar(&c, &sig).unwrap();
                assert_eq!(
                    kernel.to_bits(),
                    scalar.to_bits(),
                    "alpha={alpha} n={n} len={len}"
                );
            }
        }
    }

    #[test]
    fn mangled_signatures_error_not_panic() {
        let c = codec();
        let m = PreparedMatcher::new(&c, b"digital camera");
        let q = QueryStringMatcher::new(&c, b"digital camera");

        // Empty slice: no length byte at all.
        assert_eq!(m.estimate(&[]), Err(SigError::Empty));
        assert_eq!(q.estimate_scalar(&c, &[]), Err(SigError::Empty));

        // A bare length byte with the whole cH missing.
        let sig = c.encode_to_vec(b"some value");
        assert!(matches!(
            m.estimate(&sig[..1]),
            Err(SigError::Truncated { .. })
        ));

        // Every proper prefix of a valid signature is truncated.
        for cut in 1..sig.len() {
            let err = m.estimate(&sig[..cut]).unwrap_err();
            assert_eq!(
                err,
                SigError::Truncated {
                    need: sig.len(),
                    got: cut
                },
                "cut={cut}"
            );
            assert_eq!(q.estimate_scalar(&c, &sig[..cut]), Err(err));
        }

        // A length byte mangled upward declares a wider geometry than the
        // remaining bytes provide.
        let mut mangled = sig.clone();
        mangled[0] = 255;
        assert!(matches!(
            m.estimate(&mangled),
            Err(SigError::Truncated { .. })
        ));

        // estimate_parts mirrors the checks for cursors that pre-read cL.
        assert!(matches!(
            m.estimate_parts(sig[0], &sig[1..sig.len() - 1]),
            Err(SigError::Truncated { .. })
        ));

        // Extra trailing bytes are fine (stride padding).
        let mut padded = sig.clone();
        padded.extend_from_slice(&[0xAB; 7]);
        assert_eq!(
            m.estimate(&padded).unwrap().to_bits(),
            m.estimate(&sig).unwrap().to_bits()
        );
    }

    #[test]
    fn estimate_block_matches_single() {
        let c = codec();
        let m = PreparedMatcher::new(&c, b"product listing number 42");
        let values: Vec<String> = (0..64)
            .map(|i| format!("product listing number {i}"))
            .collect();
        let stride = c.max_encoded_len();
        let mut block = vec![0u8; values.len() * stride];
        let mut singles = Vec::new();
        for (i, v) in values.iter().enumerate() {
            let sig = c.encode_to_vec(v.as_bytes());
            block[i * stride..i * stride + sig.len()].copy_from_slice(&sig);
            singles.push(m.estimate(&sig).unwrap());
        }
        let mut out = vec![0.0f64; values.len()];
        m.estimate_block(&block, stride, &mut out).unwrap();
        for (a, b) in out.iter().zip(&singles) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Short blocks are rejected, not sliced out of bounds.
        assert!(m
            .estimate_block(&block[..stride], stride, &mut [0.0; 2])
            .is_err());
        assert!(m.estimate_block(&block, 0, &mut [0.0; 2]).is_err());
        // An empty output slice asks for nothing.
        m.estimate_block(&[], 16, &mut []).unwrap();
    }

    /// The one-word fast path must be bit-identical to per-cell
    /// `estimate`, including when the stride padding holds garbage (the
    /// contract says trailing bytes are ignored) and across varied
    /// lengths, alphas, and gram sizes (exercising deduped and empty
    /// masks and the narrow final cell).
    #[test]
    fn estimate_block_fast_path_ignores_padding_and_matches_single() {
        for (alpha, n) in [(0.15, 2usize), (0.3, 3), (0.45, 2)] {
            let c = SigCodec::new(alpha, n);
            let m = PreparedMatcher::new(&c, b"aaab repeated grams aaab");
            let values: Vec<String> = (0..48)
                .map(|i| "x".repeat(i % 23 + 1) + &i.to_string())
                .collect();
            let stride = c.max_encoded_len();
            // Poison every padding byte; a correct kernel never reads it.
            let mut block = vec![0xA5u8; values.len() * stride];
            let mut singles = Vec::new();
            for (i, v) in values.iter().enumerate() {
                let sig = c.encode_to_vec(v.as_bytes());
                block[i * stride..i * stride + sig.len()].copy_from_slice(&sig);
                singles.push(m.estimate(&sig).unwrap());
            }
            // Truncate the buffer to the last cell's real signature so the
            // final cell is narrower than 9 bytes and exercises the
            // fallback path.
            let last_sig = c.encode_to_vec(values[values.len() - 1].as_bytes());
            let tight = (values.len() - 1) * stride + last_sig.len();
            let mut out = vec![0.0f64; values.len()];
            m.estimate_block(&block[..tight], stride, &mut out).unwrap();
            for (i, (a, b)) in out.iter().zip(&singles).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "alpha={alpha} n={n} cell {i}");
            }
        }
    }

    #[test]
    fn no_false_negatives_exhaustive_small() {
        // Proposition 3.3 over a brute-forced small universe.
        let c = SigCodec::new(0.3, 2);
        let alphabet = [b'a', b'b', b'c'];
        let mut strings: Vec<Vec<u8>> = vec![];
        for l in 1..=3usize {
            let mut idx = vec![0usize; l];
            loop {
                strings.push(idx.iter().map(|&i| alphabet[i]).collect());
                let mut k = 0;
                loop {
                    idx[k] += 1;
                    if idx[k] < alphabet.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                    if k == l {
                        break;
                    }
                }
                if k == l {
                    break;
                }
            }
        }
        for d in &strings {
            let sig = c.encode_to_vec(d);
            for q in &strings {
                let m = PreparedMatcher::new(&c, q);
                let est = m.estimate(&sig).unwrap();
                let ed = edit_distance_bytes(q, d) as f64;
                assert!(est <= ed + 1e-9, "est({q:?},{d:?})={est} > ed={ed}");
            }
        }
    }

    #[test]
    fn estimate_discriminates_unrelated_strings() {
        // A sanity check on filtering power: a totally different string
        // should get a positive estimate nearly always at reasonable α.
        let c = SigCodec::new(0.3, 2);
        let sig = c.encode_to_vec(b"wide-angle lens");
        let m = PreparedMatcher::new(&c, b"alkaline battery pack");
        assert!(m.estimate(&sig).unwrap() > 0.0);
    }

    #[test]
    fn larger_alpha_estimates_at_least_as_tight_on_average() {
        // Not a strict per-pair guarantee, but across pairs the mean
        // estimate under α = 0.4 must be >= the mean under α = 0.1
        // (longer signatures -> fewer false hits -> larger estimates).
        let lo = SigCodec::new(0.1, 2);
        let hi = SigCodec::new(0.4, 2);
        let data: Vec<String> = (0..50).map(|i| format!("data string number {i}")).collect();
        let query = b"completely different query";
        let mlo = PreparedMatcher::new(&lo, query);
        let mhi = PreparedMatcher::new(&hi, query);
        let (mut sum_lo, mut sum_hi) = (0.0, 0.0);
        for d in &data {
            sum_lo += mlo.estimate(&lo.encode_to_vec(d.as_bytes())).unwrap();
            sum_hi += mhi.estimate(&hi.encode_to_vec(d.as_bytes())).unwrap();
        }
        assert!(sum_hi >= sum_lo, "hi={sum_hi} lo={sum_lo}");
    }

    #[test]
    #[should_panic(expected = "gram length")]
    fn rejects_n_below_two() {
        SigCodec::new(0.2, 1);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        SigCodec::new(0.0, 2);
    }
}
