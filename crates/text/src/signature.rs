//! The nG-signature (Sec. III-B): encoding, hit testing and the lower-bound
//! edit-distance estimator `est(sq, c(sd))` of Eq. 3.
//!
//! A signature `c(s)` has two parts: the lower bits `cL(s)` record the
//! string length (one byte here, clamped to 255 — clamping can only shrink
//! the estimate, preserving the no-false-negative guarantee), and the higher
//! bits `cH[l,t](s)` are the OR of `h[l,t](ωᵢ)` over all n-grams `ωᵢ`
//! (Example 3.2).
//!
//! The signature width follows the iVA-file's *relative vector length* `α`
//! (Sec. III-D): `cH` occupies `⌈α·(|s|+n−1)⌉` bytes, so `l = 8·⌈α·(|s|+n−1)⌉`
//! bits, and `t = argmin ē` per the appendix analysis, both precomputed per
//! possible length byte in [`SigCodec`].

use crate::hash::{gram_bit_positions, or_gram_into, positions_hit};
use crate::ngram::{gram_count, grams_of, GramMultiset};
use crate::params::optimal_t;

/// Precomputed signature geometry for one `(α, n)` configuration.
///
/// ```
/// use iva_text::{edit_distance, QueryStringMatcher, SigCodec};
///
/// let codec = SigCodec::new(0.2, 2); // the paper's defaults
/// let sig = codec.encode_to_vec(b"canon");
///
/// // The estimator never exceeds the true edit distance:
/// let mut matcher = QueryStringMatcher::new(&codec, b"cannon");
/// let est = matcher.estimate(&codec, &sig);
/// assert!(est <= edit_distance("cannon", "canon") as f64);
///
/// // Identical strings always estimate zero:
/// let mut same = QueryStringMatcher::new(&codec, b"canon");
/// assert_eq!(same.estimate(&codec, &sig), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SigCodec {
    n: usize,
    alpha: f64,
    /// Indexed by the clamped length byte: `(cH bytes, l bits, t)`.
    table: Vec<(u16, u16, u8)>,
}

impl SigCodec {
    /// Build the codec for gram length `n` (≥ 2) and relative vector length
    /// `α ∈ (0, 1]`.
    pub fn new(alpha: f64, n: usize) -> Self {
        assert!(n >= 2, "gram length must be >= 2");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        let table = (0..=255usize)
            .map(|len| {
                let grams = gram_count(len, n) as u32;
                let ch_bytes = ((alpha * grams as f64).ceil() as u16).max(1);
                let l_bits = ch_bytes * 8;
                let t = optimal_t(u32::from(l_bits), grams) as u8;
                (ch_bytes, l_bits, t)
            })
            .collect();
        Self { n, alpha, table }
    }

    /// Gram length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Relative vector length `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The length byte stored for a string of `len` bytes.
    pub fn clamp_len(len: usize) -> u8 {
        len.min(255) as u8
    }

    /// `cH` size in bytes for a given length byte.
    pub fn ch_bytes(&self, len_byte: u8) -> usize {
        usize::from(self.table[usize::from(len_byte)].0)
    }

    /// Total encoded signature size (`cL` + `cH`) for a given length byte.
    pub fn encoded_len(&self, len_byte: u8) -> usize {
        1 + self.ch_bytes(len_byte)
    }

    /// `(l bits, t)` for a given length byte.
    pub fn geometry(&self, len_byte: u8) -> (u32, u32) {
        let (_, l, t) = self.table[usize::from(len_byte)];
        (u32::from(l), u32::from(t))
    }

    /// Encode the nG-signature of `s`, appending `[cL][cH...]` to `out`.
    /// Returns the number of bytes written.
    pub fn encode(&self, s: &[u8], out: &mut Vec<u8>) -> usize {
        let len_byte = Self::clamp_len(s.len());
        let (l, t) = self.geometry(len_byte);
        let ch = self.ch_bytes(len_byte);
        out.push(len_byte);
        let start = out.len();
        out.resize(start + ch, 0);
        let mut scratch = Vec::with_capacity(t as usize);
        for gram in grams_of(s, self.n) {
            or_gram_into(&gram, l, t, &mut out[start..], &mut scratch);
        }
        1 + ch
    }

    /// Encode into a fresh vector.
    pub fn encode_to_vec(&self, s: &[u8]) -> Vec<u8> {
        let mut v = Vec::new();
        self.encode(s, &mut v);
        v
    }
}

/// Query-side matcher for one query string: hashes the query's grams lazily
/// per data-string geometry and evaluates `est(sq, c(sd))`.
///
/// Built once per (query, attribute); [`QueryStringMatcher::estimate`] is
/// then called for every signature scanned from the vector list, so the
/// per-length hashed gram positions are memoized (the paper's "in-memory
/// table" advice).
#[derive(Debug)]
pub struct QueryStringMatcher {
    q_len: usize,
    n: usize,
    /// Distinct query grams.
    grams: Vec<Vec<u8>>,
    /// Multiset count of each distinct gram (parallel to `grams`).
    counts: Vec<u32>,
    /// Per length byte: the hashed bit positions of each distinct gram.
    cache: Vec<Option<Box<[Vec<u32>]>>>,
}

impl QueryStringMatcher {
    /// Prepare a matcher for query string `sq`.
    pub fn new(codec: &SigCodec, sq: &[u8]) -> Self {
        let ms = GramMultiset::new(sq, codec.n);
        let grams: Vec<Vec<u8>> = ms.iter().map(|(g, _)| g.to_vec()).collect();
        let counts: Vec<u32> = ms.iter().map(|(_, c)| c).collect();
        Self {
            q_len: sq.len(),
            n: codec.n,
            grams,
            counts,
            cache: vec![None; 256],
        }
    }

    /// Query string length in bytes.
    pub fn query_len(&self) -> usize {
        self.q_len
    }

    /// Evaluate `est(sq, c(sd))` (Eq. 3) against an encoded signature
    /// (`[cL][cH...]`, as produced by [`SigCodec::encode`]). The result is
    /// a lower bound on `ed(sq, sd)` (Proposition 3.3), clamped at 0.
    pub fn estimate(&mut self, codec: &SigCodec, sig: &[u8]) -> f64 {
        let len_byte = sig[0];
        debug_assert_eq!(sig.len(), codec.encoded_len(len_byte));
        let ch = &sig[1..];
        if self.cache[usize::from(len_byte)].is_none() {
            let (l, t) = codec.geometry(len_byte);
            let hashed: Vec<Vec<u32>> = self
                .grams
                .iter()
                .map(|g| {
                    let mut pos = Vec::with_capacity(t as usize);
                    gram_bit_positions(g, l, t, &mut pos);
                    pos
                })
                .collect();
            self.cache[usize::from(len_byte)] = Some(hashed.into_boxed_slice());
        }
        let hashed = self.cache[usize::from(len_byte)].as_ref().unwrap();
        let mut hg = 0u64;
        for (pos, &c) in hashed.iter().zip(&self.counts) {
            if positions_hit(pos, ch) {
                hg += u64::from(c);
            }
        }
        let m = self.q_len.max(usize::from(len_byte)) as f64;
        ((m - hg as f64 - 1.0) / self.n as f64 + 1.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance::edit_distance_bytes;
    use crate::ngram::est_prime;

    fn codec() -> SigCodec {
        SigCodec::new(0.2, 2)
    }

    #[test]
    fn encoded_layout() {
        let c = codec();
        let sig = c.encode_to_vec(b"digital camera");
        let len_byte = sig[0];
        assert_eq!(usize::from(len_byte), 14);
        assert_eq!(sig.len(), c.encoded_len(len_byte));
        // cH bytes = ceil(0.2 * (14 + 1)) = 3.
        assert_eq!(c.ch_bytes(len_byte), 3);
    }

    #[test]
    fn long_strings_clamp_length() {
        let c = codec();
        let s = vec![b'x'; 400];
        let sig = c.encode_to_vec(&s);
        assert_eq!(sig[0], 255);
        assert_eq!(sig.len(), c.encoded_len(255));
    }

    #[test]
    fn identical_strings_estimate_zero() {
        let c = codec();
        for s in [
            &b"ok"[..],
            b"digital camera",
            b"a",
            b"some longer value here",
        ] {
            let sig = c.encode_to_vec(s);
            let mut m = QueryStringMatcher::new(&c, s);
            assert_eq!(m.estimate(&c, &sig), 0.0, "{s:?}");
        }
    }

    #[test]
    fn estimate_never_exceeds_est_prime() {
        // est uses |hg| >= |cg|, hence est <= est'.
        let c = codec();
        let data: &[&[u8]] = &[b"canon", b"sony", b"digital camera", b"google base", b"x"];
        let queries: &[&[u8]] = &[b"cannon", b"sonny", b"digital kamera", b"googel", b"xyz"];
        for &d in data {
            let sig = c.encode_to_vec(d);
            for &q in queries {
                let mut m = QueryStringMatcher::new(&c, q);
                let est = m.estimate(&c, &sig);
                let estp = est_prime(q, d, 2);
                assert!(est <= estp + 1e-9, "est({q:?},{d:?})={est} > est'={estp}");
            }
        }
    }

    #[test]
    fn no_false_negatives_exhaustive_small() {
        // Proposition 3.3 over a brute-forced small universe.
        let c = SigCodec::new(0.3, 2);
        let alphabet = [b'a', b'b', b'c'];
        let mut strings: Vec<Vec<u8>> = vec![];
        for l in 1..=3usize {
            let mut idx = vec![0usize; l];
            loop {
                strings.push(idx.iter().map(|&i| alphabet[i]).collect());
                let mut k = 0;
                loop {
                    idx[k] += 1;
                    if idx[k] < alphabet.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                    if k == l {
                        break;
                    }
                }
                if k == l {
                    break;
                }
            }
        }
        for d in &strings {
            let sig = c.encode_to_vec(d);
            for q in &strings {
                let mut m = QueryStringMatcher::new(&c, q);
                let est = m.estimate(&c, &sig);
                let ed = edit_distance_bytes(q, d) as f64;
                assert!(est <= ed + 1e-9, "est({q:?},{d:?})={est} > ed={ed}");
            }
        }
    }

    #[test]
    fn estimate_discriminates_unrelated_strings() {
        // A sanity check on filtering power: a totally different string
        // should get a positive estimate nearly always at reasonable α.
        let c = SigCodec::new(0.3, 2);
        let sig = c.encode_to_vec(b"wide-angle lens");
        let mut m = QueryStringMatcher::new(&c, b"alkaline battery pack");
        assert!(m.estimate(&c, &sig) > 0.0);
    }

    #[test]
    fn larger_alpha_estimates_at_least_as_tight_on_average() {
        // Not a strict per-pair guarantee, but across pairs the mean
        // estimate under α = 0.4 must be >= the mean under α = 0.1
        // (longer signatures -> fewer false hits -> larger estimates).
        let lo = SigCodec::new(0.1, 2);
        let hi = SigCodec::new(0.4, 2);
        let data: Vec<String> = (0..50).map(|i| format!("data string number {i}")).collect();
        let query = b"completely different query";
        let (mut sum_lo, mut sum_hi) = (0.0, 0.0);
        for d in &data {
            let mut mlo = QueryStringMatcher::new(&lo, query);
            let mut mhi = QueryStringMatcher::new(&hi, query);
            sum_lo += mlo.estimate(&lo, &lo.encode_to_vec(d.as_bytes()));
            sum_hi += mhi.estimate(&hi, &hi.encode_to_vec(d.as_bytes()));
        }
        assert!(sum_hi >= sum_lo, "hi={sum_hi} lo={sum_lo}");
    }

    #[test]
    #[should_panic(expected = "gram length")]
    fn rejects_n_below_two() {
        SigCodec::new(0.2, 1);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        SigCodec::new(0.0, 2);
    }
}
