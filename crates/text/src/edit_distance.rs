//! Levenshtein edit distance.
//!
//! The paper adopts edit distance as the typo-tolerant string metric
//! (Sec. I-B): "the minimum number of edit operations (insertions,
//! deletions, and substitutions) of single characters needed to transform
//! the first string into the second". All string lengths in this
//! reproduction are measured in bytes, consistently across grams,
//! signatures and distances, so the Gravano n-gram lower bound holds.

/// Edit distance between two byte strings (two-row dynamic program).
pub fn edit_distance_bytes(a: &[u8], b: &[u8]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Ensure the inner row is the shorter side.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur: Vec<usize> = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Edit distance between two UTF-8 strings, computed over bytes.
pub fn edit_distance(a: &str, b: &str) -> usize {
    edit_distance_bytes(a.as_bytes(), b.as_bytes())
}

/// Banded edit distance: returns `Some(d)` if `d <= bound`, `None`
/// otherwise. Used where only a threshold check is needed; `O(bound·n)`.
pub fn edit_distance_within(a: &[u8], b: &[u8], bound: usize) -> Option<usize> {
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if a.len() - b.len() > bound {
        return None;
    }
    let inf = bound + 1;
    let mut prev: Vec<usize> = (0..=b.len())
        .map(|j| if j <= bound { j } else { inf })
        .collect();
    let mut cur = vec![inf; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        let lo = (i + 1).saturating_sub(bound);
        let hi = (i + 1 + bound).min(b.len());
        cur[0] = if i < bound { i + 1 } else { inf };
        if lo > 1 {
            cur[lo - 1] = inf;
        }
        for j in lo.max(1)..=hi {
            let (ca, cb) = (ca, b[j - 1]);
            let sub = prev[j - 1] + usize::from(ca != cb);
            let del = if prev[j] < inf { prev[j] + 1 } else { inf };
            let ins = if cur[j - 1] < inf {
                cur[j - 1] + 1
            } else {
                inf
            };
            cur[j] = sub.min(del).min(ins).min(inf);
        }
        if hi < b.len() {
            cur[hi + 1..].fill(inf);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[b.len()];
    (d <= bound).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
        // The paper's running typo: "Cannon" vs "Canon".
        assert_eq!(edit_distance("Cannon", "Canon"), 1);
    }

    #[test]
    fn single_ops() {
        assert_eq!(edit_distance("canon", "canons"), 1); // insertion
        assert_eq!(edit_distance("canon", "cann"), 1); // deletion of 'o'
        assert_eq!(edit_distance("canon", "caxon"), 1); // substitution
        assert_eq!(edit_distance("canon", "cano"), 1); // deletion
    }

    #[test]
    fn banded_agrees_with_full() {
        let pairs = [
            ("google", "googel"),
            ("digital camera", "digtal camera"),
            ("a", "zzzzzz"),
            ("same", "same"),
            ("", "xy"),
        ];
        for (a, b) in pairs {
            let full = edit_distance(a, b);
            for bound in 0..8 {
                let banded = edit_distance_within(a.as_bytes(), b.as_bytes(), bound);
                if full <= bound {
                    assert_eq!(banded, Some(full), "{a} {b} bound={bound}");
                } else {
                    assert_eq!(banded, None, "{a} {b} bound={bound}");
                }
            }
        }
    }

    #[test]
    fn length_difference_lower_bounds() {
        assert!(edit_distance("ab", "abcdef") >= 4);
        assert_eq!(edit_distance_within(b"ab", b"abcdef", 3), None);
    }
}
