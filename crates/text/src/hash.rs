//! lint:scope(no-panic-decode)
//! The signature hash `h[l,t](ω)` (Definition in Sec. III-B.1).
//!
//! `h[l,t]` maps an n-gram to an `l`-bit vector containing exactly `t` one
//! bits. It must be deterministic across processes and platforms so that
//! signatures written by one run can be probed by another; we therefore
//! build it from FNV-1a seeding a SplitMix64 stream rather than any
//! std hasher.

/// FNV-1a over bytes, 64-bit.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 step: advances the state and returns a well-mixed word.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Compute the `t` distinct bit positions of `h[l,t](ω)` for gram `ω`.
///
/// Positions are appended to `out` (cleared first). Requires `0 < t < l`.
pub fn gram_bit_positions(gram: &[u8], l_bits: u32, t: u32, out: &mut Vec<u32>) {
    debug_assert!(t > 0 && t < l_bits, "need 0 < t < l, got t={t} l={l_bits}");
    out.clear();
    let mut state = fnv1a64(gram) ^ (u64::from(l_bits) << 32) ^ u64::from(t).rotate_left(17);
    while out.len() < t as usize {
        let pos = (splitmix64(&mut state) % u64::from(l_bits)) as u32;
        if !out.contains(&pos) {
            out.push(pos);
        }
    }
}

/// Set the bits of `h[l,t](ω)` in a little-endian byte buffer (bit `p` lives
/// in `buf[p/8]`, mask `1 << (p%8)`).
pub fn or_gram_into(gram: &[u8], l_bits: u32, t: u32, buf: &mut [u8], scratch: &mut Vec<u32>) {
    gram_bit_positions(gram, l_bits, t, scratch);
    for &p in scratch.iter() {
        if let Some(b) = buf.get_mut((p / 8) as usize) {
            *b |= 1 << (p % 8);
        }
    }
}

/// True iff every bit of `h[l,t](ω)` (given as positions) is set in `sig` —
/// the paper's *hit* test `h[l,t](ω) AND cH = h[l,t](ω)` (Definition 3.1).
pub fn positions_hit(positions: &[u32], sig: &[u8]) -> bool {
    positions.iter().all(|&p| {
        sig.get((p / 8) as usize)
            .is_some_and(|&b| b & (1 << (p % 8)) != 0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_positions() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        gram_bit_positions(b"ok", 64, 3, &mut a);
        gram_bit_positions(b"ok", 64, 3, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&p| p < 64));
        // Distinct positions.
        let mut s = a.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn positions_depend_on_l_and_t() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        gram_bit_positions(b"ok", 64, 2, &mut a);
        gram_bit_positions(b"ok", 128, 2, &mut b);
        // Not a hard requirement bit-for-bit, but the parametrization should
        // produce different vectors essentially always.
        assert_ne!(a, b);
    }

    #[test]
    fn exactly_t_bits_set() {
        for t in 1..8u32 {
            let mut buf = vec![0u8; 8];
            let mut scratch = Vec::new();
            or_gram_into(b"gram", 64, t, &mut buf, &mut scratch);
            let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
            assert_eq!(ones, t);
        }
    }

    #[test]
    fn self_hit_property() {
        // Property 3.2: any gram OR-ed into a signature hits it.
        let grams: Vec<&[u8]> = vec![b"ab", b"bc", b"cd", b"zz"];
        let mut sig = vec![0u8; 4];
        let mut scratch = Vec::new();
        for g in &grams {
            or_gram_into(g, 32, 2, &mut sig, &mut scratch);
        }
        for g in &grams {
            gram_bit_positions(g, 32, 2, &mut scratch);
            assert!(positions_hit(&scratch, &sig), "self-hit failed for {g:?}");
        }
    }

    #[test]
    fn empty_signature_hits_nothing() {
        let sig = vec![0u8; 4];
        let mut scratch = Vec::new();
        gram_bit_positions(b"ab", 32, 2, &mut scratch);
        assert!(!positions_hit(&scratch, &sig));
    }

    #[test]
    fn fnv_known_values() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
