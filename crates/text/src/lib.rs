//! # iva-text
//!
//! String approximation machinery of the iVA-file (Sec. III-B of the
//! paper): padded n-grams, Levenshtein edit distance, the deterministic
//! signature hash `h[l,t]`, the nG-signature codec, the lower-bound
//! estimator `est(sq, c(sd))`, and the expected-error analysis used to pick
//! the optimal number of hash bits `t`.
//!
//! Central guarantee (Proposition 3.3): for every query string `sq` and
//! data string `sd`, `est(sq, c(sd)) ≤ ed(sq, sd)` — filtering with
//! signatures never produces false negatives. The crate's tests (including
//! property tests) enforce this.

#![warn(missing_docs)]

mod edit_distance;
mod hash;
mod ngram;
mod params;
mod signature;

pub use edit_distance::{edit_distance, edit_distance_bytes, edit_distance_within};
pub use hash::{fnv1a64, gram_bit_positions, or_gram_into, positions_hit, splitmix64};
pub use ngram::{est_prime, gram_count, grams_of, padded, GramMultiset, PAD_END, PAD_START};
pub use params::{expected_relative_error, false_hit_probability, optimal_t};
pub use signature::{PreparedMatcher, QueryStringMatcher, SigCodec, SigError};
