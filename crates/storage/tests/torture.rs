//! Crash-torture tests for the byte log.
//!
//! A deterministic workload (appends, in-place patches, flushes) is first
//! dry-run on a pass-through [`FaultVfs`] to count filesystem operations,
//! then replayed once per operation index with a power cut injected at
//! exactly that op. After each crash the durable disk image is reopened
//! and must decode to a *committed* state: the state of the last flush
//! that returned `Ok`, or — if the crash hit mid-flush — possibly the
//! state that flush was committing (the rename may have happened before
//! the cut). Anything else (a mix, a panic, unreadable data) is a bug.
//!
//! Every assertion message carries `(seed, crash_at)`; re-running the
//! binary with those values in `replay_one` reproduces the failure
//! exactly. See TESTING.md.

use std::path::Path;
use std::sync::Arc;

use iva_storage::{
    ByteLog, FaultKind, FaultVfs, IoStats, PagerOptions, PlannedFault, Vfs, USER_HEADER_LEN,
};

const PAGE: usize = 128;
const LOG_PATH: &str = "torture.log";

fn opts() -> PagerOptions {
    PagerOptions {
        page_size: PAGE,
        cache_bytes: PAGE * 8,
    }
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A log state a crash may legitimately recover to.
#[derive(Clone, PartialEq)]
struct State {
    content: Vec<u8>,
    header: [u8; USER_HEADER_LEN],
}

/// What a (possibly crash-interrupted) workload run acknowledged.
struct Outcome {
    /// State of the last flush that returned `Ok` (None: even `create`'s
    /// initial flush did not complete, nothing was ever acked).
    acked: Option<State>,
    /// State a flush was committing when an op failed mid-flush, if any —
    /// the crash may have landed after the commit point.
    pending: Option<State>,
}

/// Replay the deterministic workload for `seed` on `vfs`, stopping at the
/// first failed operation. Returns the states a reopen may observe.
fn run_workload(vfs: Arc<dyn Vfs>, seed: u64) -> Outcome {
    let mut rng = seed;
    let mut log = match ByteLog::create_with_vfs(vfs, Path::new(LOG_PATH), &opts(), IoStats::new())
    {
        Ok(log) => log,
        Err(_) => {
            return Outcome {
                acked: None,
                pending: None,
            }
        }
    };
    let mut current = State {
        content: Vec::new(),
        header: [0; USER_HEADER_LEN],
    };
    let mut acked = Some(current.clone());
    let mut flushes = 0u64;

    for _ in 0..48 {
        match splitmix(&mut rng) % 5 {
            // Flush: stamp a recognizable header, attempt the commit.
            0 => {
                flushes += 1;
                current.header[0..8].copy_from_slice(&flushes.to_le_bytes());
                log.set_user_header(current.header);
                let pending = current.clone();
                match log.flush() {
                    Ok(()) => acked = Some(pending),
                    Err(_) => {
                        return Outcome {
                            acked,
                            pending: Some(pending),
                        }
                    }
                }
            }
            // In-place patch of already-appended bytes.
            1 if !current.content.is_empty() => {
                let pos = splitmix(&mut rng) % current.content.len() as u64;
                let n =
                    (1 + splitmix(&mut rng) % 8).min(current.content.len() as u64 - pos) as usize;
                let byte = splitmix(&mut rng) as u8;
                let patch = vec![byte; n];
                match log.write_at(pos, &patch) {
                    Ok(()) => {
                        current.content[pos as usize..pos as usize + n].copy_from_slice(&patch)
                    }
                    Err(_) => {
                        return Outcome {
                            acked,
                            pending: None,
                        }
                    }
                }
            }
            // Append a run of derived bytes (often page-crossing).
            _ => {
                let n = 1 + (splitmix(&mut rng) % 200) as usize;
                let data: Vec<u8> = (0..n).map(|_| splitmix(&mut rng) as u8).collect();
                match log.append(&data) {
                    Ok(off) => {
                        assert_eq!(off, current.content.len() as u64);
                        current.content.extend_from_slice(&data);
                    }
                    Err(_) => {
                        return Outcome {
                            acked,
                            pending: None,
                        }
                    }
                }
            }
        }
    }
    // Clean completion: commit whatever is left so the run ends acked.
    let pending = current.clone();
    match log.flush() {
        Ok(()) => Outcome {
            acked: Some(pending),
            pending: None,
        },
        Err(_) => Outcome {
            acked,
            pending: Some(pending),
        },
    }
}

/// Reopen `disk` and check the recovered log equals one of the states the
/// workload acked (or was committing). Then prove the recovered log is
/// live: append, flush, reopen again.
fn verify_recovery(disk: &dyn Fn() -> Arc<dyn Vfs>, outcome: &Outcome, ctx: &str) {
    let reopened = ByteLog::open_with_vfs(disk(), Path::new(LOG_PATH), &opts(), IoStats::new());
    let Some(acked) = &outcome.acked else {
        // Nothing was ever acked; an error (e.g. missing commit record) is
        // a legitimate answer, a panic is not — reaching this line at all
        // is the assertion.
        return;
    };
    let mut log = match reopened {
        Ok(log) => log,
        Err(e) => panic!("{ctx}: acked state exists but reopen failed: {e}"),
    };

    let matches = |want: &State| -> bool {
        if log.len() != want.content.len() as u64 || log.user_header() != &want.header {
            return false;
        }
        let mut buf = vec![0u8; want.content.len()];
        log.read_at(0, &mut buf)
            .unwrap_or_else(|e| panic!("{ctx}: read failed: {e}"));
        buf == want.content
    };
    let ok = matches(acked) || outcome.pending.as_ref().is_some_and(&matches);
    assert!(
        ok,
        "{ctx}: recovered log (len {}) matches neither the acked state (len {}) nor the \
         in-flight one (len {:?})",
        log.len(),
        acked.content.len(),
        outcome.pending.as_ref().map(|p| p.content.len()),
    );
    assert_eq!(
        log.committed_len(),
        log.len(),
        "{ctx}: reopen must be committed"
    );

    // The recovered log must accept new writes and commit them.
    let base = log.len();
    log.append(b"post-recovery write")
        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
    log.flush().unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let mut buf = vec![0u8; 19];
    log.read_at(base, &mut buf)
        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert_eq!(&buf, b"post-recovery write", "{ctx}");
}

#[test]
fn power_cut_at_every_op_recovers_a_committed_state() {
    for seed in [0xC0FF_EE00_u64, 0x5EED_0002, 0x5EED_0003] {
        // Dry run: count the workload's filesystem operations.
        let dry = FaultVfs::passthrough(seed);
        let outcome = run_workload(Arc::new(dry.clone()), seed);
        assert!(outcome.acked.is_some() && outcome.pending.is_none());
        let total_ops = dry.op_count();
        assert!(total_ops > 100, "workload too small to be interesting");

        for crash_at in 0..total_ops {
            let fv = FaultVfs::power_cut_at(seed, crash_at);
            let outcome = run_workload(Arc::new(fv.clone()), seed);
            assert!(
                fv.crashed(),
                "seed={seed:#x} crash_at={crash_at}: cut never fired"
            );
            let ctx = format!("seed={seed:#x} crash_at={crash_at}");
            let snap = fv.durable_snapshot();
            verify_recovery(&|| Arc::new(snap.clone()), &outcome, &ctx);
        }
    }
}

#[test]
fn transient_faults_error_not_panic_and_preserve_commits() {
    let seed = 0xBAD5_EED1_u64;
    let dry = FaultVfs::passthrough(seed);
    run_workload(Arc::new(dry.clone()), seed);
    let total_ops = dry.op_count();

    for kind in [
        FaultKind::ShortRead,
        FaultKind::ShortWrite,
        FaultKind::Eio,
        FaultKind::SyncFail,
    ] {
        for at in 0..total_ops {
            let fv = FaultVfs::with_faults(seed, vec![PlannedFault { at, kind }]);
            let outcome = run_workload(Arc::new(fv.clone()), seed);
            assert!(!fv.crashed());
            // No power cut: the "disk" is the volatile image. Short
            // reads/writes are absorbed by the full-read/write loops, so
            // most runs complete; an EIO/SyncFail mid-run must still leave
            // a reopenable committed state.
            let ctx = format!("seed={seed:#x} kind={kind:?} at={at}");
            let snap = fv.volatile_snapshot();
            verify_recovery(&|| Arc::new(snap.clone()), &outcome, &ctx);
        }
    }
}
