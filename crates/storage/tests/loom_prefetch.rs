//! Loom model of the PR 3 prefetch-queue handoff in
//! `crates/storage/src/pager.rs` (`Pager::read_batch` / `Pager::prefetch`).
//!
//! The production protocol: a filling thread reads a page image into a
//! fresh buffer (the `file.read_run` into `buf`, *outside* any shard
//! lock), wraps it in an `Arc`, and only then takes the shard lock to
//! publish — and if another thread won the race, it adopts the copy
//! already in the cache ("prefer the copy already in the cache") instead
//! of overwriting. Consumers take the same shard lock to pin, so a pin
//! can only ever name a fully-built, never-again-mutated image
//! (`write_page` replaces the `Arc`; nothing mutates a published page in
//! place).
//!
//! The model restates that protocol with the vendored checker's tracked
//! primitives — the page image is a [`loom::cell::UnsafeCell`] (its
//! write/read windows are the model analogue of building/scanning the
//! page bytes) and the cache slot is a [`loom::sync::Mutex`] — and
//! asserts, under every explored interleaving:
//!
//! 1. **Complete handoff** — a prefetcher and a demand reader racing on
//!    the same cold page both end up pinning a complete image, with no
//!    data race between the build and the scan.
//! 2. **Publication order matters** (negative control) — publishing the
//!    `Arc` *before* writing the image lets a reader's scan overlap the
//!    build, and the checker must catch that schedule.
//! 3. **Published pages are immutable** (negative control) — mutating an
//!    already-published image in place (instead of replacing the `Arc`)
//!    races a pinned reader, and the checker must catch that too.
//!
//! Run with the vendored bounded checker (see TESTING.md):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p iva-storage --test loom_prefetch --release
//! ```
#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::sync::{Arc, Mutex};

/// The model page image: one tracked word stands for the page bytes.
type Page = Arc<UnsafeCell<u64>>;

/// The model shard: one cache slot behind the shard mutex.
type Slot = Arc<Mutex<Option<Page>>>;

/// Distinct-from-zero payload so a torn or missing build is detectable.
const IMAGE: u64 = 0xA11_F17;

/// The `read_batch` miss path: build the image outside the lock, publish
/// under it, adopting the cached copy if another filler won. Returns the
/// pin the caller scans through.
fn fill_and_pin(slot: &Slot) -> Page {
    let page: Page = Arc::new(UnsafeCell::new(0));
    // `file.read_run` into the private buffer: no lock held, no sharing.
    page.with_mut(|p| unsafe { *p = IMAGE });
    let mut guard = slot.lock().unwrap();
    match guard.as_ref() {
        Some(fresh) => Arc::clone(fresh),
        None => {
            *guard = Some(Arc::clone(&page));
            page
        }
    }
}

/// Scan a pinned page (the refine phase reading record bytes).
fn scan(pin: &Page) -> u64 {
    pin.with(|p| unsafe { *p })
}

#[test]
fn racing_fillers_hand_off_complete_pages() {
    loom::model(|| {
        let slot: Slot = Arc::new(Mutex::new(None));
        // Prefetcher warming the pool and a demand reader, same cold page.
        let s2 = Arc::clone(&slot);
        let prefetcher = loom::thread::spawn(move || {
            let pin = fill_and_pin(&s2);
            scan(&pin)
        });
        let pin = fill_and_pin(&slot);
        let seen = scan(&pin);
        let warmed = prefetcher.join().unwrap();
        assert_eq!(seen, IMAGE, "demand reader pinned a torn page");
        assert_eq!(warmed, IMAGE, "prefetcher pinned a torn page");
        // Whoever lost the publication race adopted the winner's Arc, so
        // the slot holds a complete image for every later hit.
        let guard = slot.lock().unwrap();
        let resident = guard.as_ref().expect("page vanished from the pool");
        assert_eq!(scan(resident), IMAGE, "pool holds a torn page");
    });
}

#[test]
fn publish_before_fill_is_caught() {
    // The tempting-but-wrong variant: insert the Arc under the lock
    // first, write the bytes after. A reader that pins between the two
    // scans mid-build — the checker must find that schedule.
    let found = std::panic::catch_unwind(|| {
        loom::model(|| {
            let slot: Slot = Arc::new(Mutex::new(None));
            let s2 = Arc::clone(&slot);
            let broken_filler = loom::thread::spawn(move || {
                let page: Page = Arc::new(UnsafeCell::new(0));
                *s2.lock().unwrap() = Some(Arc::clone(&page));
                page.with_mut(|p| unsafe { *p = IMAGE });
            });
            let pinned = slot.lock().unwrap().as_ref().map(Arc::clone);
            if let Some(pin) = pinned {
                scan(&pin);
            }
            broken_filler.join().unwrap();
        });
    });
    assert!(
        found.is_err(),
        "checker missed the publish-before-fill race"
    );
}

#[test]
fn mutating_a_published_page_is_caught() {
    // Production replaces the Arc on write (`write_page` publishes a new
    // page); mutating the published image in place races every held pin.
    let found = std::panic::catch_unwind(|| {
        loom::model(|| {
            let slot: Slot = Arc::new(Mutex::new(None));
            let pin = fill_and_pin(&slot);
            let s2 = Arc::clone(&slot);
            let in_place_writer = loom::thread::spawn(move || {
                let resident = s2.lock().unwrap().as_ref().map(Arc::clone);
                if let Some(page) = resident {
                    page.with_mut(|p| unsafe { *p = IMAGE + 1 });
                }
            });
            scan(&pin);
            in_place_writer.join().unwrap();
        });
    });
    assert!(
        found.is_err(),
        "checker missed the in-place mutation race against a held pin"
    );
}
