//! Property tests for the storage substrate: chained lists and the byte
//! log must behave exactly like an in-memory byte vector under arbitrary
//! operation sequences.

use std::sync::Arc;

use proptest::prelude::*;

use iva_storage::{
    overwrite_in_list, write_contiguous_list, ByteLog, IoStats, ListReader, ListWriter, Pager,
    PagerOptions,
};

fn small_pager() -> Arc<Pager> {
    Pager::create_mem(
        &PagerOptions {
            page_size: 96,
            cache_bytes: 96 * 4,
        },
        IoStats::new(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn list_append_read_roundtrip(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200), 0..20)) {
        let p = small_pager();
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        let mut model = Vec::new();
        for c in &chunks {
            w.append(c).unwrap();
            model.extend_from_slice(c);
        }
        let h = w.finish().unwrap();
        prop_assert_eq!(h.len, model.len() as u64);
        let mut r = ListReader::open(p, h).unwrap();
        let mut out = vec![0u8; model.len()];
        r.read_exact(&mut out).unwrap();
        prop_assert_eq!(out, model);
        prop_assert!(r.at_end());
    }

    #[test]
    fn list_resume_appending_matches_model(
        first in proptest::collection::vec(any::<u8>(), 0..300),
        second in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let p = small_pager();
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        w.append(&first).unwrap();
        let h1 = w.finish().unwrap();
        let mut w = ListWriter::append_to(Arc::clone(&p), h1).unwrap();
        w.append(&second).unwrap();
        let h2 = w.finish().unwrap();

        let mut model = first.clone();
        model.extend_from_slice(&second);
        let mut r = ListReader::open(p, h2).unwrap();
        let mut out = vec![0u8; model.len()];
        r.read_exact(&mut out).unwrap();
        prop_assert_eq!(out, model);
    }

    #[test]
    fn list_skip_equals_read(
        data in proptest::collection::vec(any::<u8>(), 1..400),
        cut in any::<prop::sample::Index>(),
    ) {
        let p = small_pager();
        let h = write_contiguous_list(&p, &data).unwrap();
        let cut = cut.index(data.len());
        let mut r = ListReader::open(Arc::clone(&p), h).unwrap();
        r.skip(cut as u64).unwrap();
        let mut rest = vec![0u8; data.len() - cut];
        r.read_exact(&mut rest).unwrap();
        prop_assert_eq!(&rest[..], &data[cut..]);
    }

    #[test]
    fn list_overwrite_matches_model(
        data in proptest::collection::vec(any::<u8>(), 1..400),
        patch in proptest::collection::vec(any::<u8>(), 1..50),
        at in any::<prop::sample::Index>(),
    ) {
        let p = small_pager();
        let h = write_contiguous_list(&p, &data).unwrap();
        let max_start = data.len().saturating_sub(patch.len());
        let at = at.index(max_start + 1);
        let mut model = data.clone();
        if at + patch.len() <= data.len() {
            model[at..at + patch.len()].copy_from_slice(&patch);
            overwrite_in_list(&p, h, at as u64, &patch).unwrap();
        } else {
            prop_assert!(overwrite_in_list(&p, h, at as u64, &patch).is_err());
        }
        let mut r = ListReader::open(p, h).unwrap();
        let mut out = vec![0u8; model.len()];
        r.read_exact(&mut out).unwrap();
        prop_assert_eq!(out, model);
    }

    #[test]
    fn bytelog_matches_model(
        appends in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..150), 1..15),
        reads in proptest::collection::vec((any::<prop::sample::Index>(), 0usize..60), 0..10),
        patches in proptest::collection::vec(
            (any::<prop::sample::Index>(), proptest::collection::vec(any::<u8>(), 1..20)), 0..5),
    ) {
        let opts = PagerOptions { page_size: 64, cache_bytes: 64 * 4 };
        let mut log = ByteLog::create_mem(&opts, IoStats::new()).unwrap();
        let mut model: Vec<u8> = Vec::new();
        for a in &appends {
            let off = log.append(a).unwrap();
            prop_assert_eq!(off, model.len() as u64);
            model.extend_from_slice(a);
        }
        // Random in-place patches.
        for (at, patch) in &patches {
            if model.len() >= patch.len() {
                let at = at.index(model.len() - patch.len() + 1);
                log.write_at(at as u64, patch).unwrap();
                model[at..at + patch.len()].copy_from_slice(patch);
            }
        }
        // Random reads.
        for (at, len) in &reads {
            if model.is_empty() { continue; }
            let at = at.index(model.len());
            let len = (*len).min(model.len() - at);
            let mut buf = vec![0u8; len];
            log.read_at(at as u64, &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &model[at..at + len]);
        }
        // Full read.
        let mut all = vec![0u8; model.len()];
        log.read_at(0, &mut all).unwrap();
        prop_assert_eq!(all, model);
    }
}
