//! Property tests for the storage substrate: chained lists and the byte
//! log must behave exactly like an in-memory byte vector under arbitrary
//! operation sequences.

use std::path::Path;
use std::sync::Arc;

use proptest::prelude::*;

use iva_storage::{
    overwrite_in_list, sidecar_path, write_contiguous_list, ByteLog, IoStats, ListReader,
    ListWriter, MemVfs, Pager, PagerOptions,
};

fn small_pager() -> Arc<Pager> {
    Pager::create_mem(
        &PagerOptions {
            page_size: 96,
            cache_bytes: 96 * 4,
        },
        IoStats::new(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn list_append_read_roundtrip(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200), 0..20)) {
        let p = small_pager();
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        let mut model = Vec::new();
        for c in &chunks {
            w.append(c).unwrap();
            model.extend_from_slice(c);
        }
        let h = w.finish().unwrap();
        prop_assert_eq!(h.len, model.len() as u64);
        let mut r = ListReader::open(p, h).unwrap();
        let mut out = vec![0u8; model.len()];
        r.read_exact(&mut out).unwrap();
        prop_assert_eq!(out, model);
        prop_assert!(r.at_end());
    }

    #[test]
    fn list_resume_appending_matches_model(
        first in proptest::collection::vec(any::<u8>(), 0..300),
        second in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let p = small_pager();
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        w.append(&first).unwrap();
        let h1 = w.finish().unwrap();
        let mut w = ListWriter::append_to(Arc::clone(&p), h1).unwrap();
        w.append(&second).unwrap();
        let h2 = w.finish().unwrap();

        let mut model = first.clone();
        model.extend_from_slice(&second);
        let mut r = ListReader::open(p, h2).unwrap();
        let mut out = vec![0u8; model.len()];
        r.read_exact(&mut out).unwrap();
        prop_assert_eq!(out, model);
    }

    #[test]
    fn list_skip_equals_read(
        data in proptest::collection::vec(any::<u8>(), 1..400),
        cut in any::<prop::sample::Index>(),
    ) {
        let p = small_pager();
        let h = write_contiguous_list(&p, &data).unwrap();
        let cut = cut.index(data.len());
        let mut r = ListReader::open(Arc::clone(&p), h).unwrap();
        r.skip(cut as u64).unwrap();
        let mut rest = vec![0u8; data.len() - cut];
        r.read_exact(&mut rest).unwrap();
        prop_assert_eq!(&rest[..], &data[cut..]);
    }

    #[test]
    fn list_overwrite_matches_model(
        data in proptest::collection::vec(any::<u8>(), 1..400),
        patch in proptest::collection::vec(any::<u8>(), 1..50),
        at in any::<prop::sample::Index>(),
    ) {
        let p = small_pager();
        let h = write_contiguous_list(&p, &data).unwrap();
        let max_start = data.len().saturating_sub(patch.len());
        let at = at.index(max_start + 1);
        let mut model = data.clone();
        if at + patch.len() <= data.len() {
            model[at..at + patch.len()].copy_from_slice(&patch);
            overwrite_in_list(&p, h, at as u64, &patch).unwrap();
        } else {
            prop_assert!(overwrite_in_list(&p, h, at as u64, &patch).is_err());
        }
        let mut r = ListReader::open(p, h).unwrap();
        let mut out = vec![0u8; model.len()];
        r.read_exact(&mut out).unwrap();
        prop_assert_eq!(out, model);
    }

    #[test]
    fn bytelog_matches_model(
        appends in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..150), 1..15),
        reads in proptest::collection::vec((any::<prop::sample::Index>(), 0usize..60), 0..10),
        patches in proptest::collection::vec(
            (any::<prop::sample::Index>(), proptest::collection::vec(any::<u8>(), 1..20)), 0..5),
    ) {
        let opts = PagerOptions { page_size: 64, cache_bytes: 64 * 4 };
        let mut log = ByteLog::create_mem(&opts, IoStats::new()).unwrap();
        let mut model: Vec<u8> = Vec::new();
        for a in &appends {
            let off = log.append(a).unwrap();
            prop_assert_eq!(off, model.len() as u64);
            model.extend_from_slice(a);
        }
        // Random in-place patches.
        for (at, patch) in &patches {
            if model.len() >= patch.len() {
                let at = at.index(model.len() - patch.len() + 1);
                log.write_at(at as u64, patch).unwrap();
                model[at..at + patch.len()].copy_from_slice(patch);
            }
        }
        // Random reads.
        for (at, len) in &reads {
            if model.is_empty() { continue; }
            let at = at.index(model.len());
            let len = (*len).min(model.len() - at);
            let mut buf = vec![0u8; len];
            log.read_at(at as u64, &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &model[at..at + len]);
        }
        // Full read.
        let mut all = vec![0u8; model.len()];
        log.read_at(0, &mut all).unwrap();
        prop_assert_eq!(all, model);
    }

    /// Torn-tail recovery: commit some records, append more without
    /// committing, then truncate the data file at *every* byte offset
    /// inside its last two page frames. Reopening must never panic; when
    /// it succeeds the log holds exactly the committed prefix, and when
    /// the cut eats committed data the open reports corruption.
    #[test]
    fn bytelog_truncated_tail_recovers_committed_prefix(
        committed_recs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..120), 1..10),
        torn_recs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..120), 0..5),
    ) {
        let path = Path::new("trunc.log");
        let opts = PagerOptions { page_size: 96, cache_bytes: 96 * 4 };
        let base = MemVfs::new();
        let mut log = ByteLog::create_with_vfs(
            Arc::new(base.clone()), path, &opts, IoStats::new()).unwrap();
        let mut committed = Vec::new();
        for r in &committed_recs {
            log.append(r).unwrap();
            committed.extend_from_slice(r);
        }
        log.flush().unwrap();
        // Uncommitted work after the last flush: fair game for truncation.
        for r in &torn_recs {
            log.append(r).unwrap();
        }
        drop(log);

        let full = base.contents(path).unwrap();
        let sidecar = base.contents(&sidecar_path(path)).unwrap();
        let frame = opts.page_size + 8;
        let start = full.len().saturating_sub(2 * frame);
        for cut in start..=full.len() {
            let disk = MemVfs::new();
            disk.set_contents(path, full[..cut].to_vec());
            disk.set_contents(&sidecar_path(path), sidecar.clone());
            match ByteLog::open_with_vfs(Arc::new(disk), path, &opts, IoStats::new()) {
                Ok(log) => {
                    prop_assert_eq!(log.len(), committed.len() as u64,
                        "cut at {} of {}", cut, full.len());
                    let mut buf = vec![0u8; committed.len()];
                    log.read_at(0, &mut buf).unwrap();
                    prop_assert_eq!(&buf, &committed, "cut at {}", cut);
                }
                // A cut inside the committed region is unrecoverable from
                // this file alone; the error must say so.
                Err(e) => prop_assert!(e.is_corruption(),
                    "cut at {} of {}: non-corruption error {}", cut, full.len(), e),
            }
        }
    }
}
