//! LRU buffer pool.
//!
//! The paper's experiments use a 10 MB file cache shared by the index and
//! the table file (Sec. V-A); this module provides that cache. It is a plain
//! LRU keyed by page id, holding immutable page snapshots (`Arc<Vec<u8>>`).
//! Writers replace the cached entry, so readers holding an older `Arc` keep
//! a consistent view.

use std::collections::HashMap;
use std::sync::Arc;

use crate::page::PageId;

/// Shared immutable page contents.
pub type PageRef = Arc<Vec<u8>>;

const NIL: usize = usize::MAX;

struct Node {
    key: PageId,
    value: PageRef,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU cache of pages.
pub struct LruCache {
    map: HashMap<PageId, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl LruCache {
    /// Cache holding at most `capacity` pages. A zero capacity disables
    /// caching entirely (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, idx: usize) {
        // `NIL` is `usize::MAX`, so `get_mut(NIL)` misses and the branch
        // falls through to updating the list ends — the same shape as an
        // explicit `!= NIL` check, but total for any index.
        let Some(node) = self.nodes.get(idx) else {
            return;
        };
        let (prev, next) = (node.prev, node.next);
        match self.nodes.get_mut(prev) {
            Some(p) => p.next = next,
            None => self.head = next,
        }
        match self.nodes.get_mut(next) {
            Some(n) => n.prev = prev,
            None => self.tail = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        let head = self.head;
        let Some(node) = self.nodes.get_mut(idx) else {
            return;
        };
        node.prev = NIL;
        node.next = head;
        if let Some(h) = self.nodes.get_mut(head) {
            h.prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up a page, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: PageId) -> Option<PageRef> {
        let idx = *self.map.get(&key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        self.nodes.get(idx).map(|n| Arc::clone(&n.value))
    }

    /// Insert or replace a page, evicting the least-recently-used entry if
    /// the cache is full. Returns the evicted page id, if any.
    pub fn put(&mut self, key: PageId, value: PageRef) -> Option<PageId> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&idx) = self.map.get(&key) {
            if let Some(n) = self.nodes.get_mut(idx) {
                n.value = value;
            }
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            if let Some(old_key) = self.nodes.get(lru).map(|n| n.key) {
                self.unlink(lru);
                self.map.remove(&old_key);
                self.free.push(lru);
                evicted = Some(old_key);
            }
        }
        let node = Node {
            key,
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop().filter(|&i| i < self.nodes.len()) {
            Some(i) => {
                if let Some(slot) = self.nodes.get_mut(i) {
                    *slot = node;
                }
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Remove a page from the cache (used when a file shrinks on rebuild).
    pub fn remove(&mut self, key: PageId) {
        if let Some(idx) = self.map.remove(&key) {
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> PageRef {
        Arc::new(vec![b; 8])
    }

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.get(PageId(1)).is_none());
        c.put(PageId(1), page(1));
        assert_eq!(c.get(PageId(1)).unwrap()[0], 1);
    }

    #[test]
    fn evicts_lru_order() {
        let mut c = LruCache::new(2);
        c.put(PageId(1), page(1));
        c.put(PageId(2), page(2));
        // Touch 1 so 2 becomes LRU.
        c.get(PageId(1)).unwrap();
        let evicted = c.put(PageId(3), page(3));
        assert_eq!(evicted, Some(PageId(2)));
        assert!(c.get(PageId(2)).is_none());
        assert!(c.get(PageId(1)).is_some());
        assert!(c.get(PageId(3)).is_some());
    }

    #[test]
    fn replace_updates_value_without_evicting() {
        let mut c = LruCache::new(2);
        c.put(PageId(1), page(1));
        c.put(PageId(2), page(2));
        assert_eq!(c.put(PageId(1), page(9)), None);
        assert_eq!(c.get(PageId(1)).unwrap()[0], 9);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_and_reuse_slot() {
        let mut c = LruCache::new(2);
        c.put(PageId(1), page(1));
        c.put(PageId(2), page(2));
        c.remove(PageId(1));
        assert_eq!(c.len(), 1);
        c.put(PageId(3), page(3));
        c.put(PageId(4), page(4));
        assert_eq!(c.len(), 2);
        assert!(c.get(PageId(3)).is_some() || c.get(PageId(4)).is_some());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        c.put(PageId(1), page(1));
        assert!(c.get(PageId(1)).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn single_capacity_cycles() {
        let mut c = LruCache::new(1);
        for i in 0..100u64 {
            c.put(PageId(i), page(i as u8));
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(PageId(i)).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn stress_against_reference_model() {
        // Cross-check against a simple Vec-based LRU model.
        let mut c = LruCache::new(4);
        let mut model: Vec<PageId> = Vec::new(); // front = MRU
        let mut seed = 0x9E3779B97F4A7C15u64;
        for _ in 0..5000 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = PageId(seed >> 60); // 16 distinct keys
            if seed & 1 == 0 {
                c.put(key, page(key.0 as u8));
                if let Some(pos) = model.iter().position(|&k| k == key) {
                    model.remove(pos);
                } else if model.len() == 4 {
                    model.pop();
                }
                model.insert(0, key);
            } else {
                let got = c.get(key).is_some();
                let expect = model.contains(&key);
                assert_eq!(got, expect, "key {key}");
                if expect {
                    let pos = model.iter().position(|&k| k == key).unwrap();
                    let k = model.remove(pos);
                    model.insert(0, k);
                }
            }
        }
    }
}
