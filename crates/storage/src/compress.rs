//! lint:scope(no-panic-decode)
//! Bit-packing primitives for the compressed list encodings.
//!
//! The compressed vector-list format (iva-core's `packed` module) stores
//! monotone tuple-id deltas and small numeric codes as fixed-width
//! bit-packed runs, the classic inverted-list compression of
//! compression-based index structures. This module provides the two
//! primitives: a packer that appends `n` values at `width` bits each
//! (LSB-first within and across bytes), and a checked unpacker that reads
//! them back without ever indexing past the buffer — truncated input
//! surfaces as `None`, never a panic, because these bytes come straight
//! off disk.

/// Minimal number of bits needed to represent `v` (`0` for `v == 0`).
pub fn bit_width(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Exact byte length of `n` values packed at `width` bits each.
pub fn packed_len(n: usize, width: u32) -> usize {
    (n * width as usize).div_ceil(8)
}

/// Append `values` to `out`, each truncated to `width` bits, packed
/// LSB-first. `width == 0` appends nothing: the caller's contract is that
/// every value is zero (the unpacker synthesizes zeros back).
pub fn pack_bits(values: &[u64], width: u32, out: &mut Vec<u8>) {
    if width == 0 {
        return;
    }
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    for &v in values {
        acc |= u128::from(v & mask) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

/// Checked LSB-first reader over a bit-packed byte slice.
///
/// Every accessor is bounds-checked against the borrowed buffer; a
/// truncated or short buffer ends the [`Iterator`] with `None` instead
/// of a slice panic.
#[derive(Debug)]
pub struct BitUnpacker<'a> {
    buf: &'a [u8],
    bit_pos: usize,
    width: u32,
}

impl<'a> BitUnpacker<'a> {
    /// Reader over `buf` at `width` bits per value. `None` if the width is
    /// not representable (`> 64`) — a corrupt on-disk tag, not a caller bug.
    pub fn new(buf: &'a [u8], width: u32) -> Option<Self> {
        if width > 64 {
            return None;
        }
        Some(Self {
            buf,
            bit_pos: 0,
            width,
        })
    }
}

impl Iterator for BitUnpacker<'_> {
    type Item = u64;

    /// Next value, or `None` once fewer than `width` bits remain. At width
    /// 0 this returns `Some(0)` forever; the caller bounds the count.
    fn next(&mut self) -> Option<u64> {
        if self.width == 0 {
            return Some(0);
        }
        let end = self.bit_pos.checked_add(self.width as usize)?;
        if end > self.buf.len().checked_mul(8)? {
            return None;
        }
        let first = self.bit_pos / 8;
        let shift = self.bit_pos % 8;
        let nbytes = (shift + self.width as usize).div_ceil(8);
        let mut acc: u128 = 0;
        for (i, &b) in self.buf.get(first..first + nbytes)?.iter().enumerate() {
            acc |= u128::from(b) << (8 * i);
        }
        acc >>= shift;
        let mask = if self.width == 64 {
            u128::from(u64::MAX)
        } else {
            (1u128 << self.width) - 1
        };
        self.bit_pos = end;
        Some((acc & mask) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(bit_width(0), 0);
        assert_eq!(bit_width(1), 1);
        assert_eq!(bit_width(255), 8);
        assert_eq!(bit_width(256), 9);
        assert_eq!(bit_width(u64::MAX), 64);
        assert_eq!(packed_len(0, 13), 0);
        assert_eq!(packed_len(8, 1), 1);
        assert_eq!(packed_len(9, 1), 2);
        assert_eq!(packed_len(3, 64), 24);
    }

    #[test]
    fn roundtrip_all_widths() {
        for width in 0..=64u32 {
            let max = if width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..97u64)
                .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & max)
                .collect();
            let mut buf = Vec::new();
            pack_bits(&values, width, &mut buf);
            assert_eq!(buf.len(), packed_len(values.len(), width), "w={width}");
            let mut u = BitUnpacker::new(&buf, width).unwrap();
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(u.next(), Some(v), "w={width} i={i}");
            }
            if width > 0 {
                // Fewer than `width` bits remain past the run.
                let mut tail = u;
                let spare_bits = buf.len() * 8 - values.len() * width as usize;
                if (spare_bits as u32) < width {
                    assert_eq!(tail.next(), None);
                }
            }
        }
    }

    #[test]
    fn truncated_buffer_is_none_not_panic() {
        let values = [1023u64; 10];
        let mut buf = Vec::new();
        pack_bits(&values, 10, &mut buf);
        buf.truncate(buf.len() - 1);
        let mut u = BitUnpacker::new(&buf, 10).unwrap();
        let decoded: Vec<u64> = std::iter::from_fn(|| u.next()).collect();
        assert!(decoded.len() < values.len());
        assert!(decoded.iter().all(|&v| v == 1023));
    }

    #[test]
    fn bad_width_rejected() {
        assert!(BitUnpacker::new(&[0u8; 8], 65).is_none());
        assert!(BitUnpacker::new(&[], 64).is_some());
        assert_eq!(BitUnpacker::new(&[], 64).unwrap().next(), None);
    }

    #[test]
    fn width_zero_synthesizes_zeros() {
        let mut buf = Vec::new();
        pack_bits(&[0, 0, 0], 0, &mut buf);
        assert!(buf.is_empty());
        let mut u = BitUnpacker::new(&buf, 0).unwrap();
        assert_eq!(u.next(), Some(0));
        assert_eq!(u.next(), Some(0));
    }
}
