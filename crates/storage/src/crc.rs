//! CRC32C (Castagnoli) — the page-checksum algorithm of the on-disk format.
//!
//! Hand-rolled (the build environment is offline, so no `crc32c` crate):
//! a slicing-by-8 table implementation, ~1 GB/s in software, which keeps
//! checksum cost well under the modeled disk transfer time of a page.
//! Polynomial 0x1EDC6F41 (reflected 0x82F63B78), the same checksum used by
//! iSCSI, ext4 metadata and RocksDB block trailers.

use std::sync::OnceLock;

const POLY: u32 = 0x82F6_3B78;

static TABLES: OnceLock<Box<[[u32; 256]; 8]>> = OnceLock::new();

fn make_tables() -> Box<[[u32; 256]; 8]> {
    let mut t = Box::new([[0u32; 256]; 8]);
    for i in 0..256usize {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
        }
        t[0][i] = c;
    }
    for i in 0..256usize {
        let mut c = t[0][i];
        for k in 1..8 {
            c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
            t[k][i] = c;
        }
    }
    t
}

/// CRC32C of `data` (starting from the empty-message state).
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Continue a CRC32C over more data; `crc` is the value returned by a
/// previous [`crc32c`]/[`crc32c_append`] call over the preceding bytes.
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let t = TABLES.get_or_init(make_tables);
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let Ok([b0, b1, b2, b3, b4, b5, b6, b7]) = <[u8; 8]>::try_from(ch) else {
            continue; // chunks_exact(8) always yields 8-byte chunks
        };
        let lo = u32::from_le_bytes([b0, b1, b2, b3]) ^ crc;
        let hi = u32::from_le_bytes([b4, b5, b6, b7]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / iSCSI test vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn append_equals_whole() {
        let data: Vec<u8> = (0..255u8).collect();
        let whole = crc32c(&data);
        for split in [0, 1, 7, 8, 9, 100, 255] {
            let c = crc32c_append(crc32c(&data[..split]), &data[split..]);
            assert_eq!(c, whole, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0xA5u8; 64];
        let base = crc32c(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32c(&data), base, "flip {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
