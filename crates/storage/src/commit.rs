//! lint:scope(no-panic-decode)
//! Atomic shadow-commit for file metadata.
//!
//! A commit record is a small sidecar file updated with the classic
//! write-new → fsync → rename protocol: the payload is written to
//! `<path>.new`, fsynced, then renamed onto `<path>`. The rename is the
//! commit point — it is atomic, and the [`Vfs`] contract treats a returned
//! rename as durable (the real implementation fsyncs the parent
//! directory). A crash at any step leaves either the old record or the new
//! one, never a mix, and the record's own header + CRC32C reject a record
//! that somehow is neither.
//!
//! [`ByteLog`](crate::ByteLog) uses this as its commit record (committed
//! length, tail-page shadow and redo journal); the table catalog rides the
//! same mechanism.

use std::path::{Path, PathBuf};

use crate::codec;
use crate::crc::crc32c;
use crate::error::{Result, StorageError};
use crate::vfs::{read_to_vec, write_full_at, Vfs};

const META_MAGIC: [u8; 4] = *b"IVAM";
const META_VERSION: u32 = 1;
/// magic + version + payload_len + reserved.
const META_HEADER: usize = 16;

/// The temporary path a pending commit record is staged at.
pub fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".new");
    PathBuf::from(name)
}

/// Atomically replace the commit record at `path` with `payload`.
///
/// Durability: when this returns `Ok`, a crash at any later point will
/// recover exactly this payload (or a newer committed one) from `path`.
pub fn write_commit_record(vfs: &dyn Vfs, path: &Path, payload: &[u8]) -> Result<()> {
    let mut buf = Vec::with_capacity(META_HEADER + payload.len() + 4);
    buf.extend_from_slice(&META_MAGIC);
    buf.extend_from_slice(&META_VERSION.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]);
    buf.extend_from_slice(payload);
    let crc = crc32c(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let staged = staging_path(path);
    let file = vfs.create(&staged)?;
    write_full_at(file.as_ref(), &buf, 0)?;
    file.sync()?;
    drop(file);
    vfs.rename(&staged, path)?;
    Ok(())
}

/// Read and validate the commit record at `path`, returning its payload.
///
/// A missing record surfaces as [`StorageError::Format`] mentioning
/// "missing commit record" (the caller decides whether that means "never
/// created" or "corrupt"); a malformed one as `Format`/`Corrupt`.
pub fn read_commit_record(vfs: &dyn Vfs, path: &Path) -> Result<Vec<u8>> {
    let expected = format!("commit record (magic \"IVAM\" v{META_VERSION})");
    let bytes = match read_to_vec(vfs, path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StorageError::Format {
                expected,
                found: format!("missing commit record {}", path.display()),
            })
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < META_HEADER + 4 {
        return Err(StorageError::Format {
            expected,
            found: format!("{}-byte record, too short for a header", bytes.len()),
        });
    }
    if bytes.get(0..4) != Some(META_MAGIC.as_slice()) {
        return Err(StorageError::Format {
            expected,
            found: format!("magic {:02x?}", bytes.get(0..4).unwrap_or_default()),
        });
    }
    let corrupt = |m: &str| StorageError::Corrupt(format!("commit record: {m}"));
    let version = codec::le_u32(&bytes, 4).ok_or_else(|| corrupt("short header"))?;
    if version != META_VERSION {
        return Err(StorageError::Format {
            expected,
            found: format!("commit-record version {version}"),
        });
    }
    let payload_len = codec::le_u32(&bytes, 8).ok_or_else(|| corrupt("short header"))? as usize;
    let total = META_HEADER + payload_len + 4;
    if bytes.len() < total {
        return Err(StorageError::Corrupt(format!(
            "commit record truncated: header claims {payload_len}-byte payload, file has {} bytes",
            bytes.len()
        )));
    }
    let stored = codec::le_u32(&bytes, total - 4).ok_or_else(|| corrupt("short trailer"))?;
    let computed = crc32c(bytes.get(..total - 4).unwrap_or_default());
    if stored != computed {
        return Err(StorageError::Corrupt(format!(
            "commit record checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    bytes
        .get(META_HEADER..META_HEADER + payload_len)
        .map(<[u8]>::to_vec)
        .ok_or_else(|| corrupt("payload out of bounds"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn roundtrip_and_replace() {
        let vfs = MemVfs::new();
        let p = Path::new("x.meta");
        write_commit_record(&vfs, p, b"first").unwrap();
        assert_eq!(read_commit_record(&vfs, p).unwrap(), b"first");
        write_commit_record(&vfs, p, b"second, longer payload").unwrap();
        assert_eq!(
            read_commit_record(&vfs, p).unwrap(),
            b"second, longer payload"
        );
        // The staging file never lingers after a successful commit.
        assert!(!vfs.exists(&staging_path(p)));
    }

    #[test]
    fn missing_and_garbage_records_rejected() {
        let vfs = MemVfs::new();
        let p = Path::new("x.meta");
        assert!(matches!(
            read_commit_record(&vfs, p),
            Err(StorageError::Format { .. })
        ));
        vfs.set_contents(p, vec![0u8; 3]);
        assert!(matches!(
            read_commit_record(&vfs, p),
            Err(StorageError::Format { .. })
        ));
        vfs.set_contents(p, vec![0xEEu8; 64]);
        assert!(matches!(
            read_commit_record(&vfs, p),
            Err(StorageError::Format { .. })
        ));
    }

    #[test]
    fn bit_flip_in_record_detected() {
        let vfs = MemVfs::new();
        let p = Path::new("x.meta");
        write_commit_record(&vfs, p, &[7u8; 40]).unwrap();
        let mut bytes = vfs.contents(p).unwrap();
        for victim in [16, 30, bytes.len() - 5] {
            let mut flipped = bytes.clone();
            flipped[victim] ^= 0x40;
            vfs.set_contents(p, flipped);
            assert!(
                matches!(read_commit_record(&vfs, p), Err(StorageError::Corrupt(_))),
                "flip at {victim} undetected"
            );
        }
        bytes.truncate(bytes.len() - 10);
        vfs.set_contents(p, bytes);
        assert!(matches!(
            read_commit_record(&vfs, p),
            Err(StorageError::Corrupt(_))
        ));
    }
}
