//! Virtual filesystem: the seam every byte of file I/O goes through.
//!
//! [`BlockFile`](crate::BlockFile) (and therefore `Pager`, `ByteLog` and the
//! list file) performs all reads, writes, syncs and renames against a
//! [`Vfs`], in the style of SQLite's VFS layer. Three implementations exist:
//!
//! * [`RealVfs`] — the actual filesystem, via positioned `pread`/`pwrite`.
//! * [`MemVfs`] — an in-memory filesystem shared by every handle cloned
//!   from it (tests, property checks).
//! * [`FaultVfs`](crate::FaultVfs) — a deterministic fault injector with a
//!   power-cut crash model, built on the same interface.
//!
//! The contract mirrors POSIX: `read_at`/`write_at` may be *short* (callers
//! use [`read_full_at`]/[`write_full_at`] to loop), `sync` makes previous
//! writes durable, and `rename` is atomic and assumed durable once it
//! returns — the standard journaling assumption the commit protocol in
//! [`commit`](crate::commit) relies on.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// An open file handle produced by a [`Vfs`].
pub trait VfsFile: Send {
    /// Read up to `buf.len()` bytes at absolute offset `off`. Returns the
    /// number of bytes read; fewer than requested (including zero at EOF)
    /// is a *short read*, not an error.
    fn read_at(&self, buf: &mut [u8], off: u64) -> io::Result<usize>;
    /// Write up to `buf.len()` bytes at absolute offset `off`, extending
    /// the file if needed. Returns the number of bytes written.
    fn write_at(&self, buf: &[u8], off: u64) -> io::Result<usize>;
    /// Current file length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// Whether the file is currently zero bytes long.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Truncate (or zero-extend) the file to exactly `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
    /// Make all previous writes to this file durable.
    fn sync(&self) -> io::Result<()>;
}

/// A filesystem namespace: opens, creates, renames and removes files.
pub trait Vfs: Send + Sync {
    /// Create (truncate) a file for read/write.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open an existing file for read/write.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Atomically rename `from` onto `to` (replacing `to`). Treated as
    /// durable once it returns.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and its parents (no-op for flat namespaces).
    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }
    /// Remove a directory tree (no-op for flat namespaces).
    fn remove_dir_all(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }
}

/// The [`Vfs`] memory-backed constructors (`create_mem`) should build on:
/// a plain [`MemVfs`], or — with `IVA_VFS=fault` in the environment — a
/// pass-through [`FaultVfs`](crate::FaultVfs), proving the fault-injection
/// seam is functionally free. Every layer's `create_mem` goes through this
/// one function so the env switch cannot cover one layer and miss another.
pub fn default_mem_vfs() -> Arc<dyn Vfs> {
    if std::env::var_os("IVA_VFS").is_some_and(|v| v == "fault") {
        Arc::new(crate::fault::FaultVfs::passthrough(0x1FA5_7FA5))
    } else {
        Arc::new(MemVfs::new())
    }
}

/// Read exactly `buf.len()` bytes at `off`, looping over short reads.
/// Hitting EOF first yields [`io::ErrorKind::UnexpectedEof`].
pub fn read_full_at(file: &dyn VfsFile, mut buf: &mut [u8], mut off: u64) -> io::Result<()> {
    while !buf.is_empty() {
        let n = file.read_at(buf, off)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short read: file ends before requested range",
            ));
        }
        buf = match buf.split_at_mut_checked(n) {
            Some((_, rest)) => rest,
            None => {
                return Err(io::Error::other(
                    "read_at reported more bytes than the buffer holds",
                ))
            }
        };
        off += n as u64;
    }
    Ok(())
}

/// Write all of `buf` at `off`, looping over short writes.
pub fn write_full_at(file: &dyn VfsFile, mut buf: &[u8], mut off: u64) -> io::Result<()> {
    while !buf.is_empty() {
        let n = file.write_at(buf, off)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "short write: no progress",
            ));
        }
        buf = match buf.split_at_checked(n) {
            Some((_, rest)) => rest,
            None => {
                return Err(io::Error::other(
                    "write_at reported more bytes than the buffer holds",
                ))
            }
        };
        off += n as u64;
    }
    Ok(())
}

/// Read a whole file into memory.
pub fn read_to_vec(vfs: &dyn Vfs, path: &Path) -> io::Result<Vec<u8>> {
    let f = vfs.open(path)?;
    let len = f.len()? as usize;
    let mut buf = vec![0u8; len];
    read_full_at(f.as_ref(), &mut buf, 0)?;
    Ok(buf)
}

/// Create `path` holding exactly `data` (the `std::fs::write` of the Vfs
/// world — tests and tools use it so even their fixture files go through
/// the seam).
pub fn write_vec(vfs: &dyn Vfs, path: &Path, data: impl AsRef<[u8]>) -> io::Result<()> {
    let f = vfs.create(path)?;
    // lint:allow(accounting-dataflow, "fixture helper for tests and tools; never on a measured I/O path")
    write_full_at(f.as_ref(), data.as_ref(), 0)?;
    f.sync()
}

// ---------------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------------

/// The real filesystem, via positioned reads and writes.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

struct RealFile(std::fs::File);

impl VfsFile for RealFile {
    fn read_at(&self, buf: &mut [u8], off: u64) -> io::Result<usize> {
        std::os::unix::fs::FileExt::read_at(&self.0, buf, off)
    }
    fn write_at(&self, buf: &[u8], off: u64) -> io::Result<usize> {
        std::os::unix::fs::FileExt::write_at(&self.0, buf, off)
    }
    fn len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn sync(&self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(f)))
    }
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(RealFile(f)))
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)?;
        // Make the rename itself durable: fsync the parent directory, as
        // the commit protocol treats a returned rename as the commit point.
        if let Some(dir) = to.parent() {
            if !dir.as_os_str().is_empty() {
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
        }
        Ok(())
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(path)
    }
}

// ---------------------------------------------------------------------------
// In-memory filesystem
// ---------------------------------------------------------------------------

type MemMap = Arc<Mutex<HashMap<PathBuf, Arc<Mutex<Vec<u8>>>>>>;

/// An in-memory filesystem. `Clone` shares the namespace, so a pager and
/// its sidecar commit record can live on the same instance.
#[derive(Default, Clone)]
pub struct MemVfs {
    files: MemMap,
}

impl MemVfs {
    /// A fresh, empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot a file's current contents (test hook; `None` if absent).
    pub fn contents(&self, path: &Path) -> Option<Vec<u8>> {
        let files = self.files.lock().unwrap_or_else(PoisonError::into_inner);
        files
            .get(path)
            .map(|d| d.lock().unwrap_or_else(PoisonError::into_inner).clone())
    }

    /// Replace a file's contents wholesale (test hook for corrupting
    /// on-disk state, e.g. flipping a bit inside a page frame).
    pub fn set_contents(&self, path: &Path, data: Vec<u8>) {
        let mut files = self.files.lock().unwrap_or_else(PoisonError::into_inner);
        files.insert(path.to_path_buf(), Arc::new(Mutex::new(data)));
    }

    /// All file paths currently present.
    pub fn paths(&self) -> Vec<PathBuf> {
        self.files
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }
}

struct MemFile(Arc<Mutex<Vec<u8>>>);

impl VfsFile for MemFile {
    fn read_at(&self, buf: &mut [u8], off: u64) -> io::Result<usize> {
        let data = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        let off = off as usize;
        if off >= data.len() {
            return Ok(0);
        }
        let n = buf.len().min(data.len() - off);
        match (buf.get_mut(..n), data.get(off..off + n)) {
            (Some(dst), Some(src)) => dst.copy_from_slice(src),
            _ => return Err(io::Error::other("in-memory read range out of bounds")),
        }
        Ok(n)
    }
    fn write_at(&self, buf: &[u8], off: u64) -> io::Result<usize> {
        let mut data = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        let end = off as usize + buf.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        match data.get_mut(off as usize..end) {
            Some(dst) => dst.copy_from_slice(buf),
            None => return Err(io::Error::other("in-memory write range out of bounds")),
        }
        Ok(buf.len())
    }
    fn len(&self) -> io::Result<u64> {
        Ok(self.0.lock().unwrap_or_else(PoisonError::into_inner).len() as u64)
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .resize(len as usize, 0);
        Ok(())
    }
    fn sync(&self) -> io::Result<()> {
        Ok(())
    }
}

impl Vfs for MemVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let data = Arc::new(Mutex::new(Vec::new()));
        self.files
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(path.to_path_buf(), Arc::clone(&data));
        Ok(Box::new(MemFile(data)))
    }
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let files = self.files.lock().unwrap_or_else(PoisonError::into_inner);
        match files.get(path) {
            Some(data) => Ok(Box::new(MemFile(Arc::clone(data)))),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such in-memory file: {}", path.display()),
            )),
        }
    }
    fn exists(&self, path: &Path) -> bool {
        self.files
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.files.lock().unwrap_or_else(PoisonError::into_inner);
        match files.remove(from) {
            Some(data) => {
                files.insert(to.to_path_buf(), data);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("rename source missing: {}", from.display()),
            )),
        }
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut files = self.files.lock().unwrap_or_else(PoisonError::into_inner);
        match files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_roundtrip_and_rename() {
        let vfs = MemVfs::new();
        let p = Path::new("a.bin");
        let f = vfs.create(p).unwrap();
        write_full_at(f.as_ref(), b"hello world", 0).unwrap();
        assert_eq!(f.len().unwrap(), 11);
        let mut buf = [0u8; 5];
        read_full_at(f.as_ref(), &mut buf, 6).unwrap();
        assert_eq!(&buf, b"world");
        // Short read at EOF.
        assert_eq!(f.read_at(&mut buf, 9).unwrap(), 2);
        assert_eq!(f.read_at(&mut buf, 11).unwrap(), 0);

        vfs.rename(p, Path::new("b.bin")).unwrap();
        assert!(!vfs.exists(p));
        assert_eq!(
            read_to_vec(&vfs, Path::new("b.bin")).unwrap(),
            b"hello world"
        );
    }

    #[test]
    fn mem_vfs_clone_shares_namespace() {
        let a = MemVfs::new();
        let b = a.clone();
        let f = a.create(Path::new("x")).unwrap();
        write_full_at(f.as_ref(), &[7; 3], 0).unwrap();
        assert_eq!(b.contents(Path::new("x")).unwrap(), vec![7; 3]);
    }

    #[test]
    fn real_vfs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("iva-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.bin");
        let vfs = RealVfs;
        let f = vfs.create(&path).unwrap();
        write_full_at(f.as_ref(), &[1, 2, 3, 4], 0).unwrap();
        f.sync().unwrap();
        drop(f);
        let f = vfs.open(&path).unwrap();
        let mut buf = [0u8; 4];
        read_full_at(f.as_ref(), &mut buf, 0).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        f.set_len(2).unwrap();
        assert_eq!(f.len().unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
