//! lint:scope(no-panic-decode)
//! Chained page lists ("list files").
//!
//! The iVA-file is "a sequence of list elements" per list (tuple list,
//! attribute list, one vector list per attribute), each of which is scanned
//! sequentially and appended at the tail (Sec. III-D / IV-B of the paper).
//! This module provides that abstraction over a [`Pager`]: a list is a chain
//! of pages, contiguous when bulk-written at (re)build time and fragmenting
//! at the file tail as updates append — exactly the behaviour the paper's
//! periodic-rebuild scheme assumes.
//!
//! Page layout: `[next: u64][used: u16][data ...]`.

use std::sync::Arc;

use crate::cache::PageRef;
use crate::codec;
use crate::error::{Result, StorageError};
use crate::page::PageId;
use crate::pager::Pager;

/// Bytes of per-page metadata (next pointer + used length).
pub const LIST_PAGE_HEADER: usize = 10;

/// Location and length of one list inside a paged file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListHandle {
    /// First page of the chain (the paper's `ptr1`).
    pub head: PageId,
    /// Last page of the chain (the paper's `ptr2`).
    pub tail: PageId,
    /// Total data bytes stored in the list.
    pub len: u64,
}

impl ListHandle {
    /// Serialized size of a handle.
    pub const ENCODED_LEN: usize = 24;

    /// Encode into 24 little-endian bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.head.0.to_le_bytes());
        out.extend_from_slice(&self.tail.0.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
    }

    /// Decode from 24 bytes.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let u = |i| {
            codec::le_u64(buf, i).ok_or_else(|| StorageError::Corrupt("short list handle".into()))
        };
        Ok(Self {
            head: PageId(u(0)?),
            tail: PageId(u(8)?),
            len: u(16)?,
        })
    }
}

fn data_capacity(page_size: usize) -> usize {
    page_size - LIST_PAGE_HEADER
}

fn page_next(page: &[u8]) -> PageId {
    PageId(codec::le_u64(page, 0).unwrap_or(0))
}

fn page_used(page: &[u8]) -> usize {
    codec::le_u16(page, 8).unwrap_or(0) as usize
}

/// Read and validate the disk-sourced `used` field: a corrupt page may
/// claim more data bytes than a page can hold, which would overrun every
/// slice computed from it. Surface that as `Corrupt` instead of a panic.
fn checked_page_used(page: &[u8], page_size: usize) -> Result<usize> {
    let used = page_used(page);
    if used > data_capacity(page_size) {
        return Err(StorageError::Corrupt(format!(
            "list page claims {used} used bytes, capacity is {}",
            data_capacity(page_size)
        )));
    }
    Ok(used)
}

fn set_page_next(page: &mut [u8], next: PageId) {
    if let Some(d) = page.get_mut(0..8) {
        d.copy_from_slice(&next.0.to_le_bytes());
    }
}

fn set_page_used(page: &mut [u8], used: usize) {
    if let Some(d) = page.get_mut(8..10) {
        d.copy_from_slice(&(used as u16).to_le_bytes());
    }
}

/// Appends bytes to a list, buffering the tail page in memory. Call
/// [`ListWriter::finish`] to flush and obtain the updated handle.
pub struct ListWriter {
    pager: Arc<Pager>,
    head: PageId,
    tail: PageId,
    tail_buf: Vec<u8>,
    tail_used: usize,
    len: u64,
}

impl ListWriter {
    /// Start a brand-new list (allocates its first page).
    pub fn create(pager: Arc<Pager>) -> Result<Self> {
        let page_size = pager.page_size();
        let head = pager.allocate_page()?;
        let mut buf = vec![0u8; page_size];
        set_page_next(&mut buf, PageId::NULL);
        Ok(Self {
            pager,
            head,
            tail: head,
            tail_buf: buf,
            tail_used: 0,
            len: 0,
        })
    }

    /// Resume appending to an existing list.
    pub fn append_to(pager: Arc<Pager>, handle: ListHandle) -> Result<Self> {
        let page = pager.read_page(handle.tail)?;
        let tail_buf = page.as_ref().clone();
        let tail_used = checked_page_used(&tail_buf, pager.page_size())?;
        Ok(Self {
            pager,
            head: handle.head,
            tail: handle.tail,
            tail_buf,
            tail_used,
            len: handle.len,
        })
    }

    /// Append raw bytes, spilling across pages as needed.
    pub fn append(&mut self, mut data: &[u8]) -> Result<()> {
        let cap = data_capacity(self.pager.page_size());
        while !data.is_empty() {
            if self.tail_used == cap {
                self.spill_new_page()?;
            }
            let n = data.len().min(cap - self.tail_used);
            let start = LIST_PAGE_HEADER + self.tail_used;
            if let (Some(dst), Some(src)) = (self.tail_buf.get_mut(start..start + n), data.get(..n))
            {
                dst.copy_from_slice(src);
            }
            self.tail_used += n;
            self.len += n as u64;
            data = data.get(n..).unwrap_or(&[]);
        }
        Ok(())
    }

    /// Append a single byte.
    pub fn append_u8(&mut self, v: u8) -> Result<()> {
        self.append(&[v])
    }

    /// Append a little-endian u16.
    pub fn append_u16(&mut self, v: u16) -> Result<()> {
        self.append(&v.to_le_bytes())
    }

    /// Append a little-endian u32.
    pub fn append_u32(&mut self, v: u32) -> Result<()> {
        self.append(&v.to_le_bytes())
    }

    /// Append a little-endian u64.
    pub fn append_u64(&mut self, v: u64) -> Result<()> {
        self.append(&v.to_le_bytes())
    }

    fn spill_new_page(&mut self) -> Result<()> {
        // Flush the (full) tail, chain a fresh page after it.
        let new_id = self.pager.allocate_page()?;
        set_page_next(&mut self.tail_buf, new_id);
        set_page_used(&mut self.tail_buf, self.tail_used);
        self.pager.write_page(
            self.tail,
            std::mem::replace(&mut self.tail_buf, vec![0u8; self.pager.page_size()]),
        )?;
        set_page_next(&mut self.tail_buf, PageId::NULL);
        self.tail = new_id;
        self.tail_used = 0;
        Ok(())
    }

    /// Bytes appended so far (including any pre-existing content).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the list holds no data bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Flush the tail page and return the list handle.
    pub fn finish(mut self) -> Result<ListHandle> {
        set_page_used(&mut self.tail_buf, self.tail_used);
        let tail_buf = std::mem::take(&mut self.tail_buf);
        self.pager.write_page(self.tail, tail_buf)?;
        Ok(ListHandle {
            head: self.head,
            tail: self.tail,
            len: self.len,
        })
    }
}

/// Sequential cursor over a list's data bytes.
///
/// Besides the copying `read_*` primitives, the reader exposes a zero-copy
/// path: [`ListReader::read_bytes`] yields element views borrowed directly
/// from the pinned buffer-pool page whenever the run does not cross a page
/// boundary (falling back to one internal copy when it does), and
/// [`ListReader::read_run_page`] hands out whole in-page runs together with
/// the page reference so callers can hold them across further reads. Both
/// paths touch exactly the pages the copying path would, so I/O accounting
/// is identical.
///
/// Besides the pager-level counters, the reader feeds two list-granular
/// [`IoStats`](crate::IoStats) counters: *logical* list bytes (data bytes
/// delivered to the caller, padding-free) and *physical* list bytes (one
/// full page size per page the cursor enters, padding included). Each is
/// charged at exactly one site — logical where bytes are handed out,
/// physical in [`ListReader::open`] / `advance_page` — so a read that
/// crosses any number of page boundaries is never double-counted.
pub struct ListReader {
    pager: Arc<Pager>,
    page: PageRef,
    page_used: usize,
    offset_in_page: usize,
    /// Logical position within the list's data bytes.
    pos: u64,
    len: u64,
    /// Reused buffer for page-crossing [`ListReader::read_bytes`] calls.
    spill: Vec<u8>,
}

impl ListReader {
    /// Open a cursor at the start of the list.
    pub fn open(pager: Arc<Pager>, handle: ListHandle) -> Result<Self> {
        let page = pager.read_page(handle.head)?;
        let page_used = checked_page_used(&page, pager.page_size())?;
        pager.stats().record_list_physical(pager.page_size() as u64);
        Ok(Self {
            pager,
            page,
            page_used,
            offset_in_page: 0,
            pos: 0,
            len: handle.len,
            spill: Vec::new(),
        })
    }

    /// Logical read position (bytes from list start).
    pub fn tell(&self) -> u64 {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    /// True once all data bytes have been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.len
    }

    fn advance_page(&mut self) -> Result<()> {
        let next = page_next(&self.page);
        if next.is_null() {
            return Err(StorageError::Corrupt(
                "list chain ended before declared length".into(),
            ));
        }
        self.page = self.pager.read_page(next)?;
        self.page_used = checked_page_used(&self.page, self.pager.page_size())?;
        self.offset_in_page = 0;
        self.pager
            .stats()
            .record_list_physical(self.pager.page_size() as u64);
        Ok(())
    }

    /// Read exactly `buf.len()` bytes.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        if self.remaining() < buf.len() as u64 {
            return Err(StorageError::Corrupt(format!(
                "list read of {} bytes with only {} remaining",
                buf.len(),
                self.remaining()
            )));
        }
        let mut filled = 0;
        while filled < buf.len() {
            if self.offset_in_page == self.page_used {
                self.advance_page()?;
            }
            let avail = self.page_used - self.offset_in_page;
            let n = (buf.len() - filled).min(avail);
            let start = LIST_PAGE_HEADER + self.offset_in_page;
            if let (Some(dst), Some(src)) = (
                buf.get_mut(filled..filled + n),
                self.page.get(start..start + n),
            ) {
                dst.copy_from_slice(src);
            }
            filled += n;
            self.offset_in_page += n;
            self.pos += n as u64;
        }
        self.pager.stats().record_list_logical(buf.len() as u64);
        Ok(())
    }

    /// Read exactly `n` bytes as a borrowed view.
    ///
    /// When the run lies within the current page the slice borrows the
    /// pinned buffer-pool page directly (zero copy). A run crossing a page
    /// boundary is assembled in an internal reusable buffer — the *copy
    /// fallback* — so the returned view is always contiguous. The borrow
    /// ends at the next `&mut self` call; callers consuming one element at
    /// a time never clone page data.
    pub fn read_bytes(&mut self, n: usize) -> Result<&[u8]> {
        if self.remaining() < n as u64 {
            return Err(StorageError::Corrupt(format!(
                "list read of {} bytes with only {} remaining",
                n,
                self.remaining()
            )));
        }
        if n == 0 {
            return Ok(&[]);
        }
        while self.offset_in_page == self.page_used {
            self.advance_page()?;
        }
        if self.page_used - self.offset_in_page >= n {
            let start = LIST_PAGE_HEADER + self.offset_in_page;
            self.offset_in_page += n;
            self.pos += n as u64;
            self.pager.stats().record_list_logical(n as u64);
            return self
                .page
                .get(start..start + n)
                .ok_or_else(|| StorageError::Corrupt("list page view out of bounds".into()));
        }
        // Page-crossing fallback: one copy through the reusable spill.
        // `read_exact` charges the logical bytes (and `advance_page` the
        // spanned pages), so no counter is touched here — charging on this
        // path too would double-count every boundary-crossing read.
        let mut spill = std::mem::take(&mut self.spill);
        spill.clear();
        spill.resize(n, 0);
        let res = self.read_exact(&mut spill);
        self.spill = spill;
        res?;
        Ok(&self.spill)
    }

    /// Bytes readable from the current page without crossing a boundary,
    /// stepping into the next page first if the current one is exhausted.
    /// Returns 0 only at end of list.
    pub fn in_page_remaining(&mut self) -> Result<usize> {
        if self.at_end() {
            return Ok(0);
        }
        while self.offset_in_page == self.page_used {
            self.advance_page()?;
        }
        let in_page = self.page_used - self.offset_in_page;
        Ok((in_page as u64).min(self.remaining()) as usize)
    }

    /// Consume `n` bytes of the current page and return the page reference
    /// plus the data range — a whole-page run the caller may hold onto
    /// while the reader moves on (block scans feed such runs to the
    /// estimation kernel). `n` must not exceed
    /// [`ListReader::in_page_remaining`].
    pub fn read_run_page(&mut self, n: usize) -> Result<(PageRef, std::ops::Range<usize>)> {
        if n == 0 {
            return Ok((Arc::clone(&self.page), 0..0));
        }
        if self.remaining() < n as u64 {
            return Err(StorageError::Corrupt("list run past end".into()));
        }
        while self.offset_in_page == self.page_used {
            self.advance_page()?;
        }
        if self.page_used - self.offset_in_page < n {
            return Err(StorageError::InvalidArgument(format!(
                "page run of {} bytes exceeds the {} left in page",
                n,
                self.page_used - self.offset_in_page
            )));
        }
        let start = LIST_PAGE_HEADER + self.offset_in_page;
        self.offset_in_page += n;
        self.pos += n as u64;
        self.pager.stats().record_list_logical(n as u64);
        Ok((Arc::clone(&self.page), start..start + n))
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, mut n: u64) -> Result<()> {
        if self.remaining() < n {
            return Err(StorageError::Corrupt("list skip past end".into()));
        }
        while n > 0 {
            if self.offset_in_page == self.page_used {
                self.advance_page()?;
            }
            let avail = (self.page_used - self.offset_in_page) as u64;
            let step = n.min(avail);
            self.offset_in_page += step as usize;
            self.pos += step;
            n -= step;
        }
        Ok(())
    }

    /// Read one byte.
    pub fn read_u8(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(u8::from_le_bytes(b))
    }

    /// Read a little-endian u16.
    pub fn read_u16(&mut self) -> Result<u16> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Read a little-endian u32.
    pub fn read_u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian u64.
    pub fn read_u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read a little-endian f64.
    pub fn read_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }
}

/// Overwrite `data.len()` bytes at logical offset `logical_off` of a list,
/// in place (walks the chain; used for the paper's tuple-list tombstones and
/// attribute-list element updates, which rewrite fixed-size fields without
/// moving anything).
pub fn overwrite_in_list(
    pager: &Arc<Pager>,
    handle: ListHandle,
    logical_off: u64,
    data: &[u8],
) -> Result<()> {
    if logical_off + data.len() as u64 > handle.len {
        return Err(StorageError::InvalidArgument(format!(
            "list overwrite [{logical_off}, +{}) beyond length {}",
            data.len(),
            handle.len
        )));
    }
    let mut page_id = handle.head;
    let mut skip = logical_off;
    let mut written = 0usize;
    while written < data.len() {
        if page_id.is_null() {
            return Err(StorageError::Corrupt(
                "list chain ended during overwrite".into(),
            ));
        }
        let page = pager.read_page(page_id)?;
        let used = checked_page_used(&page, pager.page_size())? as u64;
        let next = page_next(&page);
        drop(page);
        if skip >= used {
            skip -= used;
            page_id = next;
            continue;
        }
        let start = skip as usize;
        let n = (data.len() - written).min(used as usize - start);
        pager.update_page(page_id, |p| {
            if let (Some(dst), Some(src)) = (
                p.get_mut(LIST_PAGE_HEADER + start..LIST_PAGE_HEADER + start + n),
                data.get(written..written + n),
            ) {
                dst.copy_from_slice(src);
            }
        })?;
        written += n;
        skip = 0;
        page_id = next;
    }
    Ok(())
}

/// Extract a whole list into one contiguous byte buffer — the column
/// extraction read used when promoting a vector list into an in-memory
/// tier. The walk is a plain sequential scan through the pager, so the
/// extraction's I/O cost lands in [`crate::IoStats`] like any other scan
/// of the same list.
pub fn read_list_to_vec(pager: &Arc<Pager>, handle: ListHandle) -> Result<Vec<u8>> {
    let mut out = vec![0u8; handle.len as usize];
    if handle.len > 0 {
        let mut r = ListReader::open(Arc::clone(pager), handle)?;
        r.read_exact(&mut out)?;
    }
    Ok(out)
}

/// Bulk-write a byte buffer as a new, physically contiguous list.
///
/// Used at (re)build time so that subsequent scans are purely sequential.
pub fn write_contiguous_list(pager: &Arc<Pager>, data: &[u8]) -> Result<ListHandle> {
    let page_size = pager.page_size();
    let cap = data_capacity(page_size);
    let mut head = PageId::NULL;
    let mut prev: Option<(PageId, Vec<u8>)> = None;
    let mut tail = PageId::NULL;
    let mut chunks: Vec<&[u8]> = data.chunks(cap).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    for chunk in chunks {
        let id = pager.allocate_page()?;
        if head.is_null() {
            head = id;
        }
        if let Some((pid, mut pbuf)) = prev.take() {
            set_page_next(&mut pbuf, id);
            pager.write_page(pid, pbuf)?;
        }
        let mut buf = vec![0u8; page_size];
        set_page_next(&mut buf, PageId::NULL);
        set_page_used(&mut buf, chunk.len());
        if let Some(d) = buf.get_mut(LIST_PAGE_HEADER..LIST_PAGE_HEADER + chunk.len()) {
            d.copy_from_slice(chunk);
        }
        tail = id;
        prev = Some((id, buf));
    }
    if let Some((pid, pbuf)) = prev {
        pager.write_page(pid, pbuf)?;
    }
    Ok(ListHandle {
        head,
        tail,
        len: data.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PagerOptions;
    use crate::stats::IoStats;

    fn mem_pager() -> Arc<Pager> {
        let opts = PagerOptions {
            page_size: 64,
            cache_bytes: 64 * 16,
        };
        Pager::create_mem(&opts, IoStats::new())
    }

    #[test]
    fn handle_roundtrip() {
        let h = ListHandle {
            head: PageId(3),
            tail: PageId(9),
            len: 12345,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), ListHandle::ENCODED_LEN);
        assert_eq!(ListHandle::decode(&buf).unwrap(), h);
        assert!(ListHandle::decode(&buf[..10]).is_err());
    }

    #[test]
    fn write_read_small() {
        let p = mem_pager();
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        w.append(b"hello").unwrap();
        w.append_u32(0xDEADBEEF).unwrap();
        let h = w.finish().unwrap();
        assert_eq!(h.len, 9);

        let mut r = ListReader::open(p, h).unwrap();
        let mut s = [0u8; 5];
        r.read_exact(&mut s).unwrap();
        assert_eq!(&s, b"hello");
        assert_eq!(r.read_u32().unwrap(), 0xDEADBEEF);
        assert!(r.at_end());
    }

    #[test]
    fn write_read_across_many_pages() {
        let p = mem_pager();
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        // Append in odd-sized chunks to exercise boundary handling.
        for chunk in data.chunks(7) {
            w.append(chunk).unwrap();
        }
        let h = w.finish().unwrap();
        assert_eq!(h.len, 1000);
        assert_ne!(h.head, h.tail);

        let mut r = ListReader::open(p, h).unwrap();
        let mut out = vec![0u8; 1000];
        r.read_exact(&mut out).unwrap();
        assert_eq!(out, data);
        assert!(r.at_end());
        assert!(r.read_u8().is_err());
    }

    #[test]
    fn resume_appending() {
        let p = mem_pager();
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        w.append(b"part1-").unwrap();
        let h1 = w.finish().unwrap();

        let mut w = ListWriter::append_to(Arc::clone(&p), h1).unwrap();
        w.append(b"part2").unwrap();
        let h2 = w.finish().unwrap();
        assert_eq!(h2.len, 11);
        assert_eq!(h2.head, h1.head);

        let mut r = ListReader::open(p, h2).unwrap();
        let mut out = vec![0u8; 11];
        r.read_exact(&mut out).unwrap();
        assert_eq!(&out, b"part1-part2");
    }

    #[test]
    fn resume_appending_across_page_boundary() {
        let p = mem_pager();
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        w.append(&[1u8; 50]).unwrap();
        let h1 = w.finish().unwrap();
        let mut w = ListWriter::append_to(Arc::clone(&p), h1).unwrap();
        w.append(&[2u8; 50]).unwrap();
        let h = w.finish().unwrap();
        assert_eq!(h.len, 100);
        let mut r = ListReader::open(p, h).unwrap();
        let mut out = vec![0u8; 100];
        r.read_exact(&mut out).unwrap();
        assert_eq!(&out[..50], &vec![1u8; 50][..]);
        assert_eq!(&out[50..], &vec![2u8; 50][..]);
    }

    #[test]
    fn skip_and_tell() {
        let p = mem_pager();
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        for i in 0..100u8 {
            w.append_u8(i).unwrap();
        }
        let h = w.finish().unwrap();
        let mut r = ListReader::open(p, h).unwrap();
        r.skip(73).unwrap();
        assert_eq!(r.tell(), 73);
        assert_eq!(r.read_u8().unwrap(), 73);
        assert_eq!(r.remaining(), 26);
        assert!(r.skip(27).is_err());
    }

    #[test]
    fn read_bytes_views_match_copies() {
        let p = mem_pager(); // 64 B pages, 54 B data capacity
        let data: Vec<u8> = (0..240u32).map(|i| (i % 251) as u8).collect();
        let h = write_contiguous_list(&p, &data).unwrap();
        // Odd-sized element reads force both in-page views and the
        // page-crossing copy fallback.
        for elem in [1usize, 7, 13, 54, 60] {
            let mut viewer = ListReader::open(Arc::clone(&p), h).unwrap();
            let mut copier = ListReader::open(Arc::clone(&p), h).unwrap();
            let mut buf = vec![0u8; elem];
            while viewer.remaining() >= elem as u64 {
                let view = viewer.read_bytes(elem).unwrap().to_vec();
                copier.read_exact(&mut buf).unwrap();
                assert_eq!(view, buf, "elem={elem}");
                assert_eq!(viewer.tell(), copier.tell());
            }
        }
    }

    #[test]
    fn read_bytes_edge_cases() {
        let p = mem_pager();
        let h = write_contiguous_list(&p, &[9u8; 10]).unwrap();
        let mut r = ListReader::open(Arc::clone(&p), h).unwrap();
        assert_eq!(r.read_bytes(0).unwrap(), &[] as &[u8]);
        assert_eq!(r.read_bytes(10).unwrap(), &[9u8; 10]);
        assert!(r.read_bytes(1).is_err());
    }

    #[test]
    fn read_run_page_hands_out_whole_runs() {
        let p = mem_pager(); // 54 B data per page
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        let h = write_contiguous_list(&p, &data).unwrap();
        let mut r = ListReader::open(Arc::clone(&p), h).unwrap();
        let mut reassembled = Vec::new();
        let mut held = Vec::new(); // runs stay valid while the reader moves on
        while !r.at_end() {
            let avail = r.in_page_remaining().unwrap();
            assert!(avail > 0);
            let (page, range) = r.read_run_page(avail).unwrap();
            reassembled.extend_from_slice(&page[range.clone()]);
            held.push((page, range));
        }
        assert_eq!(reassembled, data);
        assert_eq!(r.in_page_remaining().unwrap(), 0);
        // Over-long runs are rejected without advancing.
        let mut r = ListReader::open(Arc::clone(&p), h).unwrap();
        assert!(r.read_run_page(55).is_err());
        assert_eq!(r.tell(), 0);
        let (_, empty) = r.read_run_page(0).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn mixed_view_and_copy_reads_stay_aligned() {
        let p = mem_pager();
        let data: Vec<u8> = (0..150u32).map(|i| i as u8).collect();
        let h = write_contiguous_list(&p, &data).unwrap();
        let mut r = ListReader::open(Arc::clone(&p), h).unwrap();
        let mut out = Vec::new();
        loop {
            let left = r.remaining() as usize;
            if left == 0 {
                break;
            }
            match out.len() % 3 {
                0 => out.extend_from_slice(r.read_bytes(5.min(left)).unwrap()),
                1 => out.push(r.read_u8().unwrap()),
                _ => {
                    let avail = r.in_page_remaining().unwrap().min(4);
                    let (page, range) = r.read_run_page(avail).unwrap();
                    out.extend_from_slice(&page[range]);
                }
            }
        }
        assert_eq!(out, data);
    }

    #[test]
    fn boundary_crossing_reads_charge_list_bytes_exactly_once() {
        // 64 B pages, 54 B data capacity: a 120 B read starting at offset
        // 10 spans three pages, i.e. crosses a page boundary twice in one
        // `read_bytes` call. The spill fallback delegates to `read_exact`,
        // which must be the only site charging the logical bytes and
        // `advance_page` the only site charging the spanned pages —
        // charging in `read_bytes` as well would double-count both.
        let p = mem_pager();
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        let h = write_contiguous_list(&p, &data).unwrap();

        let before = p.stats().snapshot();
        let mut r = ListReader::open(Arc::clone(&p), h).unwrap();
        r.skip(10).unwrap();
        let view = r.read_bytes(120).unwrap().to_vec();
        assert_eq!(view, &data[10..130]);
        let d = p.stats().snapshot().since(&before);
        // Exactly the 120 delivered bytes, charged once.
        assert_eq!(d.logical_list_bytes, 120);
        // Exactly the three pages entered (open + two boundary crossings).
        assert_eq!(d.physical_list_bytes, 3 * 64);

        // The same bytes read element-wise (views + copies + run pages)
        // charge identically: logical counts deliveries, not call shapes.
        let before = p.stats().snapshot();
        let mut r = ListReader::open(Arc::clone(&p), h).unwrap();
        let mut delivered = 0u64;
        while !r.at_end() {
            match delivered % 3 {
                0 => delivered += r.read_bytes(7.min(r.remaining() as usize)).unwrap().len() as u64,
                1 => {
                    r.read_u8().unwrap();
                    delivered += 1;
                }
                _ => {
                    let n = r.in_page_remaining().unwrap().min(5);
                    let (_, range) = r.read_run_page(n).unwrap();
                    delivered += range.len() as u64;
                }
            }
        }
        assert_eq!(delivered, 200);
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.logical_list_bytes, 200);
        assert_eq!(d.physical_list_bytes, 4 * 64); // ceil(200 / 54) pages
    }

    #[test]
    fn contiguous_bulk_write_is_sequential() {
        let opts = PagerOptions {
            page_size: 64,
            cache_bytes: 0,
        }; // no cache
        let p = Pager::create_mem(&opts, IoStats::new());
        let data: Vec<u8> = (0..500u16).map(|i| (i % 256) as u8).collect();
        let h = write_contiguous_list(&p, &data).unwrap();
        assert_eq!(h.len, 500);

        let before = p.stats().snapshot();
        let mut r = ListReader::open(Arc::clone(&p), h).unwrap();
        let mut out = vec![0u8; 500];
        r.read_exact(&mut out).unwrap();
        assert_eq!(out, data);
        let d = p.stats().snapshot().since(&before);
        // Only the first page read may seek; the rest of the scan is sequential.
        assert!(
            d.random_seeks <= 1,
            "scan of contiguous list should not seek: {d:?}"
        );
    }

    #[test]
    fn contiguous_empty_list() {
        let p = mem_pager();
        let h = write_contiguous_list(&p, &[]).unwrap();
        assert_eq!(h.len, 0);
        let r = ListReader::open(p, h).unwrap();
        assert!(r.at_end());
    }

    #[test]
    fn read_list_to_vec_extracts_whole_lists() {
        let p = mem_pager(); // 64 B pages: multi-page lists exercised
        for n in [0usize, 1, 54, 55, 500] {
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let h = write_contiguous_list(&p, &data).unwrap();
            assert_eq!(read_list_to_vec(&p, h).unwrap(), data, "n={n}");
        }
        // Fragmented (writer-built) lists extract identically.
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        let data: Vec<u8> = (0..300).map(|i| (i % 97) as u8).collect();
        for chunk in data.chunks(11) {
            w.append(chunk).unwrap();
        }
        let h = w.finish().unwrap();
        assert_eq!(read_list_to_vec(&p, h).unwrap(), data);
    }

    #[test]
    fn overwrite_in_place() {
        let p = mem_pager();
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        let data: Vec<u8> = (0..200u8).collect();
        w.append(&data).unwrap();
        let h = w.finish().unwrap();

        // Overwrite a range crossing the first page boundary (cap = 54).
        overwrite_in_list(&p, h, 50, &[0xAA; 8]).unwrap();
        let mut r = ListReader::open(Arc::clone(&p), h).unwrap();
        let mut out = vec![0u8; 200];
        r.read_exact(&mut out).unwrap();
        for (i, &b) in out.iter().enumerate() {
            if (50..58).contains(&i) {
                assert_eq!(b, 0xAA, "at {i}");
            } else {
                assert_eq!(b, i as u8, "at {i}");
            }
        }
        // Beyond-length overwrite is rejected.
        assert!(overwrite_in_list(&p, h, 199, &[0, 0]).is_err());
        // Zero-length overwrite is a no-op.
        overwrite_in_list(&p, h, 0, &[]).unwrap();
    }

    #[test]
    fn corrupt_used_field_is_error_not_panic() {
        let p = mem_pager(); // 64 B pages, 54 B data capacity
        let data: Vec<u8> = (0..200u8).collect();
        let h = write_contiguous_list(&p, &data).unwrap();
        // Second page claims more used bytes than a page can hold — every
        // path that trusts it must error, not slice out of bounds.
        let second = PageId(h.head.0 + 1);
        p.update_page(second, |pg| set_page_used(pg, 60_000))
            .unwrap();
        let mut r = ListReader::open(Arc::clone(&p), h).unwrap();
        let mut out = vec![0u8; 200];
        assert!(matches!(
            r.read_exact(&mut out),
            Err(StorageError::Corrupt(_))
        ));
        assert!(matches!(
            overwrite_in_list(&p, h, 100, &[0xAA; 4]),
            Err(StorageError::Corrupt(_))
        ));
        // Head/tail corruption hits open and append_to.
        p.update_page(h.head, |pg| set_page_used(pg, u16::MAX as usize))
            .unwrap();
        assert!(matches!(
            ListReader::open(Arc::clone(&p), h),
            Err(StorageError::Corrupt(_))
        ));
        p.update_page(h.tail, |pg| set_page_used(pg, 55)).unwrap();
        assert!(matches!(
            ListWriter::append_to(Arc::clone(&p), h),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn u16_u64_f64_roundtrip() {
        let p = mem_pager();
        let mut w = ListWriter::create(Arc::clone(&p)).unwrap();
        w.append_u16(65535).unwrap();
        w.append_u64(u64::MAX - 1).unwrap();
        w.append(&std::f64::consts::PI.to_bits().to_le_bytes())
            .unwrap();
        let h = w.finish().unwrap();
        let mut r = ListReader::open(p, h).unwrap();
        assert_eq!(r.read_u16().unwrap(), 65535);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.read_f64().unwrap(), std::f64::consts::PI);
    }
}
