//! Pinned results of a coalesced batch read.
//!
//! [`Pager::read_batch`](crate::Pager::read_batch) turns an arbitrary set of
//! page ids into page-ordered, run-coalesced disk I/O and hands back a
//! [`PinnedPages`]: an id-sorted set of page snapshots that stay resident
//! for as long as the value lives, independent of buffer-pool evictions.
//! Multiple decodes touching the same page therefore cost one read, which
//! is exactly what the batched refinement phase of the query plan needs.

use crate::cache::PageRef;
use crate::page::PageId;

/// An id-sorted set of pinned page snapshots returned by a batch read.
///
/// Pins are plain `Arc` clones of the cached page contents: holding them
/// keeps the bytes alive (a later eviction or overwrite cannot invalidate
/// them) but does not block writers — the pager's pages are immutable
/// snapshots, so a pinned page simply reflects the file at read time.
#[derive(Debug, Default)]
pub struct PinnedPages {
    /// Sorted by page id, deduplicated.
    pages: Vec<(PageId, PageRef)>,
}

impl PinnedPages {
    /// An empty pin set (nothing resident).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from an id-sorted, deduplicated vector.
    pub(crate) fn from_sorted(pages: Vec<(PageId, PageRef)>) -> Self {
        debug_assert!(pages.windows(2).all(|w| w[0].0 < w[1].0));
        Self { pages }
    }

    /// Number of pinned pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if no pages are pinned.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Look up a pinned page by id.
    pub fn get(&self, id: PageId) -> Option<&PageRef> {
        self.pages
            .binary_search_by_key(&id, |&(pid, _)| pid)
            .ok()
            .map(|i| &self.pages[i].1)
    }

    /// True if `id` is pinned.
    pub fn contains(&self, id: PageId) -> bool {
        self.get(id).is_some()
    }

    /// Iterate over the pinned `(id, page)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &PageRef)> {
        self.pages.iter().map(|(id, p)| (*id, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lookup_by_binary_search() {
        let mk = |b: u8| Arc::new(vec![b; 4]);
        let p = PinnedPages::from_sorted(vec![
            (PageId(2), mk(2)),
            (PageId(5), mk(5)),
            (PageId(9), mk(9)),
        ]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.get(PageId(5)).unwrap()[0], 5);
        assert!(p.get(PageId(4)).is_none());
        assert!(p.contains(PageId(9)));
        assert_eq!(p.iter().count(), 3);
        assert!(PinnedPages::empty().is_empty());
    }
}
