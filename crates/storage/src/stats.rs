//! I/O accounting.
//!
//! The iVA-file evaluation (Sec. V of the paper) is driven by two physical
//! quantities: bytes moved by *sequential* scans of index structures, and
//! *random* accesses into the table file. Every disk touch in this crate is
//! classified into one of those buckets so experiments can report exact
//! counts and feed them to the [`DiskModel`](crate::disk_model::DiskModel).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters. Cheap to clone (an [`Arc`] inside).
#[derive(Debug, Default, Clone)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    /// Physical page reads that hit the disk (cache misses).
    disk_page_reads: AtomicU64,
    /// Physical page writes.
    disk_page_writes: AtomicU64,
    /// Page requests served from the buffer pool.
    cache_hits: AtomicU64,
    /// Page requests that had to go to disk.
    cache_misses: AtomicU64,
    /// Disk reads that were *not* at/after the previously read position,
    /// i.e. required a seek.
    random_seeks: AtomicU64,
    /// Bytes read from disk sequentially (page following the previous one).
    seq_bytes_read: AtomicU64,
    /// Bytes read from disk after a seek.
    random_bytes_read: AtomicU64,
    /// Bytes written to disk.
    bytes_written: AtomicU64,
    /// List-data bytes delivered to list readers (element payload only,
    /// no page headers or padding). For a compressed list this counts the
    /// stored (compressed) bytes the scan actually consumed.
    logical_list_bytes: AtomicU64,
    /// Page-granular bytes entered by list readers: one full page size per
    /// page a reader stepped into, padding included.
    physical_list_bytes: AtomicU64,
}

/// A point-in-time copy of the counters; subtract two to get a delta.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Physical page reads that hit the disk (cache misses).
    pub disk_page_reads: u64,
    /// Physical page writes.
    pub disk_page_writes: u64,
    /// Page requests served from the buffer pool.
    pub cache_hits: u64,
    /// Page requests that went to disk.
    pub cache_misses: u64,
    /// Disk reads that required a seek.
    pub random_seeks: u64,
    /// Bytes read from disk sequentially.
    pub seq_bytes_read: u64,
    /// Bytes read from disk after a seek.
    pub random_bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
    /// List-data bytes delivered to list readers (no padding).
    pub logical_list_bytes: u64,
    /// Page-granular bytes entered by list readers (padding included).
    pub physical_list_bytes: u64,
}

impl IoStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_cache_hit(&self) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_miss(&self) {
        self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_disk_read(&self, bytes: u64, sequential: bool) {
        self.inner.disk_page_reads.fetch_add(1, Ordering::Relaxed);
        if sequential {
            self.inner
                .seq_bytes_read
                .fetch_add(bytes, Ordering::Relaxed);
        } else {
            self.inner.random_seeks.fetch_add(1, Ordering::Relaxed);
            self.inner
                .random_bytes_read
                .fetch_add(bytes, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_disk_write(&self, bytes: u64) {
        self.inner.disk_page_writes.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_list_logical(&self, bytes: u64) {
        self.inner
            .logical_list_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_list_physical(&self, bytes: u64) {
        self.inner
            .physical_list_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        let c = &*self.inner;
        IoSnapshot {
            disk_page_reads: c.disk_page_reads.load(Ordering::Relaxed),
            disk_page_writes: c.disk_page_writes.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            random_seeks: c.random_seeks.load(Ordering::Relaxed),
            seq_bytes_read: c.seq_bytes_read.load(Ordering::Relaxed),
            random_bytes_read: c.random_bytes_read.load(Ordering::Relaxed),
            bytes_written: c.bytes_written.load(Ordering::Relaxed),
            logical_list_bytes: c.logical_list_bytes.load(Ordering::Relaxed),
            physical_list_bytes: c.physical_list_bytes.load(Ordering::Relaxed),
        }
    }
}

impl IoSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            disk_page_reads: self.disk_page_reads.saturating_sub(earlier.disk_page_reads),
            disk_page_writes: self
                .disk_page_writes
                .saturating_sub(earlier.disk_page_writes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            random_seeks: self.random_seeks.saturating_sub(earlier.random_seeks),
            seq_bytes_read: self.seq_bytes_read.saturating_sub(earlier.seq_bytes_read),
            random_bytes_read: self
                .random_bytes_read
                .saturating_sub(earlier.random_bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            logical_list_bytes: self
                .logical_list_bytes
                .saturating_sub(earlier.logical_list_bytes),
            physical_list_bytes: self
                .physical_list_bytes
                .saturating_sub(earlier.physical_list_bytes),
        }
    }

    /// Total bytes read from disk (sequential + random).
    pub fn bytes_read(&self) -> u64 {
        self.seq_bytes_read + self.random_bytes_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let s = IoStats::new();
        s.record_cache_hit();
        s.record_cache_miss();
        s.record_disk_read(4096, true);
        let mid = s.snapshot();
        s.record_disk_read(4096, false);
        s.record_disk_write(4096);
        let end = s.snapshot();

        assert_eq!(mid.cache_hits, 1);
        assert_eq!(mid.seq_bytes_read, 4096);
        assert_eq!(mid.random_seeks, 0);

        let d = end.since(&mid);
        assert_eq!(d.disk_page_reads, 1);
        assert_eq!(d.random_seeks, 1);
        assert_eq!(d.random_bytes_read, 4096);
        assert_eq!(d.bytes_written, 4096);
        assert_eq!(d.cache_hits, 0);
        assert_eq!(end.bytes_read(), 8192);
    }

    #[test]
    fn list_byte_counters_accumulate_and_diff() {
        let s = IoStats::new();
        s.record_list_logical(100);
        s.record_list_physical(4096);
        let mid = s.snapshot();
        s.record_list_logical(28);
        s.record_list_physical(4096);
        let end = s.snapshot();
        assert_eq!(mid.logical_list_bytes, 100);
        assert_eq!(mid.physical_list_bytes, 4096);
        let d = end.since(&mid);
        assert_eq!(d.logical_list_bytes, 28);
        assert_eq!(d.physical_list_bytes, 4096);
    }

    #[test]
    fn clone_shares_counters() {
        let s = IoStats::new();
        let s2 = s.clone();
        s2.record_disk_write(10);
        assert_eq!(s.snapshot().bytes_written, 10);
    }
}
