//! lint:scope(no-panic-decode)
//! Checked little-endian field readers for decode paths.
//!
//! Decode code must never panic on malformed bytes — a corrupt file is an
//! [`StorageError::Corrupt`](crate::StorageError)-class error, not a crash
//! (the `no-panic-decode` lint in `cargo xtask analyze` enforces this).
//! These helpers replace the `buf[o..o + 8].try_into().unwrap()` idiom:
//! they return `None` past the end of the buffer and cannot panic, so a
//! decode function is total by construction instead of by a length check
//! the next edit might invalidate.

/// Read a little-endian `u16` at `off`; `None` if out of bounds.
#[inline]
pub fn le_u16(buf: &[u8], off: usize) -> Option<u16> {
    let b = buf.get(off..off.checked_add(2)?)?;
    Some(u16::from_le_bytes(b.try_into().ok()?))
}

/// Read a little-endian `u32` at `off`; `None` if out of bounds.
#[inline]
pub fn le_u32(buf: &[u8], off: usize) -> Option<u32> {
    let b = buf.get(off..off.checked_add(4)?)?;
    Some(u32::from_le_bytes(b.try_into().ok()?))
}

/// Read a little-endian `u64` at `off`; `None` if out of bounds.
#[inline]
pub fn le_u64(buf: &[u8], off: usize) -> Option<u64> {
    let b = buf.get(off..off.checked_add(8)?)?;
    Some(u64::from_le_bytes(b.try_into().ok()?))
}

/// Read a little-endian `f64` at `off`; `None` if out of bounds.
#[inline]
pub fn le_f64(buf: &[u8], off: usize) -> Option<f64> {
    Some(f64::from_bits(le_u64(buf, off)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bounds_reads_match_manual_decode() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0xBEEFu16.to_le_bytes());
        buf.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        buf.extend_from_slice(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        buf.extend_from_slice(&2.5f64.to_le_bytes());
        assert_eq!(le_u16(&buf, 0), Some(0xBEEF));
        assert_eq!(le_u32(&buf, 2), Some(0xDEAD_BEEF));
        assert_eq!(le_u64(&buf, 6), Some(0x0123_4567_89AB_CDEF));
        assert_eq!(le_f64(&buf, 14), Some(2.5));
    }

    #[test]
    fn out_of_bounds_is_none_not_panic() {
        let buf = [0u8; 8];
        assert_eq!(le_u16(&buf, 7), None);
        assert_eq!(le_u32(&buf, 5), None);
        assert_eq!(le_u64(&buf, 1), None);
        assert_eq!(le_u64(&buf, usize::MAX), None); // offset overflow
        assert_eq!(le_u64(&[], 0), None);
    }
}
