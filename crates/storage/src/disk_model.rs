//! Analytical disk cost model.
//!
//! The paper's measurements were taken on a 2009 desktop (160 GB spinning
//! disk). On modern hardware, datasets of the evaluated size fit in page
//! cache and random access is orders of magnitude cheaper, which would
//! flatten the very effect the iVA-file exploits. To reproduce the *shape*
//! of the published curves we convert exact I/O counters into modeled time
//! under a parametrized rotating-disk cost model, alongside measured
//! wall-clock time.

use crate::stats::IoSnapshot;

/// Linear seek + transfer disk model.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Average cost of a random access (seek + rotational latency), ms.
    pub seek_ms: f64,
    /// Sequential transfer rate, MB/s.
    pub transfer_mb_per_s: f64,
}

impl DiskModel {
    /// A 2009-era 7200 rpm desktop disk: ~8 ms average access, ~80 MB/s
    /// sustained transfer. Matches the hardware class in Sec. V-A.
    pub fn hdd_2009() -> Self {
        Self {
            seek_ms: 8.0,
            transfer_mb_per_s: 80.0,
        }
    }

    /// A modern SATA SSD, for sensitivity analysis.
    pub fn ssd() -> Self {
        Self {
            seek_ms: 0.08,
            transfer_mb_per_s: 500.0,
        }
    }

    /// Modeled I/O time in milliseconds for a counter delta.
    ///
    /// Every random read pays a seek plus its transfer; sequential reads and
    /// all writes pay transfer only (writes during the measured query phase
    /// are negligible and buffered in practice).
    pub fn modeled_ms(&self, io: &IoSnapshot) -> f64 {
        let bytes = (io.seq_bytes_read + io.random_bytes_read + io.bytes_written) as f64;
        let transfer_ms = bytes / (self.transfer_mb_per_s * 1024.0 * 1024.0) * 1000.0;
        io.random_seeks as f64 * self.seek_ms + transfer_ms
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::hdd_2009()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeks_dominate_small_random_io() {
        let m = DiskModel::hdd_2009();
        let io = IoSnapshot {
            random_seeks: 100,
            random_bytes_read: 100 * 4096,
            ..Default::default()
        };
        let ms = m.modeled_ms(&io);
        assert!(ms > 800.0 && ms < 810.0, "{ms}");
    }

    #[test]
    fn sequential_scan_costs_transfer_only() {
        let m = DiskModel::hdd_2009();
        let io = IoSnapshot {
            seq_bytes_read: 80 * 1024 * 1024,
            ..Default::default()
        };
        let ms = m.modeled_ms(&io);
        assert!((ms - 1000.0).abs() < 1.0, "{ms}");
    }

    #[test]
    fn coalesced_run_cheaper_than_scattered_pages() {
        // What batched refinement buys under the model: a 3-page adjacent
        // run (1 seek + 3 pages of transfer) vs. three independent random
        // page reads (3 seeks + 3 pages of transfer).
        let m = DiskModel::hdd_2009();
        let run = IoSnapshot {
            disk_page_reads: 3,
            random_seeks: 1,
            random_bytes_read: 4096,
            seq_bytes_read: 2 * 4096,
            ..Default::default()
        };
        let scattered = IoSnapshot {
            disk_page_reads: 3,
            random_seeks: 3,
            random_bytes_read: 3 * 4096,
            ..Default::default()
        };
        let (run_ms, scat_ms) = (m.modeled_ms(&run), m.modeled_ms(&scattered));
        assert!((scat_ms - run_ms - 2.0 * m.seek_ms).abs() < 1e-9);
    }

    #[test]
    fn ssd_much_cheaper_seeks() {
        let io = IoSnapshot {
            random_seeks: 1000,
            ..Default::default()
        };
        assert!(DiskModel::ssd().modeled_ms(&io) < DiskModel::hdd_2009().modeled_ms(&io) / 50.0);
    }
}
