//! Append-only byte log over a paged file, with crash-consistent commits.
//!
//! The table file of the paper "adopts the row-wise storage structure" with
//! tuples located by a byte pointer (`ptr` in the tuple list) and new tuples
//! "appended to the end of the table file" (Sec. IV-B). A [`ByteLog`] is
//! exactly that: logical byte addresses over physically contiguous pages,
//! supporting fast sequential append/scan and random `read_at`.
//!
//! # Crash consistency
//!
//! The log's durable state lives in two files: the data file (page frames,
//! see [`BlockFile`](crate::BlockFile)) and a sidecar **commit record**
//! (`<path>.meta`, see [`commit`](crate::commit)) holding the committed
//! length, the 32 user-header bytes, a byte-exact shadow of the committed
//! tail page, and a redo journal of in-place page rewrites. [`ByteLog::flush`]
//! is the commit:
//!
//! 1. write the tail page, fsync the data file — everything the new record
//!    will point at is durable *first*;
//! 2. atomically replace the commit record (write-new → fsync → rename) —
//!    **this rename is the commit point**;
//! 3. apply buffered in-place overwrites ([`ByteLog::write_at`] buffers
//!    them rather than touching committed pages) and fsync again — safe,
//!    because step 2 journaled their full post-images.
//!
//! [`ByteLog::open`] replays that contract: it reads the committed record,
//! truncates the data file to the committed page count (dropping torn or
//! uncommitted appends), re-applies the journal, and restores the tail
//! page from its shadow. A crash before step 2 recovers the previous
//! commit; after it, the new one — never a mix, and every recovered page
//! has a valid checksum.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::batch::PinnedPages;
use crate::commit::{read_commit_record, write_commit_record};
use crate::error::{Result, StorageError};

use crate::page::PageId;
use crate::pager::{Pager, PagerOptions};
use crate::stats::IoStats;
use crate::vfs::{RealVfs, Vfs};

/// Bytes of header space reserved for the owning layer.
pub const USER_HEADER_LEN: usize = 32;

/// Fixed prefix of the commit-record payload:
/// `len (8) | user header (32) | tail_len (4) | journal_count (4)`.
const PAYLOAD_FIXED: usize = 8 + USER_HEADER_LEN + 4 + 4;

/// The sidecar commit-record path for a byte log at `path`.
pub fn sidecar_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".meta");
    PathBuf::from(name)
}

/// Append-only byte log with random read access and atomic commits.
pub struct ByteLog {
    vfs: Arc<dyn Vfs>,
    meta_path: PathBuf,
    pager: Arc<Pager>,
    len: u64,
    /// Length as of the last successful [`ByteLog::flush`].
    committed_len: u64,
    tail_page: PageId,
    tail_buf: Vec<u8>,
    tail_dirty: bool,
    user_header: [u8; USER_HEADER_LEN],
    header_dirty: bool,
    /// Post-images of committed pages mutated by [`ByteLog::write_at`]
    /// since the last flush. Readers consult this first; the pages on disk
    /// are only rewritten *after* the images are journaled in the commit
    /// record, so a torn rewrite is always repairable.
    overlay: BTreeMap<u64, Vec<u8>>,
}

impl ByteLog {
    /// Create a new log backed by a fresh disk file.
    pub fn create(path: &Path, opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        Self::create_with_vfs(Arc::new(RealVfs), path, opts, stats)
    }

    /// Open an existing disk-backed log, running crash recovery.
    pub fn open(path: &Path, opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        Self::open_with_vfs(Arc::new(RealVfs), path, opts, stats)
    }

    /// Create a new log in memory. With `IVA_VFS=fault` the backing is a
    /// pass-through [`crate::FaultVfs`] (see [`crate::BlockFile::create_mem`]).
    pub fn create_mem(opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        Self::create_with_vfs(
            crate::vfs::default_mem_vfs(),
            Path::new("mem.log"),
            opts,
            stats,
        )
    }

    /// The [`Vfs`] this log lives on (shared with its commit sidecar).
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.vfs)
    }

    /// Create a new log through an explicit [`Vfs`].
    pub fn create_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        opts: &PagerOptions,
        stats: IoStats,
    ) -> Result<Self> {
        let pager = Pager::create_with_vfs(vfs.as_ref(), path, opts, stats)?;
        let tail_page = pager.allocate_page()?; // first data page
        debug_assert_eq!(tail_page, PageId(0));
        let tail_buf = vec![0u8; pager.page_size()];
        let mut log = Self {
            vfs,
            meta_path: sidecar_path(path),
            pager,
            len: 0,
            committed_len: 0,
            tail_page,
            tail_buf,
            tail_dirty: false,
            user_header: [0; USER_HEADER_LEN],
            header_dirty: true,
            overlay: BTreeMap::new(),
        };
        log.flush()?;
        Ok(log)
    }

    /// Open an existing log through an explicit [`Vfs`], running crash
    /// recovery: truncate uncommitted/torn appends, re-apply the redo
    /// journal, restore the tail page from its committed shadow.
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        opts: &PagerOptions,
        stats: IoStats,
    ) -> Result<Self> {
        let meta_path = sidecar_path(path);
        let payload = read_commit_record(vfs.as_ref(), &meta_path)?;
        let (len, user_header, tail_image, journal) = parse_payload(&payload, opts.page_size)?;

        let (pager, _torn) = Pager::open_recovering(vfs.as_ref(), path, opts, stats)?;
        let page_size = pager.page_size() as u64;
        let tail_page = PageId(len / page_size);
        let needed = tail_page.0 + 1;
        if pager.num_pages() < needed {
            return Err(StorageError::Corrupt(format!(
                "byte log committed length {len} needs {needed} pages, data file has {}",
                pager.num_pages()
            )));
        }
        // Drop torn and uncommitted appended pages.
        pager.truncate_pages(needed)?;
        // Redo journaled in-place rewrites (idempotent: these are full
        // post-images of pages within the committed region).
        for (id, image) in journal {
            if id >= needed {
                return Err(StorageError::Corrupt(format!(
                    "commit-record journal references page {id} beyond committed {needed} pages"
                )));
            }
            if id != tail_page.0 {
                pager.write_page(PageId(id), image)?;
            }
        }
        // Restore the committed tail page byte-for-byte from its shadow;
        // this also repairs a tail frame torn by a post-commit append.
        let mut tail_buf = vec![0u8; page_size as usize];
        tail_buf
            .get_mut(..tail_image.len())
            .ok_or_else(|| geometry("recovered tail image longer than a page"))?
            .copy_from_slice(&tail_image);
        pager.write_page(tail_page, tail_buf.clone())?;
        pager.sync()?;

        Ok(Self {
            vfs,
            meta_path,
            pager,
            len,
            committed_len: len,
            tail_page,
            tail_buf,
            tail_dirty: false,
            user_header,
            header_dirty: false,
            overlay: BTreeMap::new(),
        })
    }

    /// Logical length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Length as of the last successful flush — what a crash right now
    /// would recover to.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The pager (for stats / size queries).
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Physical size in bytes (pages × page size).
    pub fn size_bytes(&self) -> u64 {
        self.pager.size_bytes()
    }

    /// The 32 user-header bytes.
    pub fn user_header(&self) -> &[u8; USER_HEADER_LEN] {
        &self.user_header
    }

    /// Overwrite the user-header bytes (persisted on the next flush).
    pub fn set_user_header(&mut self, bytes: [u8; USER_HEADER_LEN]) {
        self.user_header = bytes;
        self.header_dirty = true;
    }

    /// Append bytes, returning the logical start offset. The bytes are
    /// durable (and survive a crash) only once [`ByteLog::flush`] returns.
    pub fn append(&mut self, mut data: &[u8]) -> Result<u64> {
        let start = self.len;
        let page_size = self.pager.page_size();
        while !data.is_empty() {
            let in_page = (self.len % page_size as u64) as usize;
            let n = data.len().min(page_size - in_page);
            let (chunk, rest) = data
                .split_at_checked(n)
                .ok_or_else(|| geometry("append chunk larger than remaining input"))?;
            self.tail_buf
                .get_mut(in_page..in_page + n)
                .ok_or_else(|| geometry("append range beyond the tail page"))?
                .copy_from_slice(chunk);
            self.tail_dirty = true;
            self.len += n as u64;
            data = rest;
            if self.len.is_multiple_of(page_size as u64) {
                // Page filled: write it out and move to a fresh page. If
                // this page holds committed bytes, a torn write here is
                // repaired at recovery from the commit record's tail
                // shadow.
                self.pager.write_page(
                    self.tail_page,
                    std::mem::replace(&mut self.tail_buf, vec![0u8; page_size]),
                )?;
                self.tail_dirty = false;
                self.tail_page = self.pager.allocate_page()?;
            }
        }
        self.header_dirty = true;
        Ok(start)
    }

    /// Random read of `buf.len()` bytes at logical offset `pos`.
    pub fn read_at(&self, pos: u64, buf: &mut [u8]) -> Result<()> {
        self.read_at_impl(pos, buf, None)
    }

    /// Like [`ByteLog::read_at`], but pages present in `pinned` are served
    /// from the pins without touching the pager. The tail page is still
    /// served from the in-memory tail buffer, buffered overwrites from the
    /// overlay, and pages missing from `pinned` fall back to ordinary
    /// cached reads, so the call is correct for any pin set.
    pub fn read_at_pinned(&self, pos: u64, buf: &mut [u8], pinned: &PinnedPages) -> Result<()> {
        self.read_at_impl(pos, buf, Some(pinned))
    }

    fn read_at_impl(&self, pos: u64, buf: &mut [u8], pinned: Option<&PinnedPages>) -> Result<()> {
        if pos + buf.len() as u64 > self.len {
            return Err(StorageError::Corrupt(format!(
                "byte-log read [{pos}, +{}) beyond length {}",
                buf.len(),
                self.len
            )));
        }
        let page_size = self.pager.page_size() as u64;
        let mut filled = 0usize;
        let mut pos = pos;
        while filled < buf.len() {
            let page = PageId(pos / page_size);
            let in_page = (pos % page_size) as usize;
            let n = (buf.len() - filled).min(page_size as usize - in_page);
            let src_err = || geometry("read source range beyond its page");
            let dst = buf
                .get_mut(filled..filled + n)
                .ok_or_else(|| geometry("read destination range beyond the buffer"))?;
            if page == self.tail_page {
                dst.copy_from_slice(
                    self.tail_buf
                        .get(in_page..in_page + n)
                        .ok_or_else(src_err)?,
                );
            } else if let Some(img) = self.overlay.get(&page.0) {
                dst.copy_from_slice(img.get(in_page..in_page + n).ok_or_else(src_err)?);
            } else if let Some(p) = pinned.and_then(|pins| pins.get(page)) {
                dst.copy_from_slice(p.get(in_page..in_page + n).ok_or_else(src_err)?);
            } else {
                let p = self.pager.read_page(page)?;
                dst.copy_from_slice(p.get(in_page..in_page + n).ok_or_else(src_err)?);
            }
            filled += n;
            pos += n as u64;
        }
        Ok(())
    }

    /// Append to `out` the ids of every disk page the logical byte range
    /// `[pos, pos + len)` touches, **excluding** the tail page and pages
    /// with buffered overwrites (whose authoritative copies live in memory
    /// and must never be fetched from disk). The range is not
    /// bounds-checked here; the eventual read is.
    pub fn pages_spanning(&self, pos: u64, len: usize, out: &mut Vec<PageId>) {
        if len == 0 {
            return;
        }
        let page_size = self.pager.page_size() as u64;
        let first = pos / page_size;
        let last = (pos + len as u64 - 1) / page_size;
        for p in first..=last {
            if p != self.tail_page.0 && !self.overlay.contains_key(&p) {
                out.push(PageId(p));
            }
        }
    }

    /// Batch-read the given pages (sorted, deduplicated, adjacent pages
    /// coalesced into sequential runs) and return them pinned for use with
    /// [`ByteLog::read_at_pinned`]. Collect the ids with
    /// [`ByteLog::pages_spanning`].
    pub fn pin_pages(&self, ids: &[PageId]) -> Result<PinnedPages> {
        self.pager.read_batch(ids)
    }

    /// Random overwrite of already-appended bytes (used for in-place flag
    /// updates such as tombstones; cannot extend the log). Buffered in
    /// memory and committed — journaled, then applied — by the next
    /// [`ByteLog::flush`].
    pub fn write_at(&mut self, pos: u64, data: &[u8]) -> Result<()> {
        if pos + data.len() as u64 > self.len {
            return Err(StorageError::Corrupt(format!(
                "byte-log write [{pos}, +{}) beyond length {}",
                data.len(),
                self.len
            )));
        }
        let page_size = self.pager.page_size() as u64;
        let mut written = 0usize;
        let mut pos = pos;
        while written < data.len() {
            let page = PageId(pos / page_size);
            let in_page = (pos % page_size) as usize;
            let n = (data.len() - written).min(page_size as usize - in_page);
            let src = data
                .get(written..written + n)
                .ok_or_else(|| geometry("overwrite chunk larger than remaining input"))?;
            if page == self.tail_page {
                self.tail_buf
                    .get_mut(in_page..in_page + n)
                    .ok_or_else(|| geometry("overwrite range beyond the tail page"))?
                    .copy_from_slice(src);
                self.tail_dirty = true;
            } else {
                let img = match self.overlay.entry(page.0) {
                    std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(self.pager.read_page(page)?.as_ref().clone())
                    }
                };
                img.get_mut(in_page..in_page + n)
                    .ok_or_else(|| geometry("overwrite range beyond its page image"))?
                    .copy_from_slice(src);
                self.header_dirty = true;
            }
            written += n;
            pos += n as u64;
        }
        Ok(())
    }

    /// Commit: make everything appended or overwritten so far durable and
    /// recoverable. See the module docs for the three-step protocol. On
    /// `Ok`, the current state survives any crash; on `Err`, the previous
    /// commit does.
    pub fn flush(&mut self) -> Result<()> {
        if !self.tail_dirty
            && !self.header_dirty
            && self.overlay.is_empty()
            && self.len == self.committed_len
        {
            return Ok(());
        }
        // Step 1: data first. Appended full pages were written when they
        // filled; add the tail page and make it all durable.
        if self.tail_dirty {
            self.pager
                .write_page(self.tail_page, self.tail_buf.clone())?;
            self.tail_dirty = false;
        }
        self.pager.sync()?;

        // Step 2: the commit point — atomically replace the commit record.
        let tail_len = (self.len % self.pager.page_size() as u64) as usize;
        let mut payload =
            Vec::with_capacity(PAYLOAD_FIXED + tail_len + self.overlay.len() * (8 + 16));
        payload.extend_from_slice(&self.len.to_le_bytes());
        payload.extend_from_slice(&self.user_header);
        payload.extend_from_slice(&(tail_len as u32).to_le_bytes());
        payload.extend_from_slice(&(self.overlay.len() as u32).to_le_bytes());
        payload.extend_from_slice(
            self.tail_buf
                .get(..tail_len)
                .ok_or_else(|| geometry("tail length beyond the tail page"))?,
        );
        for (&id, image) in &self.overlay {
            payload.extend_from_slice(&id.to_le_bytes());
            payload.extend_from_slice(image);
        }
        write_commit_record(self.vfs.as_ref(), &self.meta_path, &payload)?;
        self.committed_len = self.len;
        self.header_dirty = false;

        // Step 3: apply the journaled in-place rewrites. A crash from here
        // on is repaired by replaying the journal committed in step 2.
        if !self.overlay.is_empty() {
            for (&id, image) in &self.overlay {
                self.pager.write_page(PageId(id), image.clone())?;
            }
            self.overlay.clear();
            self.pager.sync()?;
        }
        Ok(())
    }
}

/// Internal page-geometry invariant surfaced as an error instead of a
/// panic. The offset arithmetic in the read/write loops keeps every
/// range in bounds, so these paths are unreachable in practice — but
/// the byte log sits under `no-panic-decode` scopes, so even the
/// "impossible" branches must stay total.
fn geometry(what: &str) -> StorageError {
    StorageError::Corrupt(format!("byte-log internal geometry error: {what}"))
}

/// Parse a commit-record payload into
/// `(len, user_header, tail_image, journal)`.
#[allow(clippy::type_complexity)]
fn parse_payload(
    payload: &[u8],
    page_size: usize,
) -> Result<(u64, [u8; USER_HEADER_LEN], Vec<u8>, Vec<(u64, Vec<u8>)>)> {
    let corrupt = |msg: &str| StorageError::Corrupt(format!("byte-log commit record: {msg}"));
    // The payload comes straight off disk; every field read is total —
    // a record of any length yields `Corrupt`, never a panic.
    let le8 = |b: Option<&[u8]>| {
        b.and_then(|b| <[u8; 8]>::try_from(b).ok())
            .map(u64::from_le_bytes)
    };
    let le4 = |b: Option<&[u8]>| {
        b.and_then(|b| <[u8; 4]>::try_from(b).ok())
            .map(|b| u32::from_le_bytes(b) as usize)
    };
    let short = || corrupt("shorter than fixed header");
    let len = le8(payload.get(0..8)).ok_or_else(short)?;
    let user_header: [u8; USER_HEADER_LEN] = payload
        .get(8..8 + USER_HEADER_LEN)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(short)?;
    let tail_len = le4(payload.get(40..44)).ok_or_else(short)?;
    let journal_count = le4(payload.get(44..48)).ok_or_else(short)?;
    if tail_len >= page_size {
        return Err(corrupt("tail image longer than a page"));
    }
    if tail_len != (len % page_size as u64) as usize {
        return Err(corrupt(
            "tail image length inconsistent with committed length",
        ));
    }
    let mut off = PAYLOAD_FIXED;
    let tail_image = payload
        .get(off..off + tail_len)
        .ok_or_else(|| corrupt("truncated tail image"))?
        .to_vec();
    off += tail_len;
    // `journal_count` is untrusted: cap the preallocation, let the loop
    // fail on the first entry the payload cannot actually back.
    let mut journal = Vec::with_capacity(journal_count.min(1024));
    for _ in 0..journal_count {
        let entry_short = || corrupt("truncated journal entry");
        let id = le8(payload.get(off..off + 8)).ok_or_else(entry_short)?;
        off += 8;
        let image = payload
            .get(off..off + page_size)
            .ok_or_else(entry_short)?
            .to_vec();
        off += page_size;
        journal.push((id, image));
    }
    if off != payload.len() {
        return Err(corrupt("trailing bytes after journal"));
    }
    Ok((len, user_header, tail_image, journal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use crate::vfs::{write_vec, RealVfs, Vfs};

    fn mem_log() -> ByteLog {
        let opts = PagerOptions {
            page_size: 128,
            cache_bytes: 128 * 8,
        };
        ByteLog::create_mem(&opts, IoStats::new()).unwrap()
    }

    #[test]
    fn append_and_read_within_page() {
        let mut log = mem_log();
        let p1 = log.append(b"hello ").unwrap();
        let p2 = log.append(b"world").unwrap();
        assert_eq!(p1, 0);
        assert_eq!(p2, 6);
        let mut buf = vec![0u8; 11];
        log.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn append_spanning_pages() {
        let mut log = mem_log();
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut offsets = Vec::new();
        for chunk in data.chunks(37) {
            offsets.push(log.append(chunk).unwrap());
        }
        assert_eq!(log.len(), 1000);
        // Whole-log read.
        let mut buf = vec![0u8; 1000];
        log.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, data);
        // Random chunk reads.
        for (i, chunk) in data.chunks(37).enumerate() {
            let mut b = vec![0u8; chunk.len()];
            log.read_at(offsets[i], &mut b).unwrap();
            assert_eq!(b, chunk);
        }
    }

    #[test]
    fn read_past_end_fails() {
        let mut log = mem_log();
        log.append(b"abc").unwrap();
        let mut buf = [0u8; 4];
        assert!(log.read_at(0, &mut buf).is_err());
        assert!(log.read_at(3, &mut [0u8; 1]).is_err());
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("iva-log-{}", std::process::id()));
        RealVfs.create_dir_all(&dir).unwrap();
        let path = dir.join("log.db");
        let opts = PagerOptions {
            page_size: 128,
            cache_bytes: 1024,
        };
        let data: Vec<u8> = (0..500u16).map(|i| (i % 256) as u8).collect();
        {
            let mut log = ByteLog::create(&path, &opts, IoStats::new()).unwrap();
            log.append(&data).unwrap();
            log.set_user_header([7u8; USER_HEADER_LEN]);
            log.flush().unwrap();
        }
        {
            let mut log = ByteLog::open(&path, &opts, IoStats::new()).unwrap();
            assert_eq!(log.len(), 500);
            assert_eq!(log.user_header(), &[7u8; USER_HEADER_LEN]);
            let mut buf = vec![0u8; 500];
            log.read_at(0, &mut buf).unwrap();
            assert_eq!(buf, data);
            // Appending after reopen lands after existing data.
            let off = log.append(b"tail").unwrap();
            assert_eq!(off, 500);
            log.flush().unwrap();
        }
        let log = ByteLog::open(&path, &opts, IoStats::new()).unwrap();
        assert_eq!(log.len(), 504);
        let mut buf = vec![0u8; 4];
        log.read_at(500, &mut buf).unwrap();
        assert_eq!(&buf, b"tail");
        RealVfs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_tail_is_readable() {
        let mut log = mem_log();
        log.append(b"not yet flushed").unwrap();
        let mut buf = vec![0u8; 15];
        log.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"not yet flushed");
    }

    #[test]
    fn exact_page_boundary_append() {
        let mut log = mem_log();
        // Exactly one page of data.
        log.append(&[9u8; 128]).unwrap();
        assert_eq!(log.len(), 128);
        log.append(b"x").unwrap();
        let mut b = [0u8; 1];
        log.read_at(128, &mut b).unwrap();
        assert_eq!(b[0], b'x');
        let mut b = [0u8; 1];
        log.read_at(127, &mut b).unwrap();
        assert_eq!(b[0], 9);
    }

    #[test]
    fn write_at_overwrites_in_place() {
        let mut log = mem_log();
        let data: Vec<u8> = vec![0u8; 300]; // spans 3 pages of 128
        log.append(&data).unwrap();
        log.write_at(126, b"XYZW").unwrap(); // crosses a page boundary
        let mut buf = vec![0u8; 6];
        log.read_at(125, &mut buf).unwrap();
        assert_eq!(&buf, b"\0XYZW\0");
        assert!(log.write_at(298, b"abc").is_err()); // would extend
                                                     // Overwrite in the (unflushed) tail page.
        log.write_at(299, b"T").unwrap();
        let mut b = [0u8; 1];
        log.read_at(299, &mut b).unwrap();
        assert_eq!(&b, b"T");
    }

    #[test]
    fn write_at_survives_flush_and_reopen() {
        let dir = std::env::temp_dir().join(format!("iva-log3-{}", std::process::id()));
        RealVfs.create_dir_all(&dir).unwrap();
        let path = dir.join("log.db");
        let opts = PagerOptions {
            page_size: 128,
            cache_bytes: 1024,
        };
        {
            let mut log = ByteLog::create(&path, &opts, IoStats::new()).unwrap();
            log.append(&vec![1u8; 400]).unwrap();
            log.flush().unwrap();
            log.write_at(130, b"PATCH").unwrap(); // a committed interior page
            log.flush().unwrap();
        }
        let log = ByteLog::open(&path, &opts, IoStats::new()).unwrap();
        let mut buf = vec![0u8; 5];
        log.read_at(130, &mut buf).unwrap();
        assert_eq!(&buf, b"PATCH");
        RealVfs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pinned_reads_match_plain_reads() {
        let mut log = mem_log();
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        log.append(&data).unwrap();
        // Pin the pages of a few scattered ranges, then read through them.
        let ranges = [(0u64, 64usize), (120, 200), (500, 13), (900, 100)];
        let mut ids = Vec::new();
        for &(pos, len) in &ranges {
            log.pages_spanning(pos, len, &mut ids);
        }
        let pins = log.pin_pages(&ids).unwrap();
        for &(pos, len) in &ranges {
            let mut a = vec![0u8; len];
            let mut b = vec![0u8; len];
            log.read_at(pos, &mut a).unwrap();
            log.read_at_pinned(pos, &mut b, &pins).unwrap();
            assert_eq!(a, b, "range ({pos}, {len})");
        }
        // Bounds errors are identical to read_at's.
        assert!(log.read_at_pinned(999, &mut [0u8; 2], &pins).is_err());
    }

    #[test]
    fn pages_spanning_excludes_tail() {
        let mut log = mem_log(); // page size 128
        log.append(&vec![1u8; 300]).unwrap(); // pages 0, 1, tail = 2
        let mut ids = Vec::new();
        log.pages_spanning(100, 150, &mut ids); // bytes 100..250 => pages 0, 1
        assert_eq!(ids, vec![PageId(0), PageId(1)]);
        ids.clear();
        log.pages_spanning(250, 50, &mut ids); // bytes 250..300: page 1 + tail
        assert_eq!(ids, vec![PageId(1)], "tail page must be excluded");
        ids.clear();
        log.pages_spanning(0, 0, &mut ids);
        assert!(ids.is_empty());
    }

    #[test]
    fn pages_spanning_excludes_overlay() {
        let mut log = mem_log();
        log.append(&vec![3u8; 400]).unwrap(); // pages 0..2 full, tail = 3
        log.flush().unwrap();
        log.write_at(129, b"!").unwrap(); // overlay on page 1
        let mut ids = Vec::new();
        log.pages_spanning(0, 390, &mut ids);
        assert_eq!(ids, vec![PageId(0), PageId(2)], "overlay page excluded");
        // Reads still see the overlay, pinned or not.
        let pins = log.pin_pages(&ids).unwrap();
        let mut b = [0u8; 1];
        log.read_at_pinned(129, &mut b, &pins).unwrap();
        assert_eq!(&b, b"!");
    }

    #[test]
    fn pinned_read_sees_unflushed_tail() {
        let mut log = mem_log();
        log.append(&[7u8; 200]).unwrap(); // tail page holds bytes 128..200
        let mut ids = Vec::new();
        log.pages_spanning(0, 200, &mut ids);
        let pins = log.pin_pages(&ids).unwrap();
        let mut buf = vec![0u8; 200];
        log.read_at_pinned(0, &mut buf, &pins).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn open_rejects_bad_magic() {
        let dir = std::env::temp_dir().join(format!("iva-log2-{}", std::process::id()));
        RealVfs.create_dir_all(&dir).unwrap();
        let path = dir.join("bad.db");
        write_vec(&RealVfs, &path, vec![0u8; 256]).unwrap();
        write_vec(&RealVfs, &sidecar_path(&path), vec![0u8; 64]).unwrap();
        let opts = PagerOptions {
            page_size: 128,
            cache_bytes: 1024,
        };
        assert!(ByteLog::open(&path, &opts, IoStats::new()).is_err());
        RealVfs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_without_commit_record_is_format_error() {
        let dir = std::env::temp_dir().join(format!("iva-log4-{}", std::process::id()));
        RealVfs.create_dir_all(&dir).unwrap();
        let path = dir.join("orphan.db");
        let opts = PagerOptions {
            page_size: 128,
            cache_bytes: 1024,
        };
        {
            ByteLog::create(&path, &opts, IoStats::new()).unwrap();
        }
        RealVfs.remove(&sidecar_path(&path)).unwrap();
        assert!(matches!(
            ByteLog::open(&path, &opts, IoStats::new()),
            Err(StorageError::Format { .. })
        ));
        RealVfs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_appends_roll_back_on_reopen() {
        let vfs_shared: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let path = Path::new("roll.log");
        let opts = PagerOptions {
            page_size: 128,
            cache_bytes: 1024,
        };
        {
            let mut log =
                ByteLog::create_with_vfs(Arc::clone(&vfs_shared), path, &opts, IoStats::new())
                    .unwrap();
            log.append(&[1u8; 200]).unwrap();
            log.flush().unwrap();
            log.append(&vec![2u8; 500]).unwrap(); // acked? no — never flushed
        }
        let log =
            ByteLog::open_with_vfs(Arc::clone(&vfs_shared), path, &opts, IoStats::new()).unwrap();
        assert_eq!(log.len(), 200, "unflushed appends must roll back");
        let mut buf = vec![0u8; 200];
        log.read_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
    }
}
