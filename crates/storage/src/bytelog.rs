//! Append-only byte log over a paged file.
//!
//! The table file of the paper "adopts the row-wise storage structure" with
//! tuples located by a byte pointer (`ptr` in the tuple list) and new tuples
//! "appended to the end of the table file" (Sec. IV-B). A [`ByteLog`] is
//! exactly that: logical byte addresses over physically contiguous pages,
//! supporting fast sequential append/scan and random `read_at`.
//!
//! Page 0 is the header (`magic`, `version`, `len`, plus 32 user bytes for
//! the owning layer); data pages follow contiguously, full-width (no
//! per-page header, so address math is trivial).

use std::path::Path;
use std::sync::Arc;

use crate::batch::PinnedPages;
use crate::error::{Result, StorageError};
use crate::page::PageId;
use crate::pager::{Pager, PagerOptions};
use crate::stats::IoStats;

const MAGIC: u32 = 0x4956_414C; // "IVAL"
const VERSION: u32 = 1;
/// Bytes of header space reserved for the owning layer.
pub const USER_HEADER_LEN: usize = 32;

/// Append-only byte log with random read access.
pub struct ByteLog {
    pager: Arc<Pager>,
    len: u64,
    tail_page: PageId,
    tail_buf: Vec<u8>,
    tail_dirty: bool,
    user_header: [u8; USER_HEADER_LEN],
    header_dirty: bool,
}

impl ByteLog {
    /// Create a new log backed by a fresh disk file.
    pub fn create(path: &Path, opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        let pager = Pager::create(path, opts, stats)?;
        Self::init(pager)
    }

    /// Create a new log in memory.
    pub fn create_mem(opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        Self::init(Pager::create_mem(opts, stats))
    }

    fn init(pager: Arc<Pager>) -> Result<Self> {
        let header = pager.allocate_page()?; // page 0
        debug_assert_eq!(header, PageId(0));
        let tail_page = pager.allocate_page()?; // first data page
        let tail_buf = vec![0u8; pager.page_size()];
        let mut log = Self {
            pager,
            len: 0,
            tail_page,
            tail_buf,
            tail_dirty: false,
            user_header: [0; USER_HEADER_LEN],
            header_dirty: true,
        };
        log.flush()?;
        Ok(log)
    }

    /// Open an existing log.
    pub fn open(path: &Path, opts: &PagerOptions, stats: IoStats) -> Result<Self> {
        let pager = Pager::open(path, opts, stats)?;
        if pager.num_pages() < 2 {
            return Err(StorageError::Corrupt("byte log too short".into()));
        }
        let header = pager.read_page(PageId(0))?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if magic != MAGIC {
            return Err(StorageError::Corrupt("bad byte-log magic".into()));
        }
        if version != VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported byte-log version {version}"
            )));
        }
        let len = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let mut user_header = [0u8; USER_HEADER_LEN];
        user_header.copy_from_slice(&header[16..16 + USER_HEADER_LEN]);

        let page_size = pager.page_size() as u64;
        let tail_page = PageId(1 + len / page_size);
        if tail_page.0 >= pager.num_pages() {
            return Err(StorageError::Corrupt("byte-log length beyond file".into()));
        }
        let tail_buf = pager.read_page(tail_page)?.as_ref().clone();
        Ok(Self {
            pager,
            len,
            tail_page,
            tail_buf,
            tail_dirty: false,
            user_header,
            header_dirty: false,
        })
    }

    /// Logical length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The pager (for stats / size queries).
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Physical size in bytes (pages × page size).
    pub fn size_bytes(&self) -> u64 {
        self.pager.size_bytes()
    }

    /// The 32 user-header bytes.
    pub fn user_header(&self) -> &[u8; USER_HEADER_LEN] {
        &self.user_header
    }

    /// Overwrite the user-header bytes (persisted on the next flush).
    pub fn set_user_header(&mut self, bytes: [u8; USER_HEADER_LEN]) {
        self.user_header = bytes;
        self.header_dirty = true;
    }

    /// Append bytes, returning the logical start offset.
    pub fn append(&mut self, mut data: &[u8]) -> Result<u64> {
        let start = self.len;
        let page_size = self.pager.page_size();
        while !data.is_empty() {
            let in_page = (self.len % page_size as u64) as usize;
            let n = data.len().min(page_size - in_page);
            self.tail_buf[in_page..in_page + n].copy_from_slice(&data[..n]);
            self.tail_dirty = true;
            self.len += n as u64;
            data = &data[n..];
            if self.len.is_multiple_of(page_size as u64) {
                // Page filled: flush it and move to a fresh page.
                self.pager.write_page(
                    self.tail_page,
                    std::mem::replace(&mut self.tail_buf, vec![0u8; page_size]),
                )?;
                self.tail_dirty = false;
                self.tail_page = self.pager.allocate_page()?;
            }
        }
        self.header_dirty = true;
        Ok(start)
    }

    /// Random read of `buf.len()` bytes at logical offset `pos`.
    pub fn read_at(&self, pos: u64, buf: &mut [u8]) -> Result<()> {
        if pos + buf.len() as u64 > self.len {
            return Err(StorageError::Corrupt(format!(
                "byte-log read [{pos}, +{}) beyond length {}",
                buf.len(),
                self.len
            )));
        }
        let page_size = self.pager.page_size() as u64;
        let mut filled = 0usize;
        let mut pos = pos;
        while filled < buf.len() {
            let page = PageId(1 + pos / page_size);
            let in_page = (pos % page_size) as usize;
            let n = (buf.len() - filled).min(page_size as usize - in_page);
            if page == self.tail_page {
                buf[filled..filled + n].copy_from_slice(&self.tail_buf[in_page..in_page + n]);
            } else {
                let p = self.pager.read_page(page)?;
                buf[filled..filled + n].copy_from_slice(&p[in_page..in_page + n]);
            }
            filled += n;
            pos += n as u64;
        }
        Ok(())
    }

    /// Append to `out` the ids of every disk page the logical byte range
    /// `[pos, pos + len)` touches, **excluding** the tail page (whose
    /// authoritative copy lives in the in-memory tail buffer and must never
    /// be fetched from disk). The range is not bounds-checked here; the
    /// eventual read is.
    pub fn pages_spanning(&self, pos: u64, len: usize, out: &mut Vec<PageId>) {
        if len == 0 {
            return;
        }
        let page_size = self.pager.page_size() as u64;
        let first = 1 + pos / page_size;
        let last = 1 + (pos + len as u64 - 1) / page_size;
        for p in first..=last {
            if p != self.tail_page.0 {
                out.push(PageId(p));
            }
        }
    }

    /// Batch-read the given pages (sorted, deduplicated, adjacent pages
    /// coalesced into sequential runs) and return them pinned for use with
    /// [`ByteLog::read_at_pinned`]. Collect the ids with
    /// [`ByteLog::pages_spanning`].
    pub fn pin_pages(&self, ids: &[PageId]) -> Result<PinnedPages> {
        self.pager.read_batch(ids)
    }

    /// Like [`ByteLog::read_at`], but pages present in `pinned` are served
    /// from the pins without touching the pager. The tail page is still
    /// served from the in-memory tail buffer, and pages missing from
    /// `pinned` fall back to ordinary cached reads, so the call is correct
    /// for any pin set.
    pub fn read_at_pinned(&self, pos: u64, buf: &mut [u8], pinned: &PinnedPages) -> Result<()> {
        if pos + buf.len() as u64 > self.len {
            return Err(StorageError::Corrupt(format!(
                "byte-log read [{pos}, +{}) beyond length {}",
                buf.len(),
                self.len
            )));
        }
        let page_size = self.pager.page_size() as u64;
        let mut filled = 0usize;
        let mut pos = pos;
        while filled < buf.len() {
            let page = PageId(1 + pos / page_size);
            let in_page = (pos % page_size) as usize;
            let n = (buf.len() - filled).min(page_size as usize - in_page);
            if page == self.tail_page {
                buf[filled..filled + n].copy_from_slice(&self.tail_buf[in_page..in_page + n]);
            } else if let Some(p) = pinned.get(page) {
                buf[filled..filled + n].copy_from_slice(&p[in_page..in_page + n]);
            } else {
                let p = self.pager.read_page(page)?;
                buf[filled..filled + n].copy_from_slice(&p[in_page..in_page + n]);
            }
            filled += n;
            pos += n as u64;
        }
        Ok(())
    }

    /// Random overwrite of already-appended bytes (used for in-place flag
    /// updates such as tombstones; cannot extend the log).
    pub fn write_at(&mut self, pos: u64, data: &[u8]) -> Result<()> {
        if pos + data.len() as u64 > self.len {
            return Err(StorageError::Corrupt(format!(
                "byte-log write [{pos}, +{}) beyond length {}",
                data.len(),
                self.len
            )));
        }
        let page_size = self.pager.page_size() as u64;
        let mut written = 0usize;
        let mut pos = pos;
        while written < data.len() {
            let page = PageId(1 + pos / page_size);
            let in_page = (pos % page_size) as usize;
            let n = (data.len() - written).min(page_size as usize - in_page);
            if page == self.tail_page {
                self.tail_buf[in_page..in_page + n].copy_from_slice(&data[written..written + n]);
                self.tail_dirty = true;
            } else {
                self.pager.update_page(page, |p| {
                    p[in_page..in_page + n].copy_from_slice(&data[written..written + n]);
                })?;
            }
            written += n;
            pos += n as u64;
        }
        Ok(())
    }

    /// Persist the tail page and header.
    pub fn flush(&mut self) -> Result<()> {
        if self.tail_dirty {
            self.pager
                .write_page(self.tail_page, self.tail_buf.clone())?;
            self.tail_dirty = false;
        }
        if self.header_dirty {
            let user = self.user_header;
            let len = self.len;
            self.pager.update_page(PageId(0), |h| {
                h[0..4].copy_from_slice(&MAGIC.to_le_bytes());
                h[4..8].copy_from_slice(&VERSION.to_le_bytes());
                h[8..16].copy_from_slice(&len.to_le_bytes());
                h[16..16 + USER_HEADER_LEN].copy_from_slice(&user);
            })?;
            self.header_dirty = false;
        }
        self.pager.sync()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_log() -> ByteLog {
        let opts = PagerOptions {
            page_size: 128,
            cache_bytes: 128 * 8,
        };
        ByteLog::create_mem(&opts, IoStats::new()).unwrap()
    }

    #[test]
    fn append_and_read_within_page() {
        let mut log = mem_log();
        let p1 = log.append(b"hello ").unwrap();
        let p2 = log.append(b"world").unwrap();
        assert_eq!(p1, 0);
        assert_eq!(p2, 6);
        let mut buf = vec![0u8; 11];
        log.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn append_spanning_pages() {
        let mut log = mem_log();
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut offsets = Vec::new();
        for chunk in data.chunks(37) {
            offsets.push(log.append(chunk).unwrap());
        }
        assert_eq!(log.len(), 1000);
        // Whole-log read.
        let mut buf = vec![0u8; 1000];
        log.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, data);
        // Random chunk reads.
        for (i, chunk) in data.chunks(37).enumerate() {
            let mut b = vec![0u8; chunk.len()];
            log.read_at(offsets[i], &mut b).unwrap();
            assert_eq!(b, chunk);
        }
    }

    #[test]
    fn read_past_end_fails() {
        let mut log = mem_log();
        log.append(b"abc").unwrap();
        let mut buf = [0u8; 4];
        assert!(log.read_at(0, &mut buf).is_err());
        assert!(log.read_at(3, &mut [0u8; 1]).is_err());
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("iva-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.db");
        let opts = PagerOptions {
            page_size: 128,
            cache_bytes: 1024,
        };
        let data: Vec<u8> = (0..500u16).map(|i| (i % 256) as u8).collect();
        {
            let mut log = ByteLog::create(&path, &opts, IoStats::new()).unwrap();
            log.append(&data).unwrap();
            log.set_user_header([7u8; USER_HEADER_LEN]);
            log.flush().unwrap();
        }
        {
            let mut log = ByteLog::open(&path, &opts, IoStats::new()).unwrap();
            assert_eq!(log.len(), 500);
            assert_eq!(log.user_header(), &[7u8; USER_HEADER_LEN]);
            let mut buf = vec![0u8; 500];
            log.read_at(0, &mut buf).unwrap();
            assert_eq!(buf, data);
            // Appending after reopen lands after existing data.
            let off = log.append(b"tail").unwrap();
            assert_eq!(off, 500);
            log.flush().unwrap();
        }
        let log = ByteLog::open(&path, &opts, IoStats::new()).unwrap();
        assert_eq!(log.len(), 504);
        let mut buf = vec![0u8; 4];
        log.read_at(500, &mut buf).unwrap();
        assert_eq!(&buf, b"tail");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_tail_is_readable() {
        let mut log = mem_log();
        log.append(b"not yet flushed").unwrap();
        let mut buf = vec![0u8; 15];
        log.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"not yet flushed");
    }

    #[test]
    fn exact_page_boundary_append() {
        let mut log = mem_log();
        // Exactly one page of data.
        log.append(&[9u8; 128]).unwrap();
        assert_eq!(log.len(), 128);
        log.append(b"x").unwrap();
        let mut b = [0u8; 1];
        log.read_at(128, &mut b).unwrap();
        assert_eq!(b[0], b'x');
        let mut b = [0u8; 1];
        log.read_at(127, &mut b).unwrap();
        assert_eq!(b[0], 9);
    }

    #[test]
    fn write_at_overwrites_in_place() {
        let mut log = mem_log();
        let data: Vec<u8> = vec![0u8; 300]; // spans 3 pages of 128
        log.append(&data).unwrap();
        log.write_at(126, b"XYZW").unwrap(); // crosses a page boundary
        let mut buf = vec![0u8; 6];
        log.read_at(125, &mut buf).unwrap();
        assert_eq!(&buf, b"\0XYZW\0");
        assert!(log.write_at(298, b"abc").is_err()); // would extend
                                                     // Overwrite in the (unflushed) tail page.
        log.write_at(299, b"T").unwrap();
        let mut b = [0u8; 1];
        log.read_at(299, &mut b).unwrap();
        assert_eq!(&b, b"T");
    }

    #[test]
    fn pinned_reads_match_plain_reads() {
        let mut log = mem_log();
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        log.append(&data).unwrap();
        // Pin the pages of a few scattered ranges, then read through them.
        let ranges = [(0u64, 64usize), (120, 200), (500, 13), (900, 100)];
        let mut ids = Vec::new();
        for &(pos, len) in &ranges {
            log.pages_spanning(pos, len, &mut ids);
        }
        let pins = log.pin_pages(&ids).unwrap();
        for &(pos, len) in &ranges {
            let mut a = vec![0u8; len];
            let mut b = vec![0u8; len];
            log.read_at(pos, &mut a).unwrap();
            log.read_at_pinned(pos, &mut b, &pins).unwrap();
            assert_eq!(a, b, "range ({pos}, {len})");
        }
        // Bounds errors are identical to read_at's.
        assert!(log.read_at_pinned(999, &mut [0u8; 2], &pins).is_err());
    }

    #[test]
    fn pages_spanning_excludes_tail() {
        let mut log = mem_log(); // page size 128
        log.append(&vec![1u8; 300]).unwrap(); // pages 1, 2, tail = 3
        let mut ids = Vec::new();
        log.pages_spanning(100, 150, &mut ids); // bytes 100..250 => pages 1, 2
        assert_eq!(ids, vec![PageId(1), PageId(2)]);
        ids.clear();
        log.pages_spanning(250, 50, &mut ids); // bytes 250..300: page 2 + tail
        assert_eq!(ids, vec![PageId(2)], "tail page must be excluded");
        ids.clear();
        log.pages_spanning(0, 0, &mut ids);
        assert!(ids.is_empty());
    }

    #[test]
    fn pinned_read_sees_unflushed_tail() {
        let mut log = mem_log();
        log.append(&[7u8; 200]).unwrap(); // tail page holds bytes 128..200
        let mut ids = Vec::new();
        log.pages_spanning(0, 200, &mut ids);
        let pins = log.pin_pages(&ids).unwrap();
        let mut buf = vec![0u8; 200];
        log.read_at_pinned(0, &mut buf, &pins).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn open_rejects_bad_magic() {
        let dir = std::env::temp_dir().join(format!("iva-log2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.db");
        std::fs::write(&path, vec![0u8; 256]).unwrap();
        let opts = PagerOptions {
            page_size: 128,
            cache_bytes: 1024,
        };
        assert!(ByteLog::open(&path, &opts, IoStats::new()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
