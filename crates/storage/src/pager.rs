//! The pager: cached page-granular access to one file.
//!
//! All higher layers (table file, iVA-file lists, inverted lists) go through
//! a [`Pager`]. Reads are served from the shared LRU buffer pool when
//! possible; writes are write-through (the cache is updated and the page is
//! immediately written to the backing file), which keeps crash behaviour
//! trivial for this reproduction.
//!
//! # Concurrency
//!
//! The buffer pool is split into shards, each behind its own mutex, with the
//! backing file behind a separate mutex. Cache hits on different shards
//! proceed fully in parallel, which is what the intra-query parallel filter
//! scan needs: worker threads streaming disjoint segments of the same lists
//! touch different pages, and page ids map round-robin onto shards. Lock
//! order is always shard → file; [`Pager::append_page`] takes them
//! sequentially (file released before the shard is locked), never nested in
//! the other direction.

use std::path::Path;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::batch::PinnedPages;
use crate::cache::{LruCache, PageRef};
use crate::error::Result;
use crate::file::BlockFile;
use crate::page::{PageId, DEFAULT_PAGE_SIZE};
use crate::stats::IoStats;
use crate::vfs::Vfs;

/// Upper bound on buffer-pool shards. Eight matches the widest intra-query
/// fan-out the engine defaults to; more shards than cached pages would leave
/// some shards permanently empty.
const MAX_CACHE_SHARDS: usize = 8;

/// Configuration for opening or creating a paged file.
#[derive(Debug, Clone)]
pub struct PagerOptions {
    /// Page size in bytes.
    pub page_size: usize,
    /// Buffer-pool capacity in *bytes* (converted to pages internally). The
    /// paper's default experimental setting is 10 MB shared across files.
    pub cache_bytes: usize,
}

impl Default for PagerOptions {
    fn default() -> Self {
        Self {
            page_size: DEFAULT_PAGE_SIZE,
            cache_bytes: 10 * 1024 * 1024,
        }
    }
}

impl PagerOptions {
    /// Cache capacity expressed in pages.
    pub fn cache_pages(&self) -> usize {
        self.cache_bytes / self.page_size
    }
}

/// The sharded buffer pool. Swapped wholesale on [`Pager::resize_cache`],
/// hence the outer `RwLock` (readers only pin the current shard vector; the
/// per-shard mutex is what serializes cache state).
struct ShardedCache {
    shards: Vec<Mutex<LruCache>>,
}

impl ShardedCache {
    fn new(total_pages: usize) -> Self {
        // Never more shards than pages, so small caches keep their full
        // capacity in one shard instead of rounding every shard down to zero.
        let n = total_pages.clamp(1, MAX_CACHE_SHARDS);
        let shards = (0..n)
            .map(|i| {
                let cap = total_pages / n + usize::from(i < total_pages % n);
                Mutex::new(LruCache::new(cap))
            })
            .collect();
        Self { shards }
    }

    fn shard(&self, id: PageId) -> &Mutex<LruCache> {
        &self.shards[(id.0 % self.shards.len() as u64) as usize]
    }
}

/// Cached page-granular file. Cheap to share via [`Arc`]; all methods take
/// `&self` and are safe to call from multiple threads.
pub struct Pager {
    file: Mutex<BlockFile>,
    cache: RwLock<ShardedCache>,
    page_size: usize,
    stats: IoStats,
}

impl Pager {
    /// Create (truncate) a disk-backed paged file.
    pub fn create(path: &Path, opts: &PagerOptions, stats: IoStats) -> Result<Arc<Self>> {
        let file = BlockFile::create(path, opts.page_size, stats.clone())?;
        Ok(Self::from_file(file, opts, stats))
    }

    /// Open an existing disk-backed paged file.
    pub fn open(path: &Path, opts: &PagerOptions, stats: IoStats) -> Result<Arc<Self>> {
        let file = BlockFile::open(path, opts.page_size, stats.clone())?;
        Ok(Self::from_file(file, opts, stats))
    }

    /// Create (truncate) a paged file through an explicit [`Vfs`].
    pub fn create_with_vfs(
        vfs: &dyn Vfs,
        path: &Path,
        opts: &PagerOptions,
        stats: IoStats,
    ) -> Result<Arc<Self>> {
        let file = BlockFile::create_with(vfs, path, opts.page_size, stats.clone())?;
        Ok(Self::from_file(file, opts, stats))
    }

    /// Open an existing paged file through an explicit [`Vfs`].
    pub fn open_with_vfs(
        vfs: &dyn Vfs,
        path: &Path,
        opts: &PagerOptions,
        stats: IoStats,
    ) -> Result<Arc<Self>> {
        let file = BlockFile::open_with(vfs, path, opts.page_size, stats.clone())?;
        Ok(Self::from_file(file, opts, stats))
    }

    /// Crash-tolerant open: a torn trailing frame is excluded from the
    /// page count (and flagged) instead of rejected, so a recovery path
    /// can truncate it away. See [`BlockFile::open_recovering`].
    pub fn open_recovering(
        vfs: &dyn Vfs,
        path: &Path,
        opts: &PagerOptions,
        stats: IoStats,
    ) -> Result<(Arc<Self>, bool)> {
        let (file, torn) = BlockFile::open_recovering(vfs, path, opts.page_size, stats.clone())?;
        Ok((Self::from_file(file, opts, stats), torn))
    }

    /// Create a memory-backed paged file (tests, property checks).
    pub fn create_mem(opts: &PagerOptions, stats: IoStats) -> Arc<Self> {
        let file = BlockFile::create_mem(opts.page_size, stats.clone());
        Self::from_file(file, opts, stats)
    }

    fn from_file(file: BlockFile, opts: &PagerOptions, stats: IoStats) -> Arc<Self> {
        Arc::new(Self {
            page_size: opts.page_size,
            file: Mutex::new(file),
            cache: RwLock::new(ShardedCache::new(opts.cache_pages())),
            stats,
        })
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Largest hole (in pages) a batch read transfers *through* rather
    /// than seeks over: under the 2009 disk model a page transfers in
    /// ~0.05 ms while a seek costs ~8 ms, so reading up to 16 unrequested
    /// pages (≤ 0.8 ms) to stay in one sequential run is a large win, and
    /// the hole pages double as readahead for later batches.
    pub const RUN_GAP: u64 = 16;

    /// Cap on one spanning batch read, bounding the scratch buffer
    /// (1 MiB at 4 KiB pages).
    pub const MAX_RUN_PAGES: u64 = 256;

    /// Number of pages in the file.
    pub fn num_pages(&self) -> u64 {
        self.file.lock().num_pages()
    }

    /// Total file size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.num_pages() * self.page_size as u64
    }

    /// The I/O counters this pager reports into.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Append a zeroed page and return its id.
    pub fn allocate_page(&self) -> Result<PageId> {
        self.file.lock().grow()
    }

    /// Read a page through the cache.
    pub fn read_page(&self, id: PageId) -> Result<PageRef> {
        let cache = self.cache.read();
        let mut shard = cache.shard(id).lock();
        if let Some(p) = shard.get(id) {
            self.stats.record_cache_hit();
            return Ok(p);
        }
        self.stats.record_cache_miss();
        let mut buf = vec![0u8; self.page_size];
        self.file.lock().read_page(id, &mut buf)?;
        let page: PageRef = Arc::new(buf);
        shard.put(id, Arc::clone(&page));
        Ok(page)
    }

    /// Read a set of pages as one coalesced batch, returning them pinned.
    ///
    /// The ids are sorted and deduplicated; pages already resident in the
    /// buffer pool are pinned as cache hits; the misses are merged into
    /// runs and fetched under a **single** file lock acquisition, each run
    /// costing at most one random seek (the rest of the run is accounted
    /// sequential — see [`BlockFile::read_run`]). Like an elevator I/O
    /// scheduler, a run reads *through* holes of up to [`Self::RUN_GAP`]
    /// pages between requested ids: transferring a few extra sequential
    /// pages is an order of magnitude cheaper than seeking over them, and
    /// the hole pages are published to the buffer pool as readahead.
    /// Fetched pages are published to the cache, but the returned
    /// [`PinnedPages`] keeps the *requested* pages alive regardless of
    /// later evictions.
    pub fn read_batch(&self, ids: &[PageId]) -> Result<PinnedPages> {
        let mut sorted: Vec<PageId> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.is_empty() {
            return Ok(PinnedPages::empty());
        }

        // Pass 1: serve what the buffer pool already holds.
        let mut pinned: Vec<(PageId, PageRef)> = Vec::with_capacity(sorted.len());
        let mut missing: Vec<PageId> = Vec::new();
        {
            let cache = self.cache.read();
            for &id in &sorted {
                let mut shard = cache.shard(id).lock();
                if let Some(p) = shard.get(id) {
                    self.stats.record_cache_hit();
                    pinned.push((id, p));
                } else {
                    self.stats.record_cache_miss();
                    missing.push(id);
                }
            }
        }

        // Pass 2: fetch the misses, nearby ids coalesced into spanning
        // runs (reading through holes of up to RUN_GAP pages), the file
        // locked once for the whole batch. Requested pages are pinned;
        // hole pages are readahead, published to the pool only.
        let mut fetched: Vec<(PageId, PageRef)> = Vec::with_capacity(missing.len());
        let mut readahead: Vec<(PageId, PageRef)> = Vec::new();
        if !missing.is_empty() {
            let mut file = self.file.lock();
            let mut i = 0;
            while let Some(&run_start) = missing.get(i) {
                let first = run_start.0;
                let mut last = first;
                let mut j = i + 1;
                while let Some(&next) = missing.get(j) {
                    if next.0 - last > Self::RUN_GAP + 1 || next.0 - first >= Self::MAX_RUN_PAGES {
                        break;
                    }
                    last = next.0;
                    j += 1;
                }
                let span = (last - first + 1) as usize;
                let mut buf = vec![0u8; span * self.page_size];
                file.read_run(run_start, &mut buf)?;
                let mut want = i;
                for (k, chunk) in buf.chunks(self.page_size).enumerate() {
                    let id = PageId(first + k as u64);
                    let page: PageRef = Arc::new(chunk.to_vec());
                    if want < j && missing.get(want) == Some(&id) {
                        fetched.push((id, page));
                        want += 1;
                    } else {
                        readahead.push((id, page));
                    }
                }
                i = j;
            }
        }

        // Publish the fetched pages. A writer may have raced us between
        // the file read and here; prefer the copy already in the cache
        // (it is at least as fresh as what we read) and only publish ours
        // if the slot is empty.
        {
            let cache = self.cache.read();
            for (id, page) in &mut fetched {
                let mut shard = cache.shard(*id).lock();
                if let Some(fresh) = shard.get(*id) {
                    *page = fresh;
                } else {
                    shard.put(*id, Arc::clone(page));
                }
            }
            for (id, page) in readahead {
                let mut shard = cache.shard(id).lock();
                if shard.get(id).is_none() {
                    shard.put(id, page);
                }
            }
        }

        pinned.extend(fetched);
        pinned.sort_unstable_by_key(|&(id, _)| id);
        Ok(PinnedPages::from_sorted(pinned))
    }

    /// Warm the buffer pool with a coalesced batch read of `ids`, without
    /// keeping pins. Returns the number of distinct pages touched. Note a
    /// pool smaller than the batch cannot retain every page — callers that
    /// must see all pages should hold the [`Pager::read_batch`] pins
    /// instead.
    pub fn prefetch(&self, ids: &[PageId]) -> Result<usize> {
        Ok(self.read_batch(ids)?.len())
    }

    /// Overwrite a whole page (write-through).
    pub fn write_page(&self, id: PageId, data: Vec<u8>) -> Result<()> {
        debug_assert_eq!(data.len(), self.page_size);
        let cache = self.cache.read();
        let mut shard = cache.shard(id).lock();
        self.file.lock().write_page(id, &data)?;
        shard.put(id, Arc::new(data));
        Ok(())
    }

    /// Read-modify-write a page in place.
    pub fn update_page(&self, id: PageId, f: impl FnOnce(&mut [u8])) -> Result<()> {
        let cache = self.cache.read();
        let mut shard = cache.shard(id).lock();
        let mut buf = if let Some(p) = shard.get(id) {
            self.stats.record_cache_hit();
            p.as_ref().clone()
        } else {
            self.stats.record_cache_miss();
            let mut b = vec![0u8; self.page_size];
            self.file.lock().read_page(id, &mut b)?;
            b
        };
        // lint:allow(panic-reachability, "dynamic edge: callers pass in-crate header/flag editors over a full page buffer; not driven by on-disk data")
        f(&mut buf);
        self.file.lock().write_page(id, &buf)?;
        shard.put(id, Arc::new(buf));
        Ok(())
    }

    /// Allocate a page and write its initial contents in one step.
    pub fn append_page(&self, data: Vec<u8>) -> Result<PageId> {
        debug_assert_eq!(data.len(), self.page_size);
        // Grow and write under the file lock alone, then publish to the
        // cache. A reader racing between the two steps misses and re-reads
        // the freshly written page — same bytes, no lock-order inversion.
        let id = {
            let mut file = self.file.lock();
            let id = file.grow()?;
            file.write_page(id, &data)?;
            id
        };
        let cache = self.cache.read();
        cache.shard(id).lock().put(id, Arc::new(data));
        Ok(id)
    }

    /// Drop all cached pages (used by experiments to cold-start a run).
    pub fn clear_cache(&self) {
        let cache = self.cache.read();
        for shard in &cache.shards {
            shard.lock().clear();
        }
    }

    /// Replace the buffer pool with one of a new capacity (dropping the
    /// current contents). Experiments use this to keep the cache-to-data
    /// ratio constant across dataset scales, as the paper's fixed 10 MB
    /// cache is ~3 % of its 355.7 MB table file.
    pub fn resize_cache(&self, cache_bytes: usize) {
        let pages = cache_bytes / self.page_size;
        *self.cache.write() = ShardedCache::new(pages);
    }

    /// Drop pages `n..` from the file (crash recovery truncating torn or
    /// uncommitted appends), discarding the whole buffer pool so no stale
    /// copy of a dropped page survives.
    pub fn truncate_pages(&self, n: u64) -> Result<()> {
        let cache = self.cache.read();
        let mut file = self.file.lock();
        file.truncate_pages(n)?;
        for shard in &cache.shards {
            shard.lock().clear();
        }
        Ok(())
    }

    /// Enable or disable CRC verification on physical reads (writes always
    /// stamp checksums). On by default; the checksum-overhead bench
    /// toggles this to measure the cost.
    pub fn set_verify_checksums(&self, verify: bool) {
        self.file.lock().set_verify(verify);
    }

    /// Flush the backing file.
    pub fn sync(&self) -> Result<()> {
        self.file.lock().sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{RealVfs, Vfs};

    fn mem_pager(cache_bytes: usize) -> Arc<Pager> {
        let opts = PagerOptions {
            page_size: 256,
            cache_bytes,
        };
        Pager::create_mem(&opts, IoStats::new())
    }

    #[test]
    fn write_then_read_hits_cache() {
        let p = mem_pager(1024);
        let id = p.allocate_page().unwrap();
        let mut data = vec![0u8; 256];
        data[10] = 42;
        p.write_page(id, data).unwrap();
        let before = p.stats().snapshot();
        let page = p.read_page(id).unwrap();
        assert_eq!(page[10], 42);
        let after = p.stats().snapshot();
        assert_eq!(after.since(&before).cache_hits, 1);
        assert_eq!(after.since(&before).disk_page_reads, 0);
    }

    #[test]
    fn cold_read_goes_to_disk() {
        let p = mem_pager(1024);
        let id = p.allocate_page().unwrap();
        p.clear_cache();
        let before = p.stats().snapshot();
        p.read_page(id).unwrap();
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.cache_misses, 1);
        assert_eq!(d.disk_page_reads, 1);
    }

    #[test]
    fn update_page_modifies_persistently() {
        let p = mem_pager(0); // no cache: forces disk on every access
        let id = p.allocate_page().unwrap();
        p.update_page(id, |b| b[0] = 7).unwrap();
        p.update_page(id, |b| b[1] = b[0] + 1).unwrap();
        let page = p.read_page(id).unwrap();
        assert_eq!((page[0], page[1]), (7, 8));
    }

    #[test]
    fn append_page_roundtrip() {
        let p = mem_pager(1024);
        let mut data = vec![0u8; 256];
        data[0] = 0xEE;
        let id = p.append_page(data).unwrap();
        assert_eq!(p.read_page(id).unwrap()[0], 0xEE);
        assert_eq!(p.num_pages(), 1);
        assert_eq!(p.size_bytes(), 256);
    }

    #[test]
    fn tiny_cache_keeps_full_capacity_in_one_shard() {
        // 2 pages of capacity must not round down to zero across shards.
        let p = mem_pager(512);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        p.clear_cache();
        p.read_page(a).unwrap();
        p.read_page(b).unwrap();
        let before = p.stats().snapshot();
        p.read_page(a).unwrap();
        p.read_page(b).unwrap();
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.cache_hits, 2, "both pages should be resident: {d:?}");
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        let p = mem_pager(16 * 1024);
        let mut ids = Vec::new();
        for i in 0..64u8 {
            let mut data = vec![0u8; 256];
            data[0] = i;
            data[255] = i;
            ids.push(p.append_page(data).unwrap());
        }
        p.clear_cache();
        std::thread::scope(|s| {
            for t in 0..8 {
                let (p, ids) = (&p, &ids);
                s.spawn(move || {
                    // Each thread walks the pages from a different offset so
                    // hits and misses interleave across shards.
                    for k in 0..256 {
                        let i = (t * 8 + k) % ids.len();
                        let page = p.read_page(ids[i]).unwrap();
                        assert_eq!(page[0], i as u8);
                        assert_eq!(page[255], i as u8);
                    }
                });
            }
        });
        let s = p.stats().snapshot();
        assert_eq!(s.cache_hits + s.cache_misses, 8 * 256);
    }

    #[test]
    fn read_batch_dedups_and_coalesces_runs() {
        let p = mem_pager(128 * 256);
        for i in 0..64u8 {
            p.append_page(vec![i; 256]).unwrap();
        }
        p.clear_cache();
        let before = p.stats().snapshot();
        // Unsorted, with duplicates: {7, 5, 6} ∪ {11, 12} ∪ {20}, whose
        // holes are all within RUN_GAP, plus a distant {60}.
        let ids = [
            PageId(7),
            PageId(20),
            PageId(5),
            PageId(12),
            PageId(6),
            PageId(5),
            PageId(11),
            PageId(60),
        ];
        let pins = p.read_batch(&ids).unwrap();
        assert_eq!(pins.len(), 7);
        for (id, page) in pins.iter() {
            assert_eq!(page[0], id.0 as u8, "wrong contents for {id}");
        }
        let d = p.stats().snapshot().since(&before);
        // One spanning run [5..=20] (16 pages, holes read through) plus
        // the isolated [60]: the far page must NOT be merged.
        assert_eq!(d.disk_page_reads, 17, "expected one spanning run + one");
        assert_eq!(d.cache_misses, 7, "only requested pages count as misses");
        // Two seeks at most (a run start can also continue an existing
        // stream, hence ≤).
        assert!(d.random_seeks <= 2, "runs not coalesced: {d:?}");
        assert_eq!(d.seq_bytes_read + d.random_bytes_read, 17 * 256);
    }

    #[test]
    fn read_batch_holes_become_readahead_hits() {
        let p = mem_pager(128 * 256);
        for i in 0..32u8 {
            p.append_page(vec![i; 256]).unwrap();
        }
        p.clear_cache();
        // The run [5..=9] spans the unrequested holes 6..=8.
        p.read_batch(&[PageId(5), PageId(9)]).unwrap();
        let before = p.stats().snapshot();
        let page = p.read_page(PageId(7)).unwrap();
        assert_eq!(page[0], 7);
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.cache_hits, 1, "hole page should be readahead: {d:?}");
        assert_eq!(d.disk_page_reads, 0);
    }

    #[test]
    fn read_batch_serves_resident_pages_from_cache() {
        let p = mem_pager(64 * 256);
        for i in 0..8u8 {
            p.append_page(vec![i; 256]).unwrap();
        }
        // All pages still resident from the appends: zero disk reads.
        let before = p.stats().snapshot();
        let pins = p.read_batch(&[PageId(1), PageId(3)]).unwrap();
        let d = p.stats().snapshot().since(&before);
        assert_eq!(pins.len(), 2);
        assert_eq!(d.disk_page_reads, 0);
        assert_eq!(d.cache_hits, 2);
    }

    #[test]
    fn pins_survive_cache_clear() {
        let p = mem_pager(4 * 256);
        for i in 0..16u8 {
            p.append_page(vec![i; 256]).unwrap();
        }
        p.clear_cache();
        let pins = p
            .read_batch(&(0..16).map(PageId).collect::<Vec<_>>())
            .unwrap();
        p.clear_cache();
        for i in 0..16u64 {
            assert_eq!(pins.get(PageId(i)).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn empty_batch_is_free() {
        let p = mem_pager(1024);
        let before = p.stats().snapshot();
        let pins = p.read_batch(&[]).unwrap();
        assert!(pins.is_empty());
        assert_eq!(p.stats().snapshot(), before);
    }

    #[test]
    fn prefetch_warms_cache() {
        let p = mem_pager(64 * 256);
        for i in 0..8u8 {
            p.append_page(vec![i; 256]).unwrap();
        }
        p.clear_cache();
        assert_eq!(p.prefetch(&[PageId(2), PageId(3), PageId(4)]).unwrap(), 3);
        let before = p.stats().snapshot();
        p.read_page(PageId(3)).unwrap();
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.cache_hits, 1);
        assert_eq!(d.disk_page_reads, 0);
    }

    #[test]
    fn disk_pager_reopen() {
        let dir = std::env::temp_dir().join(format!("iva-pg-{}", std::process::id()));
        RealVfs.create_dir_all(&dir).unwrap();
        let path = dir.join("p.db");
        let opts = PagerOptions {
            page_size: 512,
            cache_bytes: 2048,
        };
        {
            let p = Pager::create(&path, &opts, IoStats::new()).unwrap();
            let id = p.allocate_page().unwrap();
            let mut d = vec![0u8; 512];
            d[511] = 9;
            p.write_page(id, d).unwrap();
            p.sync().unwrap();
        }
        let p = Pager::open(&path, &opts, IoStats::new()).unwrap();
        assert_eq!(p.num_pages(), 1);
        assert_eq!(p.read_page(PageId(0)).unwrap()[511], 9);
        RealVfs.remove_dir_all(&dir).unwrap();
    }
}
