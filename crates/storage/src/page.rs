//! Page primitives.

/// Default page size: 4 KiB, the classic database page granularity.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Identifier of a page within one paged file (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel used to terminate page chains ("no next page").
    pub const NULL: PageId = PageId(u64::MAX);

    /// True if this is the [`PageId::NULL`] sentinel.
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }

    /// Byte offset of this page in a file with the given page size.
    pub fn offset(self, page_size: usize) -> u64 {
        self.0 * page_size as u64
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "P(null)")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sentinel() {
        assert!(PageId::NULL.is_null());
        assert!(!PageId(0).is_null());
        assert_eq!(PageId(3).offset(4096), 12288);
    }

    #[test]
    fn display() {
        assert_eq!(PageId(7).to_string(), "P7");
        assert_eq!(PageId::NULL.to_string(), "P(null)");
    }
}
