//! Deterministic fault-injecting filesystem for torture tests.
//!
//! [`FaultVfs`] is an in-memory filesystem that models the failure modes a
//! real disk exposes: short reads and writes, transient `EIO`, failed
//! fsyncs, and — most importantly — *power cuts*. Every file keeps two
//! images: the **volatile** one (what the OS page cache would show) and the
//! **durable** one (what survives a crash). `sync` promotes volatile to
//! durable; a power cut replays the unsynced write extents against the
//! durable image with a seeded RNG deciding, per extent, whether it
//! survives in full, as a torn prefix, or not at all — exactly the
//! reordering/tearing freedom POSIX grants between fsyncs. `rename` is
//! modeled as atomic and immediately durable (the commit-point assumption
//! documented in [`vfs`](crate::vfs)).
//!
//! Every operation is numbered by a global counter, so a whole workload is
//! reproducible from `(seed, crash_at)` alone — that pair is what the
//! torture harness prints on failure.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use crate::vfs::{MemVfs, Vfs, VfsFile};

/// The kinds of fault [`FaultVfs`] can inject at a chosen operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The read returns fewer bytes than requested (possibly zero).
    ShortRead,
    /// The write persists only a prefix of the buffer.
    ShortWrite,
    /// The operation fails with `EIO` (state unchanged).
    Eio,
    /// `sync` fails; nothing is promoted to durable.
    SyncFail,
    /// Power cut: unsynced writes survive randomly (torn/dropped/whole),
    /// and every later operation fails until the harness reopens from the
    /// durable image.
    PowerCut,
}

/// A single planned fault: inject `kind` when the operation counter
/// reaches `at`.
#[derive(Debug, Clone, Copy)]
pub struct PlannedFault {
    /// Operation index (see [`FaultVfs::op_count`]) at which to fire.
    pub at: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// One pending (unsynced) mutation on a file.
#[derive(Debug, Clone)]
enum Pending {
    /// `write_at(off, data)` — data already visible in the volatile image.
    Write { off: u64, data: Vec<u8> },
    /// `set_len(len)`.
    Truncate { len: u64 },
}

#[derive(Default)]
struct FileImages {
    durable: Vec<u8>,
    volatile: Vec<u8>,
    pending: Vec<Pending>,
}

struct FaultState {
    files: HashMap<PathBuf, FileImages>,
    rng: u64,
    op: u64,
    faults: Vec<PlannedFault>,
    crashed: bool,
}

impl FaultState {
    /// splitmix64 — small, seedable, and good enough for tearing decisions.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Advance the op counter and return the fault planned for this op.
    fn tick(&mut self) -> io::Result<Option<FaultKind>> {
        if self.crashed {
            return Err(io::Error::other("power already cut: filesystem is down"));
        }
        let op = self.op;
        self.op += 1;
        Ok(self.faults.iter().find(|f| f.at == op).map(|f| f.kind))
    }

    /// Apply the power-cut model: each pending mutation, in order,
    /// survives whole, as a torn prefix, or not at all.
    fn power_cut(&mut self) {
        self.crashed = true;
        let mut files = std::mem::take(&mut self.files);
        for images in files.values_mut() {
            let pending = std::mem::take(&mut images.pending);
            for p in pending {
                match self.next_u64() % 3 {
                    0 => { /* dropped */ }
                    1 => apply_write(&mut images.durable, &p, None),
                    _ => {
                        let torn = match &p {
                            Pending::Write { data, .. } if !data.is_empty() => {
                                Some((self.next_u64() % data.len() as u64) as usize)
                            }
                            _ => None,
                        };
                        apply_write(&mut images.durable, &p, torn);
                    }
                }
            }
        }
        self.files = files;
    }
}

fn apply_write(durable: &mut Vec<u8>, p: &Pending, torn_prefix: Option<usize>) {
    match p {
        Pending::Write { off, data } => {
            let n = torn_prefix.unwrap_or(data.len()).min(data.len());
            let end = *off as usize + n;
            if durable.len() < end {
                durable.resize(end, 0);
            }
            if let (Some(dst), Some(src)) = (durable.get_mut(*off as usize..end), data.get(..n)) {
                dst.copy_from_slice(src);
            }
        }
        Pending::Truncate { len } => durable.resize(*len as usize, 0),
    }
}

/// Deterministic fault-injecting in-memory filesystem.
///
/// With an empty fault plan it is a pure pass-through (still counting
/// operations), which is how CI proves the abstraction is functionally
/// free. `Clone` shares the filesystem.
#[derive(Clone)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// A pass-through instance: no faults, operations counted.
    pub fn passthrough(seed: u64) -> Self {
        Self::with_faults(seed, Vec::new())
    }

    /// An instance that cuts power at operation index `crash_at`.
    pub fn power_cut_at(seed: u64, crash_at: u64) -> Self {
        Self::with_faults(
            seed,
            vec![PlannedFault {
                at: crash_at,
                kind: FaultKind::PowerCut,
            }],
        )
    }

    /// An instance whose filesystem starts as a copy of `mem`'s current
    /// contents (each file durable *and* volatile, nothing pending) with
    /// the given fault plan armed. This is how a test injects faults into
    /// the *open/read* path of files built beforehand under a plain
    /// [`MemVfs`]: build cleanly, adopt, then reopen through the fault
    /// injector.
    pub fn adopt(mem: &MemVfs, seed: u64, faults: Vec<PlannedFault>) -> Self {
        let vfs = Self::with_faults(seed, faults);
        {
            let mut state = vfs.state.lock().unwrap();
            for path in mem.paths() {
                if let Some(data) = mem.contents(&path) {
                    state.files.insert(
                        path,
                        FileImages {
                            durable: data.clone(),
                            volatile: data,
                            pending: Vec::new(),
                        },
                    );
                }
            }
        }
        vfs
    }

    /// An instance with an arbitrary fault plan.
    pub fn with_faults(seed: u64, faults: Vec<PlannedFault>) -> Self {
        Self {
            state: Arc::new(Mutex::new(FaultState {
                files: HashMap::new(),
                rng: seed,
                op: 0,
                faults,
                crashed: false,
            })),
        }
    }

    /// Number of filesystem operations performed so far. A dry run records
    /// the workload length; the torture harness then sweeps `crash_at`
    /// over `0..op_count()`.
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().op
    }

    /// Whether the planned power cut has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Snapshot the **durable** image of every file into a fresh
    /// [`MemVfs`] — what a machine would find on disk after the crash.
    /// Reopen from this to exercise recovery.
    pub fn durable_snapshot(&self) -> MemVfs {
        let state = self.state.lock().unwrap();
        let out = MemVfs::new();
        for (path, images) in &state.files {
            out.set_contents(path, images.durable.clone());
        }
        out
    }

    /// Snapshot the **volatile** image (what the process saw just before
    /// the crash) — useful for debugging torture failures.
    pub fn volatile_snapshot(&self) -> MemVfs {
        let state = self.state.lock().unwrap();
        let out = MemVfs::new();
        for (path, images) in &state.files {
            out.set_contents(path, images.volatile.clone());
        }
        out
    }

    fn tick(&self, during_sync: bool) -> io::Result<Option<FaultKind>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        match state.tick()? {
            Some(FaultKind::PowerCut) => {
                state.power_cut();
                Err(io::Error::other("injected power cut"))
            }
            Some(FaultKind::Eio) => Err(io::Error::other("injected EIO")),
            Some(FaultKind::SyncFail) if during_sync => {
                Err(io::Error::other("injected fsync failure"))
            }
            other => Ok(other),
        }
    }

    fn with_file<R>(
        &self,
        path: &Path,
        f: impl FnOnce(&mut FaultState, &PathBuf) -> io::Result<R>,
    ) -> io::Result<R> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.crashed {
            return Err(io::Error::other("power already cut: filesystem is down"));
        }
        // lint:allow(panic-reachability, "dynamic edge: in-module closures over in-memory fault state; every caller is a Vfs method in this file")
        f(&mut state, &path.to_path_buf())
    }
}

struct FaultFile {
    vfs: FaultVfs,
    path: PathBuf,
}

impl FaultFile {
    fn with_images<R>(
        &self,
        f: impl FnOnce(&mut FaultState, &mut FileImages) -> R,
    ) -> io::Result<R> {
        let mut state = self
            .vfs
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut images = state.files.remove(&self.path).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "file removed under open handle")
        })?;
        // lint:allow(panic-reachability, "dynamic edge: in-module closures over in-memory file images; every caller is a VfsFile method in this file")
        let r = f(&mut state, &mut images);
        state.files.insert(self.path.clone(), images);
        Ok(r)
    }
}

impl VfsFile for FaultFile {
    fn read_at(&self, buf: &mut [u8], off: u64) -> io::Result<usize> {
        let fault = self.vfs.tick(false)?;
        self.with_images(|state, images| {
            let data = &images.volatile;
            let off = off as usize;
            if off >= data.len() {
                return 0;
            }
            let mut n = buf.len().min(data.len() - off);
            if fault == Some(FaultKind::ShortRead) && n > 0 {
                n = (state.next_u64() % n as u64) as usize;
            }
            match (buf.get_mut(..n), data.get(off..off + n)) {
                (Some(dst), Some(src)) => dst.copy_from_slice(src),
                _ => return 0,
            }
            n
        })
    }

    fn write_at(&self, buf: &[u8], off: u64) -> io::Result<usize> {
        let fault = self.vfs.tick(false)?;
        self.with_images(|state, images| {
            let mut n = buf.len();
            if fault == Some(FaultKind::ShortWrite) && n > 1 {
                n = 1 + (state.next_u64() % (n as u64 - 1)) as usize;
            }
            let p = Pending::Write {
                off,
                data: buf.get(..n).unwrap_or(buf).to_vec(),
            };
            apply_write(&mut images.volatile, &p, None);
            images.pending.push(p);
            n
        })
    }

    fn len(&self) -> io::Result<u64> {
        self.with_images(|_, images| images.volatile.len() as u64)
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.vfs.tick(false)?;
        self.with_images(|_, images| {
            let p = Pending::Truncate { len };
            apply_write(&mut images.volatile, &p, None);
            images.pending.push(p);
        })
    }

    fn sync(&self) -> io::Result<()> {
        self.vfs.tick(true)?;
        self.with_images(|_, images| {
            images.durable = images.volatile.clone();
            images.pending.clear();
        })
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.tick(false)?;
        self.with_file(path, |state, path| {
            let images = state.files.entry(path.clone()).or_default();
            // Truncation is a pending mutation like any other: the durable
            // image keeps the old contents until a sync or rename.
            let p = Pending::Truncate { len: 0 };
            apply_write(&mut images.volatile, &p, None);
            images.pending.push(p);
            Ok(())
        })?;
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.tick(false)?;
        self.with_file(path, |state, path| {
            if state.files.contains_key(path) {
                Ok(())
            } else {
                Err(io::Error::new(io::ErrorKind::NotFound, "no such file"))
            }
        })?;
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        let state = self.state.lock().unwrap();
        !state.crashed && state.files.contains_key(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.tick(false)?;
        self.with_file(from, |state, from| {
            let mut images = state
                .files
                .remove(from)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "rename source missing"))?;
            // Atomic-and-durable commit point: the renamed file's current
            // volatile contents become its durable contents.
            images.durable = images.volatile.clone();
            images.pending.clear();
            state.files.insert(to.to_path_buf(), images);
            Ok(())
        })
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.tick(false)?;
        self.with_file(path, |state, path| {
            state
                .files
                .remove(path)
                .map(|_| ())
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{read_to_vec, write_full_at};

    #[test]
    fn passthrough_behaves_like_memvfs() {
        let vfs = FaultVfs::passthrough(1);
        let f = vfs.create(Path::new("a")).unwrap();
        write_full_at(f.as_ref(), b"abcdef", 0).unwrap();
        f.sync().unwrap();
        assert_eq!(read_to_vec(&vfs, Path::new("a")).unwrap(), b"abcdef");
        assert!(vfs.op_count() > 0);
        assert!(!vfs.crashed());
    }

    #[test]
    fn unsynced_writes_may_not_survive_power_cut() {
        // Write two extents, sync only the first, cut power on the next op.
        // The durable image must contain the synced extent exactly; the
        // unsynced one in any torn/dropped/whole state.
        for seed in 0..32u64 {
            let vfs = FaultVfs::with_faults(seed, vec![]);
            let f = vfs.create(Path::new("a")).unwrap();
            write_full_at(f.as_ref(), &[1u8; 8], 0).unwrap();
            f.sync().unwrap();
            write_full_at(f.as_ref(), &[2u8; 8], 8).unwrap();
            let crash_now = vfs.op_count();
            drop(f);
            let vfs2 = FaultVfs::power_cut_at(seed, crash_now);
            let f = vfs2.create(Path::new("a")).unwrap();
            write_full_at(f.as_ref(), &[1u8; 8], 0).unwrap();
            f.sync().unwrap();
            write_full_at(f.as_ref(), &[2u8; 8], 8).unwrap();
            assert!(f.sync().is_err(), "power cut must fail the op");
            assert!(vfs2.crashed());
            let durable = vfs2.durable_snapshot();
            let got = durable.contents(Path::new("a")).unwrap();
            assert_eq!(&got[..8], &[1u8; 8], "synced prefix must survive");
            for &b in &got[8..] {
                assert!(b == 0 || b == 2, "torn bytes must be old or new");
            }
        }
    }

    #[test]
    fn rename_is_durable_commit_point() {
        let vfs = FaultVfs::passthrough(7);
        let f = vfs.create(Path::new("m.new")).unwrap();
        write_full_at(f.as_ref(), b"meta", 0).unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.rename(Path::new("m.new"), Path::new("m")).unwrap();
        let durable = vfs.durable_snapshot();
        assert_eq!(durable.contents(Path::new("m")).unwrap(), b"meta");
        assert!(durable.contents(Path::new("m.new")).is_none());
    }

    #[test]
    fn post_crash_operations_fail_not_panic() {
        let vfs = FaultVfs::power_cut_at(3, 2);
        let f = vfs.create(Path::new("x")).unwrap();
        let _ = f.write_at(&[0; 4], 0); // op 1
        let err = f.sync(); // op 2 => power cut
        assert!(err.is_err());
        assert!(f.write_at(&[0; 4], 0).is_err());
        assert!(f.read_at(&mut [0; 4], 0).is_err());
        assert!(vfs.create(Path::new("y")).is_err());
        assert!(vfs.open(Path::new("x")).is_err());
    }

    #[test]
    fn injected_faults_fire_once_at_index() {
        // EIO on op 3 (a read), everything else clean.
        let vfs = FaultVfs::with_faults(
            9,
            vec![PlannedFault {
                at: 3,
                kind: FaultKind::Eio,
            }],
        );
        let f = vfs.create(Path::new("a")).unwrap(); // op 0
        write_full_at(f.as_ref(), &[5u8; 4], 0).unwrap(); // op 1
        f.sync().unwrap(); // op 2
        let mut buf = [0u8; 4];
        assert!(f.read_at(&mut buf, 0).is_err()); // op 3: EIO
        f.read_at(&mut buf, 0).unwrap(); // op 4: fine again
        assert_eq!(buf, [5u8; 4]);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed: u64| {
            let vfs = FaultVfs::power_cut_at(seed, 6);
            let f = vfs.create(Path::new("a")).unwrap();
            for i in 0..8u64 {
                if write_full_at(f.as_ref(), &[i as u8; 16], i * 16).is_err() {
                    break;
                }
            }
            vfs.durable_snapshot().contents(Path::new("a"))
        };
        assert_eq!(run(42), run(42));
    }
}
