//! Error type shared by all storage-layer operations.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A page id beyond the end of the file was requested.
    PageOutOfBounds {
        /// The offending page id.
        page: u64,
        /// Number of pages currently in the file.
        pages: u64,
    },
    /// On-disk data failed validation (bad magic, truncated list, ...).
    Corrupt(String),
    /// An operation was attempted with inconsistent arguments
    /// (e.g. a write crossing a page boundary).
    InvalidArgument(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::PageOutOfBounds { page, pages } => {
                write!(f, "page {page} out of bounds (file has {pages} pages)")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
            StorageError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
