//! Error type shared by all storage-layer operations.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A page id beyond the end of the file was requested.
    PageOutOfBounds {
        /// The offending page id.
        page: u64,
        /// Number of pages currently in the file.
        pages: u64,
    },
    /// On-disk data failed validation (bad magic, truncated list, ...).
    Corrupt(String),
    /// A file is not what the opener expected: wrong magic, wrong format
    /// version, mismatched page size, or a truncated superblock. Reports
    /// what was expected against what was found, so garbage files are
    /// rejected with a diagnosable message instead of misread.
    Format {
        /// What the opener required (e.g. `magic "IVFB" v1`).
        expected: String,
        /// What the file actually contained.
        found: String,
    },
    /// A page's stored CRC32C did not match its contents: the page is
    /// torn or bit-rotted. Detected at read time, before any byte is
    /// interpreted.
    ChecksumMismatch {
        /// The physical page id.
        page: u64,
        /// CRC stored in the page frame.
        expected: u32,
        /// CRC computed over the page contents.
        found: u32,
    },
    /// An operation was attempted with inconsistent arguments
    /// (e.g. a write crossing a page boundary).
    InvalidArgument(String),
}

impl StorageError {
    /// True for errors that mean "the bytes on disk are bad" — the
    /// corruption family callers treat as *rebuild or reject*, as opposed
    /// to transient I/O failures.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StorageError::Corrupt(_)
                | StorageError::Format { .. }
                | StorageError::ChecksumMismatch { .. }
                | StorageError::PageOutOfBounds { .. }
        )
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::PageOutOfBounds { page, pages } => {
                write!(f, "page {page} out of bounds (file has {pages} pages)")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
            StorageError::Format { expected, found } => {
                write!(f, "bad file format: expected {expected}, found {found}")
            }
            StorageError::ChecksumMismatch {
                page,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch on page {page}: stored {expected:#010x}, computed {found:#010x}"
            ),
            StorageError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
