//! lint:scope(no-panic-decode)
//! LSM segment manifest: the single authoritative record naming the live
//! sealed segments of a segmented store.
//!
//! The manifest is persisted through the shadow-commit protocol of
//! [`commit`](crate::commit) — write-new → fsync → rename — so segment
//! membership changes atomically: a seal or a compaction becomes visible
//! exactly when the rename lands, and a crash at any earlier point leaves
//! the previous manifest (plus harmless orphan files named by ids the old
//! manifest does not reference). Recovery therefore never sees a
//! half-merged state.
//!
//! Besides the segment list the manifest carries everything the engine
//! must pin globally so that per-segment index rebuilds stay bit-identical
//! to a monolithic index: the tid watermark, the per-attribute numeric
//! domain pins (the iVA numeric quantisation domain is fixed at first
//! insert and never widens — see DESIGN.md §14), and the encoded attribute
//! catalog (opaque bytes owned by the table layer; the manifest does not
//! interpret them).
//!
//! Decoding is total: any truncated, oversized, or bit-flipped input
//! returns [`StorageError`], never panics, and count fields are
//! sanity-capped before any allocation.

use std::path::Path;

use crate::codec;
use crate::commit::{read_commit_record, write_commit_record};
use crate::error::{Result, StorageError};
use crate::stats::IoStats;
use crate::vfs::Vfs;

const MANIFEST_MAGIC: [u8; 4] = *b"IVLS";
const MANIFEST_VERSION: u32 = 1;
/// magic + version + next_segment_id + next_tid + three u32 counts.
const MANIFEST_HEADER: usize = 4 + 4 + 8 + 8 + 4 + 4 + 4;
/// Upper bound on the segment / domain counts a decoder will accept; a
/// bit-flipped length field must not drive allocation.
const MAX_COUNT: u32 = 1 << 20;

/// One sealed segment: its file id and the inclusive tid range it covers.
///
/// Ranges of live segments are pairwise disjoint and sorted ascending;
/// routing a tid touches at most one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File-naming id (`seg-<id>`); ids are allocated by
    /// [`Manifest::next_segment_id`] and never reused.
    pub id: u64,
    /// Smallest tid stored in the segment.
    pub lo_tid: u64,
    /// Largest tid stored in the segment (inclusive).
    pub hi_tid: u64,
}

/// A pinned numeric quantisation domain for one attribute.
///
/// `min > max` (the default `+inf / -inf` pair) means "not yet pinned":
/// the attribute has seen no numeric value, matching the degenerate
/// domain a fresh in-memory index starts with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainPin {
    /// Domain lower bound.
    pub min: f64,
    /// Domain upper bound.
    pub max: f64,
}

impl DomainPin {
    /// The unpinned sentinel.
    pub fn unpinned() -> Self {
        DomainPin {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Whether the pin holds a real domain.
    pub fn is_pinned(&self) -> bool {
        self.min <= self.max
    }
}

impl Default for DomainPin {
    fn default() -> Self {
        Self::unpinned()
    }
}

/// The decoded manifest payload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// Next segment id to allocate; also the only id a crashed seal or
    /// compaction can have staged files under, which makes orphan
    /// collection a bounded probe.
    pub next_segment_id: u64,
    /// Tid watermark: the next memtable assigns tids starting here.
    pub next_tid: u64,
    /// Live sealed segments, oldest first (ascending tid ranges).
    pub segments: Vec<SegmentMeta>,
    /// Per-attribute numeric domain pins, indexed by attribute id.
    pub domains: Vec<DomainPin>,
    /// Encoded attribute catalog (opaque to the storage layer).
    pub catalog: Vec<u8>,
}

/// Serialise a manifest payload (the commit-record envelope is added by
/// [`write_manifest`]).
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        MANIFEST_HEADER + m.segments.len() * 24 + m.domains.len() * 16 + m.catalog.len(),
    );
    buf.extend_from_slice(&MANIFEST_MAGIC);
    buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    buf.extend_from_slice(&m.next_segment_id.to_le_bytes());
    buf.extend_from_slice(&m.next_tid.to_le_bytes());
    buf.extend_from_slice(&(m.segments.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(m.domains.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(m.catalog.len() as u32).to_le_bytes());
    for s in &m.segments {
        buf.extend_from_slice(&s.id.to_le_bytes());
        buf.extend_from_slice(&s.lo_tid.to_le_bytes());
        buf.extend_from_slice(&s.hi_tid.to_le_bytes());
    }
    for d in &m.domains {
        buf.extend_from_slice(&d.min.to_le_bytes());
        buf.extend_from_slice(&d.max.to_le_bytes());
    }
    buf.extend_from_slice(&m.catalog);
    buf
}

/// Decode a manifest payload. Total: every malformed input is an error.
pub fn decode_manifest(buf: &[u8]) -> Result<Manifest> {
    let expected = format!("segment manifest (magic \"IVLS\" v{MANIFEST_VERSION})");
    if buf.get(0..4) != Some(MANIFEST_MAGIC.as_slice()) {
        return Err(StorageError::Format {
            expected,
            found: format!("magic {:02x?}", buf.get(0..4).unwrap_or_default()),
        });
    }
    let corrupt = |m: String| StorageError::Corrupt(format!("segment manifest: {m}"));
    let short = || corrupt("truncated header".to_string());
    let version = codec::le_u32(buf, 4).ok_or_else(short)?;
    if version != MANIFEST_VERSION {
        return Err(StorageError::Format {
            expected,
            found: format!("manifest version {version}"),
        });
    }
    let next_segment_id = codec::le_u64(buf, 8).ok_or_else(short)?;
    let next_tid = codec::le_u64(buf, 16).ok_or_else(short)?;
    let n_segments = codec::le_u32(buf, 24).ok_or_else(short)?;
    let n_domains = codec::le_u32(buf, 28).ok_or_else(short)?;
    let catalog_len = codec::le_u32(buf, 32).ok_or_else(short)?;
    if n_segments > MAX_COUNT || n_domains > MAX_COUNT || catalog_len > MAX_COUNT {
        return Err(corrupt(format!(
            "implausible counts ({n_segments} segments, {n_domains} domains, \
             {catalog_len}-byte catalog)"
        )));
    }
    let need =
        MANIFEST_HEADER + n_segments as usize * 24 + n_domains as usize * 16 + catalog_len as usize;
    if buf.len() != need {
        return Err(corrupt(format!(
            "length mismatch: counts require {need} bytes, payload has {}",
            buf.len()
        )));
    }
    let mut off = MANIFEST_HEADER;
    let mut segments = Vec::with_capacity(n_segments as usize);
    let mut prev_hi: Option<u64> = None;
    for _ in 0..n_segments {
        let id = codec::le_u64(buf, off).ok_or_else(short)?;
        let lo_tid = codec::le_u64(buf, off + 8).ok_or_else(short)?;
        let hi_tid = codec::le_u64(buf, off + 16).ok_or_else(short)?;
        off += 24;
        if lo_tid > hi_tid {
            return Err(corrupt(format!(
                "segment {id} has inverted tid range [{lo_tid}, {hi_tid}]"
            )));
        }
        if id >= next_segment_id {
            return Err(corrupt(format!(
                "segment id {id} not below watermark {next_segment_id}"
            )));
        }
        if let Some(prev) = prev_hi {
            if lo_tid <= prev {
                return Err(corrupt(format!(
                    "segment {id} range [{lo_tid}, {hi_tid}] overlaps predecessor (hi {prev})"
                )));
            }
        }
        prev_hi = Some(hi_tid);
        segments.push(SegmentMeta { id, lo_tid, hi_tid });
    }
    let mut domains = Vec::with_capacity(n_domains as usize);
    for _ in 0..n_domains {
        let min = codec::le_f64(buf, off).ok_or_else(short)?;
        let max = codec::le_f64(buf, off + 8).ok_or_else(short)?;
        off += 16;
        domains.push(DomainPin { min, max });
    }
    let catalog = buf
        .get(off..off + catalog_len as usize)
        .map(<[u8]>::to_vec)
        .ok_or_else(|| corrupt("catalog out of bounds".to_string()))?;
    Ok(Manifest {
        next_segment_id,
        next_tid,
        segments,
        domains,
        catalog,
    })
}

/// Atomically replace the manifest at `path`, charging the written bytes
/// to `io`.
pub fn write_manifest(vfs: &dyn Vfs, path: &Path, m: &Manifest, io: &IoStats) -> Result<()> {
    let payload = encode_manifest(m);
    io.record_disk_write(payload.len() as u64);
    write_commit_record(vfs, path, &payload)
}

/// Read and decode the manifest at `path`, charging the read bytes to
/// `io`. A missing manifest surfaces as [`StorageError::Format`]
/// mentioning "missing commit record".
pub fn read_manifest(vfs: &dyn Vfs, path: &Path, io: &IoStats) -> Result<Manifest> {
    let payload = read_commit_record(vfs, path)?;
    io.record_disk_read(payload.len() as u64, true);
    decode_manifest(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use std::sync::Arc;

    fn sample() -> Manifest {
        Manifest {
            next_segment_id: 7,
            next_tid: 420,
            segments: vec![
                SegmentMeta {
                    id: 2,
                    lo_tid: 0,
                    hi_tid: 99,
                },
                SegmentMeta {
                    id: 5,
                    lo_tid: 100,
                    hi_tid: 311,
                },
            ],
            domains: vec![
                DomainPin::unpinned(),
                DomainPin {
                    min: -3.5,
                    max: 9.0,
                },
            ],
            catalog: b"opaque-catalog-bytes".to_vec(),
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = encode_manifest(&m);
        assert_eq!(decode_manifest(&bytes).unwrap(), m);
    }

    #[test]
    fn roundtrip_via_commit_record() {
        let vfs = Arc::new(MemVfs::new());
        let io = IoStats::new();
        let path = Path::new("dir/MANIFEST");
        let m = sample();
        write_manifest(vfs.as_ref(), path, &m, &io).unwrap();
        let back = read_manifest(vfs.as_ref(), path, &io).unwrap();
        assert_eq!(back, m);
        assert!(io.snapshot().bytes_written > 0);
        assert!(io.snapshot().bytes_read() > 0);
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = encode_manifest(&sample());
        for len in 0..bytes.len() {
            assert!(
                decode_manifest(&bytes[..len]).is_err(),
                "{len}-byte prefix decoded"
            );
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let bytes = encode_manifest(&sample());
        let m = sample();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                // A flip must either decode to *some* valid manifest
                // (flips inside f64 domains or catalog bytes are data, not
                // structure) or error out — decoding itself never panics.
                if let Ok(got) = decode_manifest(&flipped) {
                    assert_ne!(got, m, "flip {byte}:{bit} was a no-op");
                }
            }
        }
    }

    #[test]
    fn rejects_overlapping_ranges() {
        let mut m = sample();
        m.segments[1].lo_tid = 50;
        let bytes = encode_manifest(&m);
        assert!(decode_manifest(&bytes).is_err());
    }

    #[test]
    fn rejects_id_above_watermark() {
        let mut m = sample();
        m.segments[1].id = 7;
        let bytes = encode_manifest(&m);
        assert!(decode_manifest(&bytes).is_err());
    }
}
