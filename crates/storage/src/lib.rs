//! # iva-storage
//!
//! Storage substrate for the iVA-file reproduction: a paged file manager
//! with an LRU buffer pool, precise I/O accounting (sequential bytes vs.
//! random seeks), chained page lists for the append-at-tail structures the
//! paper's index is made of, and an analytical disk cost model used by the
//! benchmark harness to reproduce the 2009 disk-bound timing shape.
//!
//! Layering:
//!
//! ```text
//! ListWriter/ListReader/write_contiguous_list   (listfile)
//!                 |
//!               Pager  -- LruCache (buffer pool)
//!                 |
//!             BlockFile -- IoStats -- DiskModel
//! ```

#![warn(missing_docs)]

mod batch;
mod bytelog;
mod cache;
pub mod codec;
pub mod commit;
pub mod compress;
mod crc;
mod disk_model;
mod error;
mod fault;
mod file;
mod listfile;
pub mod manifest;
mod page;
mod pager;
mod stats;
pub mod vfs;

pub use batch::PinnedPages;
pub use bytelog::{sidecar_path, ByteLog, USER_HEADER_LEN};
pub use cache::{LruCache, PageRef};
pub use crc::{crc32c, crc32c_append};
pub use disk_model::DiskModel;
pub use error::{Result, StorageError};
pub use fault::{FaultKind, FaultVfs, PlannedFault};
pub use file::{BlockFile, FORMAT_VERSION, FRAME_TRAILER, MIN_PAGE_SIZE, SUPERBLOCK_LEN};
pub use listfile::{
    overwrite_in_list, read_list_to_vec, write_contiguous_list, ListHandle, ListReader, ListWriter,
    LIST_PAGE_HEADER,
};
pub use manifest::{
    decode_manifest, encode_manifest, read_manifest, write_manifest, DomainPin, Manifest,
    SegmentMeta,
};
pub use page::{PageId, DEFAULT_PAGE_SIZE};
pub use pager::{Pager, PagerOptions};
pub use stats::{IoSnapshot, IoStats};
pub use vfs::{read_to_vec, write_vec, MemVfs, RealVfs, Vfs, VfsFile};
