//! Counting block file: the lowest layer, either disk- or memory-backed.
//!
//! Every physical read is classified as *sequential* (the page directly
//! following the previously read page) or *random* (anything else, costing a
//! seek on spinning media). The classification feeds
//! [`IoStats`](crate::stats::IoStats) and ultimately the disk cost model.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{Result, StorageError};
use crate::page::PageId;
use crate::stats::IoStats;

enum Backing {
    Disk(File),
    Mem(Vec<u8>),
}

/// Number of concurrent sequential streams the read classifier tracks —
/// models OS readahead, which recognizes several interleaved sequential
/// scans (the iVA-file query plan scans the tuple list and a few vector
/// lists simultaneously; the paper notes "a small disk cache will avoid"
/// charging those as random accesses).
const READ_STREAMS: usize = 8;

/// A file of fixed-size pages with I/O accounting.
pub struct BlockFile {
    backing: Backing,
    page_size: usize,
    num_pages: u64,
    /// Last-read page per detected stream, for sequential classification.
    streams: [u64; READ_STREAMS],
    /// Round-robin replacement cursor for `streams`.
    stream_clock: usize,
    stats: IoStats,
}

impl BlockFile {
    /// Create (truncate) a disk-backed file.
    pub fn create(path: &Path, page_size: usize, stats: IoStats) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            backing: Backing::Disk(file),
            page_size,
            num_pages: 0,
            streams: [u64::MAX; READ_STREAMS],
            stream_clock: 0,
            stats,
        })
    }

    /// Open an existing disk-backed file. Its length must be a whole number
    /// of pages.
    pub fn open(path: &Path, page_size: usize, stats: IoStats) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of page size {page_size}"
            )));
        }
        Ok(Self {
            backing: Backing::Disk(file),
            page_size,
            num_pages: len / page_size as u64,
            streams: [u64::MAX; READ_STREAMS],
            stream_clock: 0,
            stats,
        })
    }

    /// Create a memory-backed file (used in tests and property checks;
    /// accounting behaves identically to the disk backing).
    pub fn create_mem(page_size: usize, stats: IoStats) -> Self {
        Self {
            backing: Backing::Mem(Vec::new()),
            page_size,
            num_pages: 0,
            streams: [u64::MAX; READ_STREAMS],
            stream_clock: 0,
            stats,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages currently in the file.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// Append a zeroed page, returning its id.
    pub fn grow(&mut self) -> Result<PageId> {
        let id = self.num_pages;
        let zeros = vec![0u8; self.page_size];
        match &mut self.backing {
            Backing::Disk(f) => {
                f.seek(SeekFrom::Start(id * self.page_size as u64))?;
                f.write_all(&zeros)?;
            }
            Backing::Mem(v) => v.extend_from_slice(&zeros),
        }
        self.stats.record_disk_write(self.page_size as u64);
        self.num_pages += 1;
        Ok(PageId(id))
    }

    /// Stream-aware classification: the read extends a tracked stream
    /// (same page or the next one) => sequential; otherwise it costs a
    /// seek and starts/steals a stream slot. The stream slot is left at
    /// `last`, so a run `[first, last]` continues the stream past its end.
    fn classify(&mut self, first: u64, last: u64) -> bool {
        let hit = self
            .streams
            .iter()
            .position(|&s| s != u64::MAX && (s == first || s + 1 == first));
        match hit {
            Some(slot) => {
                self.streams[slot] = last;
                true
            }
            None => {
                self.streams[self.stream_clock] = last;
                self.stream_clock = (self.stream_clock + 1) % READ_STREAMS;
                false
            }
        }
    }

    /// Physically read a page into `buf` (which must be exactly one page).
    pub fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        if id.0 >= self.num_pages {
            return Err(StorageError::PageOutOfBounds {
                page: id.0,
                pages: self.num_pages,
            });
        }
        let sequential = self.classify(id.0, id.0);
        match &mut self.backing {
            Backing::Disk(f) => {
                f.seek(SeekFrom::Start(id.offset(self.page_size)))?;
                f.read_exact(buf)?;
            }
            Backing::Mem(v) => {
                let start = id.offset(self.page_size) as usize;
                buf.copy_from_slice(&v[start..start + self.page_size]);
            }
        }
        self.stats
            .record_disk_read(self.page_size as u64, sequential);
        Ok(())
    }

    /// Physically read a run of consecutive pages starting at `start` into
    /// `buf` (whose length must be a whole number of pages) with **one**
    /// seek: only the run's first page can be charged as random; every
    /// following page is sequential by construction, and the disk backing
    /// issues a single positioned `read_exact` for the whole run. The
    /// stream slot advances to the run's last page so a later read of the
    /// next page continues sequentially.
    pub fn read_run(&mut self, start: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert!(buf.len().is_multiple_of(self.page_size));
        let pages = (buf.len() / self.page_size) as u64;
        if pages == 0 {
            return Ok(());
        }
        let last = start.0 + pages - 1;
        if last >= self.num_pages {
            return Err(StorageError::PageOutOfBounds {
                page: last,
                pages: self.num_pages,
            });
        }
        let sequential = self.classify(start.0, last);
        match &mut self.backing {
            Backing::Disk(f) => {
                f.seek(SeekFrom::Start(start.offset(self.page_size)))?;
                f.read_exact(buf)?;
            }
            Backing::Mem(v) => {
                let off = start.offset(self.page_size) as usize;
                buf.copy_from_slice(&v[off..off + buf.len()]);
            }
        }
        self.stats
            .record_disk_read(self.page_size as u64, sequential);
        for _ in 1..pages {
            self.stats.record_disk_read(self.page_size as u64, true);
        }
        Ok(())
    }

    /// Physically write a full page.
    pub fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        if id.0 >= self.num_pages {
            return Err(StorageError::PageOutOfBounds {
                page: id.0,
                pages: self.num_pages,
            });
        }
        match &mut self.backing {
            Backing::Disk(f) => {
                f.seek(SeekFrom::Start(id.offset(self.page_size)))?;
                f.write_all(buf)?;
            }
            Backing::Mem(v) => {
                let start = id.offset(self.page_size) as usize;
                v[start..start + self.page_size].copy_from_slice(buf);
            }
        }
        self.stats.record_disk_write(self.page_size as u64);
        Ok(())
    }

    /// Flush buffered writes to stable storage (no-op for memory backing).
    pub fn sync(&mut self) -> Result<()> {
        if let Backing::Disk(f) = &mut self.backing {
            f.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(mut f: BlockFile) {
        let p0 = f.grow().unwrap();
        let p1 = f.grow().unwrap();
        assert_eq!(p0, PageId(0));
        assert_eq!(p1, PageId(1));

        let mut a = vec![0u8; f.page_size()];
        a[0] = 0xAB;
        a[4095] = 0xCD;
        f.write_page(p0, &a).unwrap();

        let mut out = vec![0u8; f.page_size()];
        f.read_page(p0, &mut out).unwrap();
        assert_eq!(out, a);

        f.read_page(p1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_roundtrip() {
        roundtrip(BlockFile::create_mem(4096, IoStats::new()));
    }

    #[test]
    fn disk_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("iva-bf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.blk");
        let stats = IoStats::new();
        roundtrip(BlockFile::create(&path, 4096, stats.clone()).unwrap());

        let f = BlockFile::open(&path, 4096, stats).unwrap();
        assert_eq!(f.num_pages(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequential_vs_random_classification() {
        let stats = IoStats::new();
        let mut f = BlockFile::create_mem(4096, stats.clone());
        for _ in 0..4 {
            f.grow().unwrap();
        }
        let mut buf = vec![0u8; 4096];
        // First-ever read: random (position unknown).
        f.read_page(PageId(0), &mut buf).unwrap();
        // Next page: sequential.
        f.read_page(PageId(1), &mut buf).unwrap();
        // Re-read same page: treated as sequential (no seek).
        f.read_page(PageId(1), &mut buf).unwrap();
        // Jump backwards: random.
        f.read_page(PageId(0), &mut buf).unwrap();
        // Jump forward by 3: random.
        f.read_page(PageId(3), &mut buf).unwrap();

        let s = stats.snapshot();
        assert_eq!(s.disk_page_reads, 5);
        assert_eq!(s.random_seeks, 3);
        assert_eq!(s.seq_bytes_read, 2 * 4096);
        assert_eq!(s.random_bytes_read, 3 * 4096);
    }

    #[test]
    fn interleaved_streams_classified_sequential() {
        // Two interleaved sequential scans (a tuple list + a vector list,
        // as in the iVA query plan) must not be charged seeks after their
        // first pages.
        let stats = IoStats::new();
        let mut f = BlockFile::create_mem(4096, stats.clone());
        for _ in 0..20 {
            f.grow().unwrap();
        }
        let mut buf = vec![0u8; 4096];
        for i in 0..8u64 {
            f.read_page(PageId(i), &mut buf).unwrap(); // stream A: 0..8
            f.read_page(PageId(10 + i), &mut buf).unwrap(); // stream B: 10..18
        }
        let s = stats.snapshot();
        assert_eq!(s.disk_page_reads, 16);
        assert_eq!(s.random_seeks, 2, "only the two stream starts seek: {s:?}");
    }

    #[test]
    fn three_page_run_charges_one_seek() {
        // The batched-refinement contract: a coalesced run of adjacent
        // pages costs ONE random seek plus sequential transfer for the
        // rest — not three independent seeks.
        let stats = IoStats::new();
        let mut f = BlockFile::create_mem(4096, stats.clone());
        for _ in 0..8 {
            f.grow().unwrap();
        }
        let mut buf = vec![0u8; 3 * 4096];
        f.read_run(PageId(2), &mut buf).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.disk_page_reads, 3);
        assert_eq!(s.random_seeks, 1);
        assert_eq!(s.random_bytes_read, 4096);
        assert_eq!(s.seq_bytes_read, 2 * 4096);
        // The stream now sits at the run's last page: reading the next
        // page continues sequentially.
        let mut one = vec![0u8; 4096];
        f.read_page(PageId(5), &mut one).unwrap();
        assert_eq!(stats.snapshot().random_seeks, 1);
    }

    #[test]
    fn run_contents_match_page_reads() {
        let stats = IoStats::new();
        let mut f = BlockFile::create_mem(256, stats.clone());
        for i in 0..6u8 {
            f.grow().unwrap();
            f.write_page(PageId(u64::from(i)), &vec![i; 256]).unwrap();
        }
        let mut buf = vec![0u8; 4 * 256];
        f.read_run(PageId(1), &mut buf).unwrap();
        for (i, chunk) in buf.chunks(256).enumerate() {
            assert!(chunk.iter().all(|&b| b == i as u8 + 1));
        }
        // A run that would end past the file is rejected whole.
        let mut big = vec![0u8; 3 * 256];
        assert!(matches!(
            f.read_run(PageId(4), &mut big),
            Err(StorageError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn out_of_bounds_read_is_error() {
        let mut f = BlockFile::create_mem(4096, IoStats::new());
        let mut buf = vec![0u8; 4096];
        assert!(matches!(
            f.read_page(PageId(0), &mut buf),
            Err(StorageError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn open_rejects_partial_page() {
        let dir = std::env::temp_dir().join(format!("iva-bf2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.blk");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(matches!(
            BlockFile::open(&path, 4096, IoStats::new()),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
