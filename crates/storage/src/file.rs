//! Counting block file: the lowest layer, superblock + checksummed frames.
//!
//! Every physical read is classified as *sequential* (the page directly
//! following the previously read page) or *random* (anything else, costing a
//! seek on spinning media). The classification feeds
//! [`IoStats`](crate::stats::IoStats) and ultimately the disk cost model.
//!
//! # On-disk layout
//!
//! All I/O goes through a [`Vfs`], and the format is self-validating:
//!
//! ```text
//! [ superblock: 64 bytes ][ frame 0 ][ frame 1 ] ...
//! superblock = magic "IVFB" | version | page_size | zeros | crc32c
//! frame      = page data (page_size bytes) | crc32c (4) | reserved (4)
//! ```
//!
//! Upper layers see only *logical* pages of `page_size` bytes — the frame
//! trailer and superblock are invisible to them, and I/O accounting stays
//! in logical page units so the disk cost model is unchanged. Every read
//! verifies the frame's CRC32C before a byte is interpreted; a mismatch is
//! [`StorageError::ChecksumMismatch`], never a wrong answer.

use std::path::Path;

use crate::crc::crc32c;
use crate::error::{Result, StorageError};
use crate::page::PageId;
use crate::stats::IoStats;
use crate::vfs::{read_full_at, write_full_at, RealVfs, Vfs, VfsFile};

/// Magic at byte 0 of every block file.
pub const SUPERBLOCK_MAGIC: [u8; 4] = *b"IVFB";
/// Current block-file format version.
pub const FORMAT_VERSION: u32 = 1;
/// Size of the superblock preceding the first page frame.
pub const SUPERBLOCK_LEN: u64 = 64;
/// Per-page frame trailer: 4 bytes CRC32C + 4 reserved.
pub const FRAME_TRAILER: usize = 8;

/// Number of concurrent sequential streams the read classifier tracks —
/// models OS readahead, which recognizes several interleaved sequential
/// scans (the iVA-file query plan scans the tuple list and a few vector
/// lists simultaneously; the paper notes "a small disk cache will avoid"
/// charging those as random accesses).
const READ_STREAMS: usize = 8;

/// A file of fixed-size pages with checksummed frames and I/O accounting.
pub struct BlockFile {
    file: Box<dyn VfsFile>,
    page_size: usize,
    num_pages: u64,
    /// Verify frame CRCs on read (on by default; the checksum-overhead
    /// bench toggles this to measure the cost).
    verify: bool,
    /// Last-read page per detected stream, for sequential classification.
    streams: [u64; READ_STREAMS],
    /// Round-robin replacement cursor for `streams`.
    stream_clock: usize,
    stats: IoStats,
    /// Reusable frame-sized scratch buffer for reads and writes.
    scratch: Vec<u8>,
}

impl BlockFile {
    fn frame_size(&self) -> usize {
        self.page_size + FRAME_TRAILER
    }

    fn frame_offset(&self, id: u64) -> u64 {
        SUPERBLOCK_LEN + id * self.frame_size() as u64
    }

    fn new(file: Box<dyn VfsFile>, page_size: usize, num_pages: u64, stats: IoStats) -> Self {
        Self {
            file,
            page_size,
            num_pages,
            verify: true,
            streams: [u64::MAX; READ_STREAMS],
            stream_clock: 0,
            stats,
            scratch: vec![0u8; page_size + FRAME_TRAILER],
        }
    }

    fn superblock(page_size: usize) -> [u8; SUPERBLOCK_LEN as usize] {
        let mut sb = [0u8; SUPERBLOCK_LEN as usize];
        let fields = SUPERBLOCK_MAGIC
            .into_iter()
            .chain(FORMAT_VERSION.to_le_bytes())
            .chain((page_size as u32).to_le_bytes());
        for (dst, src) in sb.iter_mut().zip(fields) {
            *dst = src;
        }
        if let Some((body, tail)) = sb.split_last_chunk_mut::<4>() {
            *tail = crc32c(body).to_le_bytes();
        }
        sb
    }

    /// Create (truncate) a file through `vfs`, writing the superblock.
    pub fn create_with(
        vfs: &dyn Vfs,
        path: &Path,
        page_size: usize,
        stats: IoStats,
    ) -> Result<Self> {
        check_page_size(page_size)?;
        let file = vfs.create(path)?;
        write_full_at(file.as_ref(), &Self::superblock(page_size), 0)?;
        Ok(Self::new(file, page_size, 0, stats))
    }

    /// Open an existing file through `vfs`, validating the superblock. The
    /// file body must be a whole number of frames.
    pub fn open_with(vfs: &dyn Vfs, path: &Path, page_size: usize, stats: IoStats) -> Result<Self> {
        let (file, torn) = Self::open_impl(vfs, path, page_size, stats)?;
        if torn {
            return Err(StorageError::Corrupt(
                "file body is not a whole number of page frames (torn tail)".into(),
            ));
        }
        Ok(file)
    }

    /// Crash-tolerant open: a trailing partial frame (a torn append) is
    /// *excluded* from the page count instead of rejected, and reported in
    /// the returned flag so the caller's recovery can truncate it away.
    pub fn open_recovering(
        vfs: &dyn Vfs,
        path: &Path,
        page_size: usize,
        stats: IoStats,
    ) -> Result<(Self, bool)> {
        Self::open_impl(vfs, path, page_size, stats)
    }

    fn open_impl(
        vfs: &dyn Vfs,
        path: &Path,
        page_size: usize,
        stats: IoStats,
    ) -> Result<(Self, bool)> {
        check_page_size(page_size)?;
        let file = vfs.open(path)?;
        let len = file.len()?;
        let expected =
            format!("iVA block file (magic \"IVFB\" v{FORMAT_VERSION}, page size {page_size})");
        if len < SUPERBLOCK_LEN {
            return Err(StorageError::Format {
                expected,
                found: format!("{len}-byte file, too short for a superblock"),
            });
        }
        let mut sb = [0u8; SUPERBLOCK_LEN as usize];
        read_full_at(file.as_ref(), &mut sb, 0)?;
        // Total little-endian word reads: `zip` stops at whichever side is
        // shorter, so an out-of-range field index yields zeros, never a
        // panic (the superblock is a fixed 64-byte array, so in practice
        // every field is in range).
        let sb_field = |at: usize| -> [u8; 4] {
            let mut w = [0u8; 4];
            for (dst, src) in w.iter_mut().zip(sb.iter().skip(at)) {
                *dst = *src;
            }
            w
        };
        if sb_field(0) != SUPERBLOCK_MAGIC {
            return Err(StorageError::Format {
                expected,
                found: format!("magic {:02x?}", sb_field(0)),
            });
        }
        let version = u32::from_le_bytes(sb_field(4));
        if version != FORMAT_VERSION {
            return Err(StorageError::Format {
                expected,
                found: format!("format version {version}"),
            });
        }
        let file_ps = u32::from_le_bytes(sb_field(8));
        if file_ps as usize != page_size {
            return Err(StorageError::Format {
                expected,
                found: format!("page size {file_ps}"),
            });
        }
        let crc = u32::from_le_bytes(sb_field(60));
        let computed = sb
            .split_last_chunk::<4>()
            .map(|(body, _)| crc32c(body))
            .unwrap_or(!crc);
        if crc != computed {
            return Err(StorageError::Corrupt(format!(
                "superblock checksum mismatch: stored {crc:#010x}, computed {computed:#010x}"
            )));
        }
        let body = len - SUPERBLOCK_LEN;
        let frame = (page_size + FRAME_TRAILER) as u64;
        let torn = !body.is_multiple_of(frame);
        let num_pages = body / frame;
        Ok((Self::new(file, page_size, num_pages, stats), torn))
    }

    /// Create (truncate) a disk-backed file.
    pub fn create(path: &Path, page_size: usize, stats: IoStats) -> Result<Self> {
        Self::create_with(&RealVfs, path, page_size, stats)
    }

    /// Open an existing disk-backed file.
    pub fn open(path: &Path, page_size: usize, stats: IoStats) -> Result<Self> {
        Self::open_with(&RealVfs, path, page_size, stats)
    }

    /// Create a memory-backed file (used in tests and property checks;
    /// accounting behaves identically to the disk backing). With
    /// `IVA_VFS=fault` in the environment the backing is a pass-through
    /// [`FaultVfs`](crate::FaultVfs) instead, proving the fault-injection
    /// seam is functionally free.
    pub fn create_mem(page_size: usize, stats: IoStats) -> Self {
        let path = Path::new("mem.blk");
        let f = crate::vfs::default_mem_vfs()
            .create(path)
            // lint:allow(panic-reachability, "MemVfs::create is infallible; FaultVfs passthrough injects no faults at create")
            .expect("in-memory vfs create cannot fail");
        write_full_at(f.as_ref(), &Self::superblock(page_size), 0)
            // lint:allow(panic-reachability, "in-memory write with no fault plan cannot fail")
            .expect("in-memory superblock write cannot fail");
        Self::new(f, page_size, 0, stats)
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages currently in the file.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// Enable or disable CRC verification on reads (writes always stamp
    /// checksums). Used by the checksum-overhead bench.
    pub fn set_verify(&mut self, verify: bool) {
        self.verify = verify;
    }

    /// Drop pages `n..` from the file (crash recovery truncating torn or
    /// uncommitted appends). `n` past the current end is a no-op.
    pub fn truncate_pages(&mut self, n: u64) -> Result<()> {
        if n >= self.num_pages {
            return Ok(());
        }
        self.file.set_len(self.frame_offset(n))?;
        self.num_pages = n;
        Ok(())
    }

    /// Append a zeroed page, returning its id.
    pub fn grow(&mut self) -> Result<PageId> {
        let id = self.num_pages;
        self.scratch
            .get_mut(..self.page_size)
            .ok_or_else(scratch_short)?
            .fill(0);
        self.seal_scratch()?;
        write_full_at(self.file.as_ref(), &self.scratch, self.frame_offset(id))?;
        self.stats.record_disk_write(self.page_size as u64);
        self.num_pages += 1;
        Ok(PageId(id))
    }

    /// Stamp the CRC trailer over the page data currently in `scratch`.
    fn seal_scratch(&mut self) -> Result<()> {
        let (data, trailer) = self
            .scratch
            .split_at_mut_checked(self.page_size)
            .ok_or_else(scratch_short)?;
        let (crc_bytes, reserved) = trailer.split_at_mut_checked(4).ok_or_else(scratch_short)?;
        crc_bytes.copy_from_slice(&crc32c(data).to_le_bytes());
        reserved.fill(0);
        Ok(())
    }

    /// Verify one frame (`data ‖ crc ‖ reserved`) against its trailer.
    fn check_frame(&self, id: u64, frame: &[u8]) -> Result<()> {
        if !self.verify {
            return Ok(());
        }
        let trailer_err =
            || StorageError::Corrupt(format!("page {id} frame shorter than its checksum trailer"));
        let stored = frame
            .get(self.page_size..self.page_size + 4)
            .and_then(|b| <[u8; 4]>::try_from(b).ok())
            .map(u32::from_le_bytes)
            .ok_or_else(trailer_err)?;
        let computed = crc32c(frame.get(..self.page_size).ok_or_else(trailer_err)?);
        if stored != computed {
            return Err(StorageError::ChecksumMismatch {
                page: id,
                expected: stored,
                found: computed,
            });
        }
        Ok(())
    }

    /// Stream-aware classification: the read extends a tracked stream
    /// (same page or the next one) => sequential; otherwise it costs a
    /// seek and starts/steals a stream slot. The stream slot is left at
    /// `last`, so a run `[first, last]` continues the stream past its end.
    fn classify(&mut self, first: u64, last: u64) -> bool {
        let hit = self
            .streams
            .iter()
            .position(|&s| s != u64::MAX && (s == first || s + 1 == first));
        match hit {
            Some(slot) => {
                if let Some(s) = self.streams.get_mut(slot) {
                    *s = last;
                }
                true
            }
            None => {
                if let Some(s) = self.streams.get_mut(self.stream_clock) {
                    *s = last;
                }
                self.stream_clock = (self.stream_clock + 1) % READ_STREAMS;
                false
            }
        }
    }

    /// Physically read a page into `buf` (which must be exactly one page),
    /// verifying its checksum.
    pub fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        if id.0 >= self.num_pages {
            return Err(StorageError::PageOutOfBounds {
                page: id.0,
                pages: self.num_pages,
            });
        }
        let sequential = self.classify(id.0, id.0);
        let off = self.frame_offset(id.0);
        let mut scratch = std::mem::take(&mut self.scratch);
        let res = read_full_at(self.file.as_ref(), &mut scratch, off);
        self.scratch = scratch;
        res.map_err(truncated)?;
        self.check_frame(id.0, &self.scratch)?;
        buf.copy_from_slice(
            self.scratch
                .get(..self.page_size)
                .ok_or_else(scratch_short)?,
        );
        self.stats
            .record_disk_read(self.page_size as u64, sequential);
        Ok(())
    }

    /// Physically read a run of consecutive pages starting at `start` into
    /// `buf` (whose length must be a whole number of pages) with **one**
    /// seek: only the run's first page can be charged as random; every
    /// following page is sequential by construction, and the backing file
    /// is issued a single positioned read for the whole run. The stream
    /// slot advances to the run's last page so a later read of the next
    /// page continues sequentially. Every frame in the run is
    /// checksum-verified.
    pub fn read_run(&mut self, start: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert!(buf.len().is_multiple_of(self.page_size));
        let pages = (buf.len() / self.page_size) as u64;
        if pages == 0 {
            return Ok(());
        }
        let last = start.0 + pages - 1;
        if last >= self.num_pages {
            return Err(StorageError::PageOutOfBounds {
                page: last,
                pages: self.num_pages,
            });
        }
        let sequential = self.classify(start.0, last);
        let frame = self.frame_size();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize(pages as usize * frame, 0);
        let res = read_full_at(self.file.as_ref(), &mut scratch, self.frame_offset(start.0))
            .map_err(truncated)
            .and_then(|()| {
                for (k, (fr, out)) in scratch
                    .chunks_exact(frame)
                    .zip(buf.chunks_exact_mut(self.page_size))
                    .enumerate()
                {
                    self.check_frame(start.0 + k as u64, fr)?;
                    out.copy_from_slice(fr.get(..self.page_size).ok_or_else(scratch_short)?);
                }
                Ok(())
            });
        self.scratch = scratch;
        self.scratch.truncate(frame);
        res?;
        self.stats
            .record_disk_read(self.page_size as u64, sequential);
        for _ in 1..pages {
            self.stats.record_disk_read(self.page_size as u64, true);
        }
        Ok(())
    }

    /// Physically write a full page, stamping its checksum.
    pub fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        if id.0 >= self.num_pages {
            return Err(StorageError::PageOutOfBounds {
                page: id.0,
                pages: self.num_pages,
            });
        }
        self.scratch
            .get_mut(..self.page_size)
            .ok_or_else(scratch_short)?
            .copy_from_slice(buf);
        self.seal_scratch()?;
        write_full_at(self.file.as_ref(), &self.scratch, self.frame_offset(id.0))?;
        self.stats.record_disk_write(self.page_size as u64);
        Ok(())
    }

    /// Flush buffered writes to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()?;
        Ok(())
    }
}

/// Internal invariant surfaced as an error instead of a panic: the
/// scratch buffer is kept at exactly one frame between calls, so these
/// paths are unreachable in practice — but the block file serves
/// `no-panic-decode` scopes and must stay total.
fn scratch_short() -> StorageError {
    StorageError::Corrupt("block-file scratch buffer smaller than a frame".into())
}

/// Page sizes below this are rejected: the list-page header, record
/// headers and the commit record's tail image all assume a minimally
/// useful page.
pub const MIN_PAGE_SIZE: usize = 64;

fn check_page_size(page_size: usize) -> Result<()> {
    if page_size < MIN_PAGE_SIZE || page_size > u32::MAX as usize {
        return Err(StorageError::InvalidArgument(format!(
            "page size {page_size} outside supported range [{MIN_PAGE_SIZE}, 2^32)"
        )));
    }
    Ok(())
}

/// Map an `UnexpectedEof` from a positioned read (the file ends inside a
/// frame that the page count says exists) to a corruption error.
fn truncated(e: std::io::Error) -> StorageError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        StorageError::Corrupt("file truncated inside a page frame".into())
    } else {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use crate::vfs::{read_to_vec, write_vec, RealVfs, Vfs};

    fn roundtrip(mut f: BlockFile) {
        let p0 = f.grow().unwrap();
        let p1 = f.grow().unwrap();
        assert_eq!(p0, PageId(0));
        assert_eq!(p1, PageId(1));

        let mut a = vec![0u8; f.page_size()];
        a[0] = 0xAB;
        a[4095] = 0xCD;
        f.write_page(p0, &a).unwrap();

        let mut out = vec![0u8; f.page_size()];
        f.read_page(p0, &mut out).unwrap();
        assert_eq!(out, a);

        f.read_page(p1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_roundtrip() {
        roundtrip(BlockFile::create_mem(4096, IoStats::new()));
    }

    #[test]
    fn disk_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("iva-bf-{}", std::process::id()));
        RealVfs.create_dir_all(&dir).unwrap();
        let path = dir.join("t.blk");
        let stats = IoStats::new();
        roundtrip(BlockFile::create(&path, 4096, stats.clone()).unwrap());

        let f = BlockFile::open(&path, 4096, stats).unwrap();
        assert_eq!(f.num_pages(), 2);
        RealVfs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequential_vs_random_classification() {
        let stats = IoStats::new();
        let mut f = BlockFile::create_mem(4096, stats.clone());
        for _ in 0..4 {
            f.grow().unwrap();
        }
        let mut buf = vec![0u8; 4096];
        // First-ever read: random (position unknown).
        f.read_page(PageId(0), &mut buf).unwrap();
        // Next page: sequential.
        f.read_page(PageId(1), &mut buf).unwrap();
        // Re-read same page: treated as sequential (no seek).
        f.read_page(PageId(1), &mut buf).unwrap();
        // Jump backwards: random.
        f.read_page(PageId(0), &mut buf).unwrap();
        // Jump forward by 3: random.
        f.read_page(PageId(3), &mut buf).unwrap();

        let s = stats.snapshot();
        assert_eq!(s.disk_page_reads, 5);
        assert_eq!(s.random_seeks, 3);
        assert_eq!(s.seq_bytes_read, 2 * 4096);
        assert_eq!(s.random_bytes_read, 3 * 4096);
    }

    #[test]
    fn interleaved_streams_classified_sequential() {
        // Two interleaved sequential scans (a tuple list + a vector list,
        // as in the iVA query plan) must not be charged seeks after their
        // first pages.
        let stats = IoStats::new();
        let mut f = BlockFile::create_mem(4096, stats.clone());
        for _ in 0..20 {
            f.grow().unwrap();
        }
        let mut buf = vec![0u8; 4096];
        for i in 0..8u64 {
            f.read_page(PageId(i), &mut buf).unwrap(); // stream A: 0..8
            f.read_page(PageId(10 + i), &mut buf).unwrap(); // stream B: 10..18
        }
        let s = stats.snapshot();
        assert_eq!(s.disk_page_reads, 16);
        assert_eq!(s.random_seeks, 2, "only the two stream starts seek: {s:?}");
    }

    #[test]
    fn three_page_run_charges_one_seek() {
        // The batched-refinement contract: a coalesced run of adjacent
        // pages costs ONE random seek plus sequential transfer for the
        // rest — not three independent seeks.
        let stats = IoStats::new();
        let mut f = BlockFile::create_mem(4096, stats.clone());
        for _ in 0..8 {
            f.grow().unwrap();
        }
        let mut buf = vec![0u8; 3 * 4096];
        f.read_run(PageId(2), &mut buf).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.disk_page_reads, 3);
        assert_eq!(s.random_seeks, 1);
        assert_eq!(s.random_bytes_read, 4096);
        assert_eq!(s.seq_bytes_read, 2 * 4096);
        // The stream now sits at the run's last page: reading the next
        // page continues sequentially.
        let mut one = vec![0u8; 4096];
        f.read_page(PageId(5), &mut one).unwrap();
        assert_eq!(stats.snapshot().random_seeks, 1);
    }

    #[test]
    fn run_contents_match_page_reads() {
        let stats = IoStats::new();
        let mut f = BlockFile::create_mem(256, stats.clone());
        for i in 0..6u8 {
            f.grow().unwrap();
            f.write_page(PageId(u64::from(i)), &vec![i; 256]).unwrap();
        }
        let mut buf = vec![0u8; 4 * 256];
        f.read_run(PageId(1), &mut buf).unwrap();
        for (i, chunk) in buf.chunks(256).enumerate() {
            assert!(chunk.iter().all(|&b| b == i as u8 + 1));
        }
        // A run that would end past the file is rejected whole.
        let mut big = vec![0u8; 3 * 256];
        assert!(matches!(
            f.read_run(PageId(4), &mut big),
            Err(StorageError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn out_of_bounds_read_is_error() {
        let mut f = BlockFile::create_mem(4096, IoStats::new());
        let mut buf = vec![0u8; 4096];
        assert!(matches!(
            f.read_page(PageId(0), &mut buf),
            Err(StorageError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn open_rejects_garbage_files() {
        let dir = std::env::temp_dir().join(format!("iva-bf2-{}", std::process::id()));
        RealVfs.create_dir_all(&dir).unwrap();

        // Zero-length file: no superblock at all.
        let empty = dir.join("empty.blk");
        write_vec(&RealVfs, &empty, b"").unwrap();
        assert!(matches!(
            BlockFile::open(&empty, 4096, IoStats::new()),
            Err(StorageError::Format { .. })
        ));

        // Truncated superblock.
        let trunc = dir.join("trunc.blk");
        write_vec(&RealVfs, &trunc, vec![0u8; 40]).unwrap();
        assert!(matches!(
            BlockFile::open(&trunc, 4096, IoStats::new()),
            Err(StorageError::Format { .. })
        ));

        // Full-length garbage: wrong magic.
        let garbage = dir.join("garbage.blk");
        write_vec(&RealVfs, &garbage, vec![0x5Au8; 4096]).unwrap();
        let err = match BlockFile::open(&garbage, 4096, IoStats::new()) {
            Err(e) => e,
            Ok(_) => panic!("garbage file must not open"),
        };
        match err {
            StorageError::Format { expected, found } => {
                assert!(expected.contains("IVFB"), "{expected}");
                assert!(found.contains("magic"), "{found}");
            }
            other => panic!("expected Format error, got {other}"),
        }
        RealVfs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_wrong_version_and_page_size() {
        let dir = std::env::temp_dir().join(format!("iva-bf3-{}", std::process::id()));
        RealVfs.create_dir_all(&dir).unwrap();
        let path = dir.join("v.blk");
        {
            BlockFile::create(&path, 256, IoStats::new()).unwrap();
        }
        // Mismatched page size at open.
        assert!(matches!(
            BlockFile::open(&path, 512, IoStats::new()),
            Err(StorageError::Format { .. })
        ));
        // Bump the version field (and recompute the superblock CRC so only
        // the version is wrong).
        let mut bytes = read_to_vec(&RealVfs, &path).unwrap();
        bytes[4] = 99;
        let crc = crate::crc::crc32c(&bytes[0..60]);
        bytes[60..64].copy_from_slice(&crc.to_le_bytes());
        write_vec(&RealVfs, &path, &bytes).unwrap();
        assert!(matches!(
            BlockFile::open(&path, 256, IoStats::new()),
            Err(StorageError::Format { .. })
        ));
        RealVfs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_detected_at_read_time() {
        let dir = std::env::temp_dir().join(format!("iva-bf4-{}", std::process::id()));
        RealVfs.create_dir_all(&dir).unwrap();
        let path = dir.join("flip.blk");
        {
            let mut f = BlockFile::create(&path, 256, IoStats::new()).unwrap();
            f.grow().unwrap();
            f.write_page(PageId(0), &[0xA5u8; 256]).unwrap();
            f.sync().unwrap();
        }
        // Flip one bit in the middle of page 0's data.
        let mut bytes = read_to_vec(&RealVfs, &path).unwrap();
        let victim = SUPERBLOCK_LEN as usize + 100;
        bytes[victim] ^= 0x08;
        write_vec(&RealVfs, &path, &bytes).unwrap();

        let mut f = BlockFile::open(&path, 256, IoStats::new()).unwrap();
        let mut buf = vec![0u8; 256];
        assert!(matches!(
            f.read_page(PageId(0), &mut buf),
            Err(StorageError::ChecksumMismatch { page: 0, .. })
        ));
        // With verification off the flip goes unnoticed (bench mode only).
        f.set_verify(false);
        f.read_page(PageId(0), &mut buf).unwrap();
        RealVfs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_pages_drops_tail() {
        let mut f = BlockFile::create_mem(256, IoStats::new());
        for i in 0..5u8 {
            f.grow().unwrap();
            f.write_page(PageId(u64::from(i)), &[i; 256]).unwrap();
        }
        f.truncate_pages(2).unwrap();
        assert_eq!(f.num_pages(), 2);
        let mut buf = vec![0u8; 256];
        f.read_page(PageId(1), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
        assert!(f.read_page(PageId(2), &mut buf).is_err());
        // Growing again reuses the dropped range cleanly.
        let id = f.grow().unwrap();
        assert_eq!(id, PageId(2));
        f.read_page(PageId(2), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn tiny_page_size_rejected() {
        assert!(matches!(
            BlockFile::create_with(&MemVfs::new(), Path::new("t"), 16, IoStats::new()),
            Err(StorageError::InvalidArgument(_))
        ));
    }
}
