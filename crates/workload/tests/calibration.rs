//! Calibration: the generated datasets must reproduce the statistics the
//! paper reports for its Google Base subset (Sec. I-A / V-A), since those
//! statistics drive every size formula and filtering trade-off.

use iva_storage::{IoStats, PagerOptions};
use iva_swt::{AttrType, Value};
use iva_workload::{Dataset, WorkloadConfig};

fn opts() -> PagerOptions {
    PagerOptions::default()
}

#[test]
fn sparsity_matches_target() {
    let ds = Dataset::generate(&WorkloadConfig::scaled(20_000));
    let mean = ds.mean_defined();
    assert!(
        (13.0..20.0).contains(&mean),
        "mean defined attrs {mean} should be near the paper's 16.3"
    );
}

#[test]
fn string_length_matches_target() {
    let ds = Dataset::generate(&WorkloadConfig::scaled(5_000));
    let mean = ds.mean_string_len();
    assert!(
        (11.0..23.0).contains(&mean),
        "mean string length {mean} should be near the paper's 16.8"
    );
}

#[test]
fn text_numeric_split_matches() {
    let cfg = WorkloadConfig::scaled(2_000);
    let ds = Dataset::generate(&cfg);
    let text = ds
        .attr_types
        .iter()
        .filter(|t| **t == AttrType::Text)
        .count();
    let expect = cfg.n_text_attrs();
    assert_eq!(text, expect);
    // 94% of attributes are text, as in Google Base.
    let frac = text as f64 / ds.attr_types.len() as f64;
    assert!((0.90..0.98).contains(&frac), "{frac}");
}

#[test]
fn attribute_popularity_is_skewed() {
    // Use a wide catalog: with few attributes, per-tuple distinctness
    // saturates the popular attributes and flattens the skew (which is
    // also what happens in reality on narrow schemas).
    let cfg = WorkloadConfig {
        n_attrs: 400,
        ..WorkloadConfig::scaled(10_000)
    };
    let ds = Dataset::generate(&cfg);
    let mut counts = vec![0u64; ds.attr_types.len()];
    for t in &ds.tuples {
        for (a, _) in t.iter() {
            counts[a.index()] += 1;
        }
    }
    let mut sorted = counts.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    // The head attribute is used vastly more than the median one.
    let median = sorted[sorted.len() / 2];
    assert!(
        sorted[0] > median.max(1) * 10,
        "head {} vs median {median}: popularity should be Zipf-skewed",
        sorted[0]
    );
}

#[test]
fn values_are_shared_across_tuples() {
    // Value sharing is what gives similarity queries non-trivial answers.
    let ds = Dataset::generate(&WorkloadConfig::scaled(5_000));
    let mut seen = std::collections::HashMap::<(u32, &str), u32>::new();
    for t in &ds.tuples {
        for (a, v) in t.iter() {
            if let Value::Text(strings) = v {
                for s in strings {
                    *seen.entry((a.0, s.as_str())).or_default() += 1;
                }
            }
        }
    }
    let repeated = seen.values().filter(|&&c| c >= 2).count();
    assert!(
        repeated * 5 > seen.len(),
        "at least ~20% of (attr, string) pairs should repeat: {repeated}/{}",
        seen.len()
    );
}

#[test]
fn generation_is_deterministic_despite_parallelism() {
    let cfg = WorkloadConfig::scaled(20_000); // > 1 chunk (8192 per chunk)
    let a = Dataset::generate(&cfg);
    let b = Dataset::generate(&cfg);
    assert_eq!(a.tuples.len(), b.tuples.len());
    for (x, y) in a.tuples.iter().zip(&b.tuples) {
        assert_eq!(x, y);
    }
}

#[test]
fn dataset_materializes_into_table() {
    let ds = Dataset::generate(&WorkloadConfig::scaled(1_000));
    let table = ds.build_table(&opts(), IoStats::new()).unwrap();
    assert_eq!(table.file().total_records(), 1_000);
    assert_eq!(table.catalog().len(), ds.attr_types.len());
    assert_eq!(table.stats().tuple_count, 1_000);
    // Numeric attributes have observed domains.
    let any_numeric = ds
        .attr_types
        .iter()
        .enumerate()
        .find(|(_, t)| **t == AttrType::Numeric)
        .map(|(i, _)| i)
        .unwrap();
    let _ = table.stats().attr(iva_swt::AttrId(any_numeric as u32));
}
