//! Human-style typo injection.
//!
//! "In CWMSs, strings are typically short, and typos are very common
//! because of the participation of large groups of people" (Sec. I-B) —
//! e.g. the paper's running "Cannon"/"Canon" example. A typo is one random
//! single-character edit: insertion, deletion, substitution, or an
//! adjacent transposition (two substitutions' worth of edit distance, but
//! the most common human slip).

use rand::Rng;

/// Apply one random typo to an ASCII string. Returns the mutated string;
/// the edit distance to the input is 1 (or 2 for a transposition).
pub fn apply_typo<R: Rng>(rng: &mut R, s: &str) -> String {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return "x".to_string();
    }
    let mut out = bytes.to_vec();
    let op = rng.random_range(0..4u8);
    let pos = rng.random_range(0..bytes.len());
    let letter = b'a' + rng.random_range(0..26u8);
    match op {
        0 => out.insert(pos, letter), // duplicate-finger insertion
        1 => {
            if out.len() > 1 {
                out.remove(pos);
            } else {
                out[0] = letter;
            }
        }
        2 => out[pos] = letter,
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else if out.len() > 1 {
                let l = out.len();
                out.swap(l - 2, l - 1);
            } else {
                out[0] = letter;
            }
        }
    }
    String::from_utf8(out).expect("ascii in, ascii out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn typo_is_small_edit() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut changed = 0;
        for _ in 0..500 {
            let s = "digital camera";
            let t = apply_typo(&mut rng, s);
            let d = iva_text_ed(s, &t);
            // A typo can be a no-op (substituting a letter with itself,
            // transposing equal characters) but never a large edit.
            assert!(d <= 2, "{s} -> {t} distance {d}");
            if d > 0 {
                changed += 1;
            }
        }
        assert!(
            changed > 400,
            "typos almost always change the string: {changed}/500"
        );
    }

    // Local Levenshtein to avoid a test-only dependency cycle.
    fn iva_text_ed(a: &str, b: &str) -> usize {
        let (a, b) = (a.as_bytes(), b.as_bytes());
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        let mut cur = vec![0usize; b.len() + 1];
        for (i, &ca) in a.iter().enumerate() {
            cur[0] = i + 1;
            for (j, &cb) in b.iter().enumerate() {
                cur[j + 1] = (prev[j] + usize::from(ca != cb))
                    .min(prev[j + 1] + 1)
                    .min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }

    #[test]
    fn empty_and_single_char_inputs() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(!apply_typo(&mut rng, "").is_empty());
        for _ in 0..50 {
            let t = apply_typo(&mut rng, "a");
            assert!(!t.is_empty());
        }
    }
}
