//! Workload configuration, calibrated to the statistics the paper reports
//! for its Google Base subset (Sec. I-A and V-A): 779,019 tuples; 1,147
//! attributes of which 1,081 are text; 16.3 attributes defined per tuple on
//! average; 16.8-byte average string length.

/// Parameters of the synthetic CWMS dataset generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of tuples.
    pub n_tuples: usize,
    /// Number of attributes in the catalog.
    pub n_attrs: usize,
    /// Fraction of attributes that are text (paper: 1081/1147 ≈ 0.9425).
    pub text_fraction: f64,
    /// Mean number of defined attributes per tuple (paper: 16.3).
    pub mean_defined: f64,
    /// Target mean string length in bytes (paper: 16.8).
    pub mean_string_len: f64,
    /// Zipf skew of attribute popularity (community attributes are heavily
    /// skewed: a few attributes like "price" appear everywhere).
    pub zipf_exponent: f64,
    /// Distinct values in each attribute's vocabulary (drives value sharing
    /// and thus similarity-query selectivity).
    pub vocab_per_attr: usize,
    /// Probability that a stored string carries a human-style typo.
    pub typo_rate: f64,
    /// Probability that a text value holds two strings instead of one.
    pub multi_string_rate: f64,
    /// Probability that a tuple is a (lightly perturbed) repost of an
    /// earlier listing — community systems are full of near-duplicate
    /// postings, which is what gives top-k result sets their tight
    /// distance profile.
    pub duplicate_rate: f64,
    /// RNG seed; the dataset is a pure function of this configuration.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's full-scale dataset shape.
    pub fn paper_full() -> Self {
        Self {
            n_tuples: 779_019,
            n_attrs: 1_147,
            text_fraction: 1_081.0 / 1_147.0,
            mean_defined: 16.3,
            mean_string_len: 16.8,
            zipf_exponent: 1.0,
            vocab_per_attr: 1_000,
            typo_rate: 0.02,
            multi_string_rate: 0.12,
            duplicate_rate: 0.15,
            seed: 0x1CDE_2009,
        }
    }

    /// A scaled-down dataset with the same shape: `n` tuples over the
    /// paper's **full-width** catalog. The catalog is deliberately not
    /// narrowed with the tuple count: the iVA-file's whole premise is that
    /// per-attribute definedness is ~1.4 % (16.3 of 1,147); shrinking the
    /// catalog proportionally would make every attribute dense and erase
    /// the effect under study. Only the vocabulary scales (so value
    /// sharing stays realistic at small tuple counts).
    pub fn scaled(n_tuples: usize) -> Self {
        let full = Self::paper_full();
        let vocab = (n_tuples / 50).clamp(20, 1_000);
        Self {
            n_tuples,
            vocab_per_attr: vocab,
            ..full
        }
    }

    /// Number of text attributes.
    pub fn n_text_attrs(&self) -> usize {
        ((self.n_attrs as f64) * self.text_fraction).round() as usize
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_tuples == 0 || self.n_attrs == 0 {
            return Err("empty dataset".into());
        }
        if !(0.0..=1.0).contains(&self.text_fraction) {
            return Err(format!("text fraction {} out of range", self.text_fraction));
        }
        if self.mean_defined < 1.0 || self.mean_defined > self.n_attrs as f64 {
            return Err(format!("mean defined {} out of range", self.mean_defined));
        }
        if !(0.0..=1.0).contains(&self.typo_rate)
            || !(0.0..=1.0).contains(&self.multi_string_rate)
            || !(0.0..=1.0).contains(&self.duplicate_rate)
        {
            return Err("rates must be in [0,1]".into());
        }
        Ok(())
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::scaled(20_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape() {
        let c = WorkloadConfig::paper_full();
        assert_eq!(c.n_tuples, 779_019);
        assert_eq!(c.n_attrs, 1_147);
        assert_eq!(c.n_text_attrs(), 1_081);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_preserves_sparsity() {
        let c = WorkloadConfig::scaled(10_000);
        assert_eq!(c.n_tuples, 10_000);
        assert!(c.n_attrs >= 40);
        assert_eq!(c.mean_defined, 16.3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_nonsense() {
        let c = WorkloadConfig {
            n_tuples: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = WorkloadConfig {
            text_fraction: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = WorkloadConfig {
            mean_defined: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
