//! # iva-workload
//!
//! Synthetic stand-in for the paper's Google Base subset (see DESIGN.md,
//! substitution 1): a deterministic generator producing sparse wide
//! datasets matching every statistic the paper reports — 1,147 attributes
//! (94 % text), 16.3 defined attributes per tuple, 16.8-byte mean strings,
//! Zipf-skewed attribute popularity, shared per-attribute vocabularies and
//! human-style typos — plus the query-set sampler of Sec. V-A (values
//! drawn from the data distribution; 50 queries, 10 warm).

#![warn(missing_docs)]

mod config;
mod generator;
mod query_gen;
mod typo;
mod vocab;
mod zipf;

pub use config::WorkloadConfig;
pub use generator::Dataset;
pub use query_gen::{generate_query_set, sample_query, QuerySet};
pub use typo::apply_typo;
pub use vocab::{attribute_vocabulary, phrase, word};
pub use zipf::Zipf;
