//! Query workload synthesis (Sec. V-A).
//!
//! "To simulate the actual workload in real applications, we generate
//! several sets of queries by randomly selecting values in the dataset so
//! that the distribution of queries follows the data distribution of the
//! dataset. Each selected value and its attribute id form one value in a
//! structured query. Each query set has 50 queries with the first 10
//! queries used for warming the file cache and the other 40 for experiment
//! evaluation. The number of defined values per query is fixed in one
//! query set."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use iva_core::Query;
use iva_swt::Value;

use crate::generator::Dataset;

/// A query set in the paper's shape: fixed values-per-query, warm prefix.
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// All queries (warm prefix first).
    pub queries: Vec<Query>,
    /// How many leading queries warm the cache (not measured).
    pub warm: usize,
}

impl QuerySet {
    /// The measured suffix.
    pub fn measured(&self) -> &[Query] {
        &self.queries[self.warm..]
    }
}

/// Generate the paper's query set: `total` queries of exactly
/// `values_per_query` values each, sampled from the data distribution.
pub fn generate_query_set(
    dataset: &Dataset,
    values_per_query: usize,
    total: usize,
    warm: usize,
    seed: u64,
) -> QuerySet {
    assert!(warm < total, "warm prefix must leave measured queries");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(total);
    while queries.len() < total {
        if let Some(q) = sample_query(dataset, values_per_query, &mut rng) {
            queries.push(q);
        }
    }
    QuerySet { queries, warm }
}

/// Sample one query of `values_per_query` values, drawn from a single
/// random tuple (a user describes *one* kind of item, so the queried
/// attributes co-occur — the hidden-schema structure of real CWMS data).
/// Values are copied verbatim from the tuple, so "the distribution of
/// queries follows the data distribution of the dataset" (Sec. V-A).
pub fn sample_query(dataset: &Dataset, values_per_query: usize, rng: &mut StdRng) -> Option<Query> {
    for _ in 0..2_000 {
        let t = &dataset.tuples[rng.random_range(0..dataset.tuples.len())];
        if t.arity() < values_per_query {
            continue;
        }
        // Choose `values_per_query` distinct defined attributes.
        let mut picks: Vec<usize> = (0..t.arity()).collect();
        for i in (1..picks.len()).rev() {
            picks.swap(i, rng.random_range(0..=i));
        }
        picks.truncate(values_per_query);
        let mut q = Query::new();
        for &pick in &picks {
            let (attr, value) = t.iter().nth(pick).unwrap();
            match value {
                Value::Text(strings) => {
                    let s = &strings[rng.random_range(0..strings.len())];
                    q = q.text(attr, s.clone());
                }
                Value::Num(v) => {
                    q = q.num(attr, *v);
                }
            }
        }
        if q.len() == values_per_query {
            return Some(q);
        }
    }
    None // dataset too small/degenerate for this shape
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;

    fn small_dataset() -> Dataset {
        Dataset::generate(&WorkloadConfig::scaled(500))
    }

    #[test]
    fn query_set_shape_matches_paper() {
        let ds = small_dataset();
        let qs = generate_query_set(&ds, 3, 50, 10, 7);
        assert_eq!(qs.queries.len(), 50);
        assert_eq!(qs.measured().len(), 40);
        for q in &qs.queries {
            assert_eq!(q.len(), 3);
        }
    }

    #[test]
    fn queries_are_deterministic() {
        let ds = small_dataset();
        let a = generate_query_set(&ds, 3, 10, 2, 9);
        let b = generate_query_set(&ds, 3, 10, 2, 9);
        assert_eq!(a.queries, b.queries);
        let c = generate_query_set(&ds, 3, 10, 2, 10);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn query_values_come_from_dataset() {
        let ds = small_dataset();
        let qs = generate_query_set(&ds, 1, 20, 1, 3);
        for q in &qs.queries {
            let (attr, qv) = q.iter().next().unwrap();
            let found = ds.tuples.iter().any(|t| match (t.get(attr), qv) {
                (Some(Value::Text(ss)), iva_core::QueryValue::Text(s)) => ss.contains(s),
                (Some(Value::Num(v)), iva_core::QueryValue::Num(x)) => v == x,
                _ => false,
            });
            assert!(found, "query value not present in dataset");
        }
    }

    #[test]
    fn wide_queries_supported() {
        let ds = small_dataset();
        let qs = generate_query_set(&ds, 9, 10, 1, 4);
        for q in &qs.queries {
            assert_eq!(q.len(), 9);
        }
    }
}
