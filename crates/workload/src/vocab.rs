//! Deterministic vocabulary synthesis.
//!
//! Each attribute owns a vocabulary of short human-looking phrases (product
//! names, categories, brands...). Values are drawn from the vocabulary so
//! that tuples share values — which is what gives similarity queries
//! non-trivial answers, exactly like the real Google Base strings the
//! paper sampled its queries from.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ONSETS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "ch",
    "st", "br", "cr", "tr", "pl",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];
const CODAS: &[&str] = &["", "n", "r", "s", "t", "l", "m", "ck", "nd", "st"];

/// One pronounceable pseudo-word of 1–3 syllables.
pub fn word<R: Rng>(rng: &mut R) -> String {
    let syllables = rng.random_range(1..=3);
    let mut w = String::new();
    for _ in 0..syllables {
        fn pick<'a>(table: &[&'a str], at: usize) -> &'a str {
            table.get(at).copied().unwrap_or_default()
        }
        w.push_str(pick(ONSETS, rng.random_range(0..ONSETS.len())));
        w.push_str(pick(NUCLEI, rng.random_range(0..NUCLEI.len())));
        w.push_str(pick(CODAS, rng.random_range(0..CODAS.len())));
    }
    w
}

/// A short phrase targeting `mean_len` bytes on average, with the high
/// length variance of real community strings (brand words, long product
/// titles, model numbers like "450d").
pub fn phrase<R: Rng>(rng: &mut R, mean_len: f64) -> String {
    let mut p = word(rng);
    // ~25% stay single short words ("canon"); the rest grow toward and
    // past the target, so lengths spread from ~3 to ~3x the mean — length
    // is a powerful part of the signature lower bound.
    if rng.random::<f64>() >= 0.25 {
        let target = mean_len * (0.3 + 1.2 * rng.random::<f64>());
        while (p.len() as f64) < target {
            p.push(' ');
            p.push_str(&word(rng));
        }
    }
    // Model-number token ("450d", "mk2") on a fifth of phrases.
    if rng.random::<f64>() < 0.2 {
        p.push(' ');
        p.push_str(&format!(
            "{}{}",
            rng.random_range(1..1000),
            (b'a' + rng.random_range(0..26u8)) as char
        ));
    }
    p
}

/// The vocabulary of one attribute: `size` distinct phrases, derived purely
/// from `(dataset seed, attr id)`.
pub fn attribute_vocabulary(seed: u64, attr_id: u32, size: usize, mean_len: f64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(attr_id) << 32) ^ 0xA77C_0FFE);
    let mut vocab = Vec::with_capacity(size);
    let mut seen = std::collections::HashSet::with_capacity(size);
    while vocab.len() < size {
        let p = phrase(&mut rng, mean_len);
        if seen.insert(p.clone()) {
            vocab.push(p);
        }
    }
    vocab
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_nonempty_ascii() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let w = word(&mut rng);
            assert!(!w.is_empty());
            assert!(w.is_ascii());
        }
    }

    #[test]
    fn phrases_near_target_length() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..2000)
            .map(|_| phrase(&mut rng, 16.8).len() as f64)
            .sum::<f64>()
            / 2000.0;
        assert!((10.0..24.0).contains(&mean), "mean phrase length {mean}");
    }

    #[test]
    fn vocabulary_is_deterministic_and_distinct() {
        let a = attribute_vocabulary(42, 7, 50, 16.8);
        let b = attribute_vocabulary(42, 7, 50, 16.8);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 50);
        // Different attribute -> different vocabulary.
        let c = attribute_vocabulary(42, 8, 50, 16.8);
        assert_ne!(a, c);
    }
}
