//! Zipf-distributed sampling for attribute popularity.
//!
//! Community datasets have heavily skewed attribute usage (a handful of
//! near-universal attributes such as *price* or *type*, and a long tail of
//! rare user-defined ones). A precomputed-CDF sampler keeps draws `O(log n)`.

use rand::Rng;

/// Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank = i) ∝ 1/(i+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler (O(n) precomputation).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the support is empty (never: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50] * 5);
        // All mass lands in range.
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn exponent_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5_000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(50, 1.2);
        let a: Vec<usize> = (0..20)
            .map(|_| z.sample(&mut StdRng::seed_from_u64(9)))
            .collect();
        let b: Vec<usize> = (0..20)
            .map(|_| z.sample(&mut StdRng::seed_from_u64(9)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn single_element_support() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
