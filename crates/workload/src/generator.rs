//! Dataset synthesis.
//!
//! Generates a sparse wide table matching the paper's Google Base
//! statistics: Zipf attribute popularity, per-attribute vocabularies with
//! heavy value sharing, occasional multi-string values and typos, and
//! numerical attributes with realistic clustered domains. Fully
//! deterministic in the configuration seed; generation is parallelized
//! over tuple chunks with per-chunk derived seeds so parallelism does not
//! change the output.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use iva_storage::{IoStats, PagerOptions};
use iva_swt::{AttrId, AttrType, Result as SwtResult, SwtTable, Tuple, Value};

use crate::config::WorkloadConfig;
use crate::typo::apply_typo;
use crate::vocab::attribute_vocabulary;
use crate::zipf::Zipf;

/// A fully generated dataset: attribute schema plus tuples, kept in memory
/// so query workloads can be sampled from it.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The generating configuration.
    pub config: WorkloadConfig,
    /// Attribute types in catalog order (text first, then numeric).
    pub attr_types: Vec<AttrType>,
    /// All generated tuples.
    pub tuples: Vec<Tuple>,
}

fn attr_type_of(cfg: &WorkloadConfig, attr: usize) -> AttrType {
    if attr < cfg.n_text_attrs() {
        AttrType::Text
    } else {
        AttrType::Numeric
    }
}

/// Numeric attribute domains: each attribute gets its own scale so that
/// relative-domain codes matter (the Sec. III-C motivation).
fn numeric_value<R: Rng>(rng: &mut R, attr: usize) -> f64 {
    let scale = 10f64.powi((attr % 6) as i32); // 1 .. 100k
    (rng.random::<f64>() * scale * 100.0).round() / 100.0
}

impl Dataset {
    /// Generate deterministically from `cfg`.
    pub fn generate(cfg: &WorkloadConfig) -> Self {
        cfg.validate().expect("invalid workload config");
        let attr_types: Vec<AttrType> = (0..cfg.n_attrs).map(|a| attr_type_of(cfg, a)).collect();

        // Popularity: a random permutation of attributes gets Zipf ranks so
        // text and numeric attributes are interleaved in popularity.
        let mut perm: Vec<u32> = (0..cfg.n_attrs as u32).collect();
        let mut prng = StdRng::seed_from_u64(cfg.seed ^ SEED_PERM);
        for i in (1..perm.len()).rev() {
            perm.swap(i, prng.random_range(0..=i));
        }

        // Hidden schema (the clustering structure Chu et al. [4] mine from
        // real CWMS data): every tuple belongs to a category — "digital
        // camera", "job position", ... — and draws its attributes from
        // that category's pool: a few universal attributes (price, type)
        // plus a category-specific block. This is what makes attributes
        // co-occur, and with them, multi-attribute queries meaningful.
        let universal = UNIVERSAL_ATTRS.min(cfg.n_attrs);
        let specific = CATEGORY_ATTRS.min(cfg.n_attrs.saturating_sub(universal).max(1));
        let n_categories = ((cfg.n_attrs - universal) / (specific / 2).max(1)).clamp(1, 40);
        let pools: Vec<Vec<u32>> = (0..n_categories)
            .map(|c| {
                let mut pool: Vec<u32> = perm[..universal].to_vec();
                let tail = &perm[universal..];
                for i in 0..specific {
                    pool.push(tail[(c * specific / 2 + i) % tail.len()]);
                }
                pool
            })
            .collect();
        let zipf = Zipf::new(universal + specific, cfg.zipf_exponent);

        // Vocabularies for text attributes (built once, shared by chunks).
        let vocabs: Vec<Vec<String>> = (0..cfg.n_attrs)
            .map(|a| {
                if attr_types[a] == AttrType::Text {
                    attribute_vocabulary(
                        cfg.seed,
                        a as u32,
                        cfg.vocab_per_attr,
                        cfg.mean_string_len,
                    )
                } else {
                    Vec::new()
                }
            })
            .collect();

        let chunk = 8_192usize;
        let n_chunks = cfg.n_tuples.div_ceil(chunk);
        let mut tuples: Vec<Tuple> = Vec::with_capacity(cfg.n_tuples);
        let chunks: Vec<Vec<Tuple>> = if n_chunks > 1 {
            let mut results: Vec<Vec<Tuple>> = vec![Vec::new(); n_chunks];
            crossbeam::thread::scope(|s| {
                for (ci, slot) in results.iter_mut().enumerate() {
                    let zipf = &zipf;
                    let pools = &pools;
                    let vocabs = &vocabs;
                    let attr_types = &attr_types;
                    s.spawn(move |_| {
                        let lo = ci * chunk;
                        let hi = ((ci + 1) * chunk).min(cfg.n_tuples);
                        *slot = generate_chunk(
                            cfg,
                            ci as u64,
                            hi - lo,
                            zipf,
                            pools,
                            vocabs,
                            attr_types,
                        );
                    });
                }
            })
            .expect("generation threads panicked");
            results
        } else {
            vec![generate_chunk(
                cfg,
                0,
                cfg.n_tuples,
                &zipf,
                &pools,
                &vocabs,
                &attr_types,
            )]
        };
        for c in chunks {
            tuples.extend(c);
        }
        Self {
            config: cfg.clone(),
            attr_types,
            tuples,
        }
    }

    /// Materialize as a memory-backed [`SwtTable`].
    pub fn build_table(&self, opts: &PagerOptions, io: IoStats) -> SwtResult<SwtTable> {
        let mut t = SwtTable::create_mem(opts, io)?;
        self.populate(&mut t)?;
        Ok(t)
    }

    /// Materialize as a disk-backed [`SwtTable`] at `base`.
    pub fn build_table_disk(
        &self,
        base: &std::path::Path,
        opts: &PagerOptions,
        io: IoStats,
    ) -> SwtResult<SwtTable> {
        let mut t = SwtTable::create(base, opts, io)?;
        self.populate(&mut t)?;
        Ok(t)
    }

    fn populate(&self, t: &mut SwtTable) -> SwtResult<()> {
        for (a, ty) in self.attr_types.iter().enumerate() {
            match ty {
                AttrType::Text => t.define_text(&format!("attr_{a}"))?,
                AttrType::Numeric => t.define_numeric(&format!("attr_{a}"))?,
            };
        }
        for tuple in &self.tuples {
            t.insert(tuple)?;
        }
        t.flush()?;
        Ok(())
    }

    /// Observed mean defined-attributes per tuple (calibration check).
    pub fn mean_defined(&self) -> f64 {
        self.tuples.iter().map(|t| t.arity() as f64).sum::<f64>() / self.tuples.len() as f64
    }

    /// Observed mean string length in bytes (calibration check).
    pub fn mean_string_len(&self) -> f64 {
        let (mut total, mut count) = (0usize, 0usize);
        for t in &self.tuples {
            for (_, v) in t.iter() {
                if let Value::Text(strings) = v {
                    for s in strings {
                        total += s.len();
                        count += 1;
                    }
                }
            }
        }
        total as f64 / count.max(1) as f64
    }
}

/// Seed salt for the attribute-popularity permutation.
const SEED_PERM: u64 = 0x0BAD_CAFE;
/// Attributes every category shares ("price", "type", ...).
const UNIVERSAL_ATTRS: usize = 6;
/// Size of a category's specific attribute block.
const CATEGORY_ATTRS: usize = 56;

fn generate_chunk(
    cfg: &WorkloadConfig,
    chunk_id: u64,
    count: usize,
    zipf: &Zipf,
    pools: &[Vec<u32>],
    vocabs: &[Vec<String>],
    attr_types: &[AttrType],
) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (chunk_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    let p_stop = 1.0 / cfg.mean_defined;
    let mut out: Vec<Tuple> = Vec::with_capacity(count);
    for _ in 0..count {
        // Near-duplicate reposts (within the chunk, so parallel generation
        // stays deterministic): clone an earlier listing and maybe slip a
        // typo into one of its strings.
        if !out.is_empty() && rng.random::<f64>() < cfg.duplicate_rate {
            let mut dup = out[rng.random_range(0..out.len())].clone();
            if rng.random::<f64>() < 0.5 {
                let text_attrs: Vec<_> = dup
                    .iter()
                    .filter_map(|(a, v)| matches!(v, Value::Text(_)).then_some(a))
                    .collect();
                if let Some(&attr) = text_attrs.first() {
                    if let Some(Value::Text(strings)) = dup.get(attr).cloned() {
                        let mut strings = strings;
                        let i = rng.random_range(0..strings.len());
                        strings[i] = apply_typo(&mut rng, &strings[i]);
                        dup.set(attr, Value::Text(strings));
                    }
                }
            }
            out.push(dup);
            continue;
        }
        // Shifted-geometric arity with mean `mean_defined`.
        let mut arity = 1usize;
        while rng.random::<f64>() > p_stop && arity < 64 {
            arity += 1;
        }
        let pool = &pools[rng.random_range(0..pools.len())];
        let mut tuple = Tuple::new();
        let mut tries = 0;
        while tuple.arity() < arity && tries < arity * 8 {
            tries += 1;
            let attr = pool[zipf.sample(&mut rng) % pool.len()] as usize;
            if tuple.get(AttrId(attr as u32)).is_some() {
                continue;
            }
            let value = match attr_types[attr] {
                AttrType::Text => {
                    let vocab = &vocabs[attr];
                    let multi = rng.random::<f64>() < cfg.multi_string_rate;
                    let n_strings = if multi { 2 } else { 1 };
                    let mut strings = Vec::with_capacity(n_strings);
                    for _ in 0..n_strings {
                        let s = vocab[rng.random_range(0..vocab.len())].clone();
                        strings.push(if rng.random::<f64>() < cfg.typo_rate {
                            apply_typo(&mut rng, &s)
                        } else {
                            s
                        });
                    }
                    Value::Text(strings)
                }
                AttrType::Numeric => Value::Num(numeric_value(&mut rng, attr)),
            };
            tuple.set(AttrId(attr as u32), value);
        }
        out.push(tuple);
    }
    out
}
