//! The experiment runner: builds the systems under test over one dataset
//! and measures query sets the way Sec. V-A describes (10 warm queries,
//! 40 measured; wall-clock + exact I/O counters + modeled 2009-disk time).

use std::time::Instant;

use iva_baselines::{DirectScan, SiiIndex};
use iva_core::{
    build_index, IndexTarget, IvaConfig, IvaIndex, MetricKind, Query, QueryOptions, WeightScheme,
};
use iva_storage::{DiskModel, IoSnapshot, IoStats, PagerOptions};
use iva_swt::SwtTable;
use iva_workload::{generate_query_set, Dataset, QuerySet, WorkloadConfig};

/// Everything built for one experiment configuration.
pub struct TestBed {
    /// The generated dataset (queries are sampled from it).
    pub dataset: Dataset,
    /// The sparse wide table.
    pub table: SwtTable,
    /// Table-file I/O counters.
    pub table_io: IoStats,
    /// The iVA-file under test.
    pub iva: IvaIndex,
    /// iVA-file I/O counters.
    pub iva_io: IoStats,
    /// The SII baseline.
    pub sii: SiiIndex,
    /// SII I/O counters.
    pub sii_io: IoStats,
    /// The DST baseline.
    pub dst: DirectScan,
}

/// Pager options used throughout the experiments.
pub fn bench_pager_options() -> PagerOptions {
    PagerOptions {
        page_size: 4096,
        cache_bytes: 5 * 1024 * 1024,
    }
}

/// The paper's cache regime: a 10 MB cache against a 355.7 MB table file,
/// i.e. ~2.8 % of the data is cache-resident. Experiments resize each
/// file's buffer pool to this fraction of its actual size so the cache
/// pressure — and with it the random-access cost the iVA-file saves — is
/// scale-invariant.
pub const CACHE_FRACTION: f64 = 10.0 / 355.7;

impl TestBed {
    /// Build the full test bed for a workload and index configuration.
    pub fn new(workload: &WorkloadConfig, config: IvaConfig) -> Self {
        let opts = bench_pager_options();
        let dataset = Dataset::generate(workload);
        let table_io = IoStats::new();
        let table = dataset
            .build_table(&opts, table_io.clone())
            .expect("table build");
        let iva_io = IoStats::new();
        let iva = build_index(&table, IndexTarget::Mem, &opts, iva_io.clone(), config)
            .expect("iva build");
        let sii_io = IoStats::new();
        let sii =
            SiiIndex::build(&table, &opts, sii_io.clone(), config.ndf_penalty).expect("sii build");
        let dst = DirectScan::new(config.ndf_penalty);

        // Scale each file's buffer pool to the paper's cache:data ratio
        // (with a small floor so tiny test tables still get a few pages).
        let scaled = |bytes: u64| ((bytes as f64 * CACHE_FRACTION) as usize).max(16 * 4096);
        table.file().resize_cache(scaled(table.file().size_bytes()));
        iva.resize_cache(scaled(iva.size_bytes()));
        sii.resize_cache(scaled(sii.size_bytes()));

        Self {
            dataset,
            table,
            table_io,
            iva,
            iva_io,
            sii,
            sii_io,
            dst,
        }
    }

    /// Sample a paper-shaped query set.
    pub fn query_set(&self, values_per_query: usize, total: usize, warm: usize) -> QuerySet {
        generate_query_set(
            &self.dataset,
            values_per_query,
            total,
            warm,
            0xBEEF + values_per_query as u64,
        )
    }
}

/// Per-query measurement.
#[derive(Debug, Clone, Copy)]
pub struct PerQuery {
    /// Wall-clock total, ms.
    pub total_ms: f64,
    /// Filter phase, ms.
    pub filter_ms: f64,
    /// Refine phase, ms.
    pub refine_ms: f64,
    /// Table-file fetches.
    pub table_accesses: u64,
    /// Combined I/O delta (index + table).
    pub io: IoSnapshot,
}

impl PerQuery {
    /// Modeled 2009-HDD time for this query's I/O.
    pub fn modeled_ms(&self) -> f64 {
        DiskModel::hdd_2009().modeled_ms(&self.io)
    }
}

/// Aggregated statistics over the measured queries of one point.
#[derive(Debug, Clone, Copy)]
pub struct PointStats {
    /// Mean wall-clock per query, ms.
    pub mean_ms: f64,
    /// Standard deviation of wall-clock, ms.
    pub std_ms: f64,
    /// Mean filter phase, ms.
    pub filter_ms: f64,
    /// Mean refine phase, ms.
    pub refine_ms: f64,
    /// Mean table accesses per query.
    pub table_accesses: f64,
    /// Mean modeled 2009-disk time, ms.
    pub modeled_ms: f64,
    /// Standard deviation of modeled time, ms.
    pub modeled_std_ms: f64,
}

/// Aggregate per-query samples.
pub fn aggregate(samples: &[PerQuery]) -> PointStats {
    let n = samples.len().max(1) as f64;
    let mean = |f: &dyn Fn(&PerQuery) -> f64| samples.iter().map(f).sum::<f64>() / n;
    let mean_ms = mean(&|s| s.total_ms);
    let var = samples
        .iter()
        .map(|s| (s.total_ms - mean_ms).powi(2))
        .sum::<f64>()
        / n;
    let modeled_mean = mean(&|s| s.modeled_ms());
    let modeled_var = samples
        .iter()
        .map(|s| (s.modeled_ms() - modeled_mean).powi(2))
        .sum::<f64>()
        / n;
    PointStats {
        mean_ms,
        std_ms: var.sqrt(),
        filter_ms: mean(&|s| s.filter_ms),
        refine_ms: mean(&|s| s.refine_ms),
        table_accesses: mean(&|s| s.table_accesses as f64),
        modeled_ms: modeled_mean,
        modeled_std_ms: modeled_var.sqrt(),
    }
}

/// Which system to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The iVA-file.
    Iva,
    /// The sparse inverted index baseline.
    Sii,
    /// Direct scan of the table file.
    Dst,
}

/// Refinement batch override for the experiment drivers: set
/// `IVA_REFINE_BATCH=B` to run every iVA query with page-coalesced batch
/// refinement of up to `B` deferred candidates (see
/// [`QueryOptions::refine_batch`]; results are bit-identical for every
/// `B`). Unset or unparsable means the configured default — `1`, the
/// unbatched plan.
pub fn refine_batch_from_env() -> Option<usize> {
    std::env::var("IVA_REFINE_BATCH")
        .ok()
        .and_then(|s| s.trim().parse().ok())
}

/// Run a query set against one system, returning per-measured-query
/// samples. Warm queries run first and are discarded (they populate the
/// page caches, as in Sec. V-A). The iVA system honors the
/// [`refine_batch_from_env`] override.
pub fn run_queries(
    bed: &TestBed,
    system: System,
    qs: &QuerySet,
    k: usize,
    metric: MetricKind,
    weights: WeightScheme,
) -> Vec<PerQuery> {
    let index_io = match system {
        System::Iva => Some(&bed.iva_io),
        System::Sii => Some(&bed.sii_io),
        System::Dst => None,
    };
    let iva_opts = QueryOptions {
        refine_batch: refine_batch_from_env(),
        ..Default::default()
    };
    let run_one = |q: &Query| -> PerQuery {
        let io_before = combine(index_io, &bed.table_io);
        let start = Instant::now();
        let (stats, _len) = match system {
            System::Iva => {
                let out = bed
                    .iva
                    .query_opts(&bed.table, q, k, &metric, weights, &iva_opts)
                    .expect("iva query");
                (out.stats, out.results.len())
            }
            System::Sii => {
                let out = bed
                    .sii
                    .query(&bed.table, q, k, &metric, weights)
                    .expect("sii query");
                (out.stats, out.results.len())
            }
            System::Dst => {
                let out = bed
                    .dst
                    .query(&bed.table, q, k, &metric, weights)
                    .expect("dst query");
                (out.stats, out.results.len())
            }
        };
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        let io_after = combine(index_io, &bed.table_io);
        PerQuery {
            total_ms,
            filter_ms: stats.filter_ms(),
            refine_ms: stats.refine_ms(),
            table_accesses: stats.table_accesses,
            io: io_after.since(&io_before),
        }
    };
    for q in &qs.queries[..qs.warm] {
        run_one(q);
    }
    qs.measured().iter().map(run_one).collect()
}

/// One full experiment point: sample a query set of the given shape, run
/// it against `system`, and aggregate (paper defaults: 50 queries, 10
/// warm).
pub fn run_point(
    bed: &TestBed,
    system: System,
    values_per_query: usize,
    k: usize,
    metric: MetricKind,
    weights: WeightScheme,
) -> PointStats {
    let (total, warm) = crate::scale::queries_per_point();
    let qs = bed.query_set(values_per_query, total, warm);
    aggregate(&run_queries(bed, system, &qs, k, metric, weights))
}

fn combine(index_io: Option<&IoStats>, table_io: &IoStats) -> IoSnapshot {
    let t = table_io.snapshot();
    match index_io {
        None => t,
        Some(io) => {
            let i = io.snapshot();
            IoSnapshot {
                disk_page_reads: t.disk_page_reads + i.disk_page_reads,
                disk_page_writes: t.disk_page_writes + i.disk_page_writes,
                cache_hits: t.cache_hits + i.cache_hits,
                cache_misses: t.cache_misses + i.cache_misses,
                random_seeks: t.random_seeks + i.random_seeks,
                seq_bytes_read: t.seq_bytes_read + i.seq_bytes_read,
                random_bytes_read: t.random_bytes_read + i.random_bytes_read,
                bytes_written: t.bytes_written + i.bytes_written,
                logical_list_bytes: t.logical_list_bytes + i.logical_list_bytes,
                physical_list_bytes: t.physical_list_bytes + i.physical_list_bytes,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_builds_and_measures() {
        let cfg = WorkloadConfig::scaled(800);
        let bed = TestBed::new(&cfg, IvaConfig::default());
        let qs = bed.query_set(3, 6, 2);
        let iva = run_queries(
            &bed,
            System::Iva,
            &qs,
            10,
            MetricKind::L2,
            WeightScheme::Equal,
        );
        let sii = run_queries(
            &bed,
            System::Sii,
            &qs,
            10,
            MetricKind::L2,
            WeightScheme::Equal,
        );
        assert_eq!(iva.len(), 4);
        assert_eq!(sii.len(), 4);
        let a = aggregate(&iva);
        let b = aggregate(&sii);
        assert!(a.mean_ms > 0.0 && b.mean_ms > 0.0);
        // The content-conscious index admits no more candidates than SII.
        assert!(a.table_accesses <= b.table_accesses);
    }

    #[test]
    fn aggregate_math() {
        let io = IoSnapshot::default();
        let samples = vec![
            PerQuery {
                total_ms: 2.0,
                filter_ms: 1.0,
                refine_ms: 1.0,
                table_accesses: 10,
                io,
            },
            PerQuery {
                total_ms: 4.0,
                filter_ms: 2.0,
                refine_ms: 2.0,
                table_accesses: 20,
                io,
            },
        ];
        let s = aggregate(&samples);
        assert_eq!(s.mean_ms, 3.0);
        assert_eq!(s.std_ms, 1.0);
        assert_eq!(s.table_accesses, 15.0);
    }
}
