//! # iva-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (Sec. V). Each `benches/figXX_*.rs` target is a
//! `harness = false` binary printing the same series the paper plots;
//! `benches/micro.rs` holds Criterion microbenchmarks of the hot kernels.
//!
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.

#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod scale;

pub use runner::{
    aggregate, bench_pager_options, refine_batch_from_env, run_point, run_queries, PerQuery,
    PointStats, System, TestBed, CACHE_FRACTION,
};
pub use scale::{queries_per_point, scale_config};
